"""Setup shim for environments without the ``wheel`` package.

The project is configured through ``pyproject.toml``; this file only exists
so that ``pip install -e . --no-use-pep517`` (legacy editable install) works
on offline machines where PEP 517 editable builds are unavailable.
"""

from setuptools import setup

setup()
