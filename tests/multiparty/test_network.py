"""Star-network accounting: topology rules and agreement with the Channel.

The satellite property required by the issue: replaying any two-party
message sequence over a one-site star must reproduce the two-party
channel's accounting exactly — same direction-flip round counter, same
totals, same per-label and per-round breakdowns — both on the aggregate
log and on the per-link meter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.channel import Channel
from repro.comm.network import Network


def random_two_party_trace(seed: int, length: int = 40):
    """A random alternating-or-not message sequence between two endpoints."""
    rng = np.random.default_rng(seed)
    trace = []
    for _ in range(length):
        upstream = bool(rng.integers(0, 2))
        bits = int(rng.integers(0, 1000))
        label = f"label-{int(rng.integers(0, 4))}"
        trace.append((upstream, bits, label))
    return trace


class TestStarTopologyRules:
    def test_needs_at_least_one_site(self):
        with pytest.raises(ValueError, match="at least one site"):
            Network([])

    def test_site_names_unique(self):
        with pytest.raises(ValueError, match="unique"):
            Network(["s", "s"])

    def test_coordinator_cannot_be_a_site(self):
        with pytest.raises(ValueError, match="double"):
            Network(["hub"], coordinator_name="hub")

    def test_no_site_to_site_messages(self):
        network = Network(["s0", "s1"])
        with pytest.raises(ValueError, match="star topology"):
            network.send("s0", "s1", None, bits=1)

    def test_unknown_site_rejected(self):
        network = Network(["s0"])
        with pytest.raises(ValueError, match="unknown site"):
            network.send("coordinator", "s9", None, bits=1)

    def test_self_send_rejected(self):
        network = Network(["s0"])
        with pytest.raises(ValueError, match="differ"):
            network.send("s0", "s0", None, bits=1)

    def test_default_payload_costing_matches_channel(self):
        network = Network(["s0"])
        channel = Channel()
        payload = np.arange(10)
        network.send("s0", "coordinator", payload)
        channel.send("alice", "bob", payload)
        assert network.total_bits == channel.total_bits > 0


class TestTwoPartyReduction:
    """Network with one site == the two-party channel, message for message."""

    @pytest.mark.parametrize("seed", range(10))
    def test_round_and_bit_accounting_agree_with_channel(self, seed):
        trace = random_two_party_trace(seed)
        channel = Channel(alice_name="site-0", bob_name="coordinator")
        network = Network(["site-0"])
        for upstream, bits, label in trace:
            sender, receiver = (
                ("site-0", "coordinator") if upstream else ("coordinator", "site-0")
            )
            channel.send(sender, receiver, None, label=label, bits=bits)
            network.send(sender, receiver, None, label=label, bits=bits)

        assert network.rounds == channel.rounds
        assert network.total_bits == channel.total_bits
        assert network.bits_by_label() == channel.bits_by_label()
        assert network.bits_per_round() == channel.bits_per_round()
        assert network.bits_sent_by("site-0") == channel.bits_sent_by("site-0")
        assert network.bits_sent_by("coordinator") == channel.bits_sent_by("coordinator")

        link = network.link("site-0")
        assert link.rounds == channel.rounds
        assert link.total_bits == channel.total_bits
        assert link.bits_by_label() == channel.bits_by_label()
        assert link.bits_per_round() == channel.bits_per_round()

    @pytest.mark.parametrize("seed", range(5))
    def test_per_link_meters_agree_with_independent_channels(self, seed):
        """With k sites, every link behaves like its own two-party channel."""
        rng = np.random.default_rng(1000 + seed)
        k = 4
        network = Network([f"site-{i}" for i in range(k)])
        channels = {
            f"site-{i}": Channel(alice_name=f"site-{i}", bob_name="coordinator")
            for i in range(k)
        }
        for _ in range(80):
            site = f"site-{int(rng.integers(0, k))}"
            upstream = bool(rng.integers(0, 2))
            bits = int(rng.integers(0, 500))
            sender, receiver = (site, "coordinator") if upstream else ("coordinator", site)
            network.send(sender, receiver, None, bits=bits)
            channels[site].send(sender, receiver, None, bits=bits)

        for site, channel in channels.items():
            assert network.link(site).rounds == channel.rounds
            assert network.link(site).total_bits == channel.total_bits
        assert network.total_bits == sum(c.total_bits for c in channels.values())
        assert network.max_link_bits == max(c.total_bits for c in channels.values())


class TestAggregateRoundSemantics:
    def test_parallel_uploads_share_a_round(self):
        network = Network(["s0", "s1", "s2"])
        for site in ["s0", "s1", "s2"]:
            network.send(site, "coordinator", None, bits=1)
        assert network.rounds == 1
        network.send("coordinator", "s1", None, bits=1)
        assert network.rounds == 2
        network.send("s2", "coordinator", None, bits=1)
        assert network.rounds == 3

    def test_broadcast_is_one_round_with_per_link_bits(self):
        network = Network(["s0", "s1", "s2"])
        network.broadcast("hello", label="b", bits=100)
        assert network.rounds == 1
        assert network.total_bits == 300
        assert network.link_bits() == {"s0": 100, "s1": 100, "s2": 100}
        assert network.max_link_bits == 100
        assert network.bits_sent_by("coordinator") == 300

    def test_reset_clears_links_and_aggregate(self):
        network = Network(["s0", "s1"])
        network.broadcast(None, bits=10)
        network.send("s0", "coordinator", None, bits=5)
        network.reset()
        assert network.rounds == 0
        assert network.total_bits == 0
        assert network.link("s0").total_bits == 0
        assert network.link("s1").rounds == 0
