"""k-party protocol correctness and the k = 2 two-party equivalence.

Acceptance criteria from the issue: a ``ClusterEstimator`` over k = 2 shards
must reproduce ``MatrixProductEstimator`` — estimates within tolerance under
fixed seeds and *identical round counts* — for ``lp_norm``, ``l0_sample``
and ``heavy_hitters``; and the runtime must stay correct for k in {2, 4, 8}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterEstimator, MatrixProductEstimator
from repro.matrices import exact_heavy_hitters, exact_lp_pp, generators, product
from repro.multiparty import (
    MultipartyHeavyHittersProtocol,
    MultipartyL0SamplingProtocol,
    MultipartyLpNormProtocol,
)


@pytest.fixture
def binary_pair(rng):
    n = 64
    a = (rng.uniform(size=(n, n)) < 0.1).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < 0.1).astype(np.int64)
    return a, b


@pytest.fixture
def integer_pair():
    return generators.integer_matrix_pair(48, density=0.1, planted_value=8, seed=11)


#: Pre-refactor transcript volumes (total bits) under the fixture seeds; the
#: unified engine must reproduce the historical two-party and k = 2 runs
#: exactly (see also tests/test_engine_equivalence.py).
PRE_REFACTOR_BITS = {
    ("lp", 0.0): (395380, 782720),
    ("lp", 1.0): (118766, 229626),
    ("lp", 2.0): (118766, 229492),
    ("l0",): (1669120, 3338240),
    ("hh",): (8858, 12643),
    ("hh_p2",): (220164, 372240),
}


class TestTwoSiteEquivalence:
    """ClusterEstimator with k = 2 vs the two-party MatrixProductEstimator."""

    @pytest.mark.parametrize("p", [0.0, 1.0, 2.0])
    def test_lp_norm_matches_two_party(self, binary_pair, p):
        a, b = binary_pair
        truth = exact_lp_pp(product(a, b), p)
        epsilon = 0.3
        two_party = MatrixProductEstimator(a, b, seed=7).lp_norm(p, epsilon)
        cluster = ClusterEstimator.from_matrix(a, b, 2, seed=7).lp_norm(p, epsilon)

        assert cluster.cost.rounds == two_party.cost.rounds == 2
        assert (two_party.cost.total_bits, cluster.cost.total_bits) == PRE_REFACTOR_BITS[("lp", p)]
        assert abs(two_party.value - truth) <= epsilon * truth
        assert abs(cluster.value - truth) <= epsilon * truth
        # Both are (1 +/- eps)-estimates of the same quantity, so they agree
        # with each other up to the combined slack.
        assert abs(cluster.value - two_party.value) <= 2 * epsilon * truth

    def test_l0_sample_matches_two_party(self, binary_pair):
        a, b = binary_pair
        c = product(a, b)
        two_party = MatrixProductEstimator(a, b, seed=3).l0_sample(0.3)
        cluster = ClusterEstimator.from_matrix(a, b, 2, seed=3).l0_sample(0.3)

        assert cluster.cost.rounds == two_party.cost.rounds == 1
        assert (two_party.cost.total_bits, cluster.cost.total_bits) == PRE_REFACTOR_BITS[("l0",)]
        # The merged site summaries equal the full-matrix sketches exactly,
        # so the column-mass estimate is identical bit for bit.
        assert cluster.details["column_mass"] == two_party.details["column_mass"]
        assert cluster.value.success
        assert c[cluster.value.row, cluster.value.col] != 0

    def test_heavy_hitters_matches_two_party(self, integer_pair):
        a, b = integer_pair
        phi, epsilon = 0.05, 0.03
        c = product(a, b)
        truth = exact_heavy_hitters(c, phi, p=1.0)
        slack = exact_heavy_hitters(c, phi - epsilon, p=1.0)
        two_party = MatrixProductEstimator(a, b, seed=9).heavy_hitters(phi, epsilon)
        cluster = ClusterEstimator.from_matrix(a, b, 2, seed=9).heavy_hitters(phi, epsilon)

        assert cluster.cost.rounds == two_party.cost.rounds == 5
        assert (two_party.cost.total_bits, cluster.cost.total_bits) == PRE_REFACTOR_BITS[("hh",)]
        # Completeness: every exact heavy hitter is reported by both runtimes.
        assert truth <= two_party.value.pairs
        assert truth <= cluster.value.pairs
        # Soundness: nothing outside the (phi - eps) slack set is reported.
        assert cluster.value.pairs <= slack
        assert two_party.value.pairs <= slack
        # The agreed-on entries carry estimates within the protocol's slack.
        for pair in truth:
            estimate = cluster.value.estimates[pair]
            assert estimate == pytest.approx(float(c[pair]), rel=0.5)

    def test_heavy_hitters_p2_keeps_two_party_round_count(self, integer_pair):
        a, b = integer_pair
        two_party = MatrixProductEstimator(a, b, seed=5).heavy_hitters(0.3, 0.2, p=2.0)
        cluster = ClusterEstimator.from_matrix(a, b, 2, seed=5).heavy_hitters(
            0.3, 0.2, p=2.0
        )
        assert cluster.cost.rounds == two_party.cost.rounds == 6
        assert (two_party.cost.total_bits, cluster.cost.total_bits) == PRE_REFACTOR_BITS[("hh_p2",)]

    def test_as_cluster_routes_through_the_facade(self, binary_pair):
        a, b = binary_pair
        estimator = MatrixProductEstimator(a, b, seed=1)
        cluster = estimator.as_cluster(4, seed=1)
        assert isinstance(cluster, ClusterEstimator)
        assert cluster.num_sites == 4
        assert np.array_equal(np.vstack(cluster.shards), a)
        result = cluster.join_size(0.4)
        assert result.cost.rounds == 2


class TestScalingCorrectness:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_lp_norm_accuracy_at_scale(self, binary_pair, k):
        a, b = binary_pair
        truth = exact_lp_pp(product(a, b), 0.0)
        result = ClusterEstimator.from_matrix(a, b, k, seed=21).lp_norm(0.0, 0.3)
        assert abs(result.value - truth) <= 0.3 * truth
        assert result.cost.rounds == 2
        assert result.details["num_sites"] == k

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_l0_sample_validity_at_scale(self, binary_pair, k):
        a, b = binary_pair
        c = product(a, b)
        result = ClusterEstimator.from_matrix(a, b, k, seed=22).l0_sample(0.3)
        assert result.cost.rounds == 1
        assert result.value.success
        assert c[result.value.row, result.value.col] != 0

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_heavy_hitters_completeness_at_scale(self, integer_pair, k):
        a, b = integer_pair
        c = product(a, b)
        truth = exact_heavy_hitters(c, 0.05, p=1.0)
        result = ClusterEstimator.from_matrix(a, b, k, seed=23).heavy_hitters(0.05, 0.03)
        assert result.cost.rounds == 5
        assert truth <= result.value.pairs

    def test_uneven_shards_are_supported(self, binary_pair):
        a, b = binary_pair
        shards = [a[:10], a[10:37], a[37:]]
        truth = exact_lp_pp(product(a, b), 1.0)
        result = ClusterEstimator(shards, b, seed=2).lp_norm(1.0, 0.3)
        assert abs(result.value - truth) <= 0.3 * truth


class TestClusterCostReport:
    def test_star_cost_fields(self, binary_pair):
        a, b = binary_pair
        result = ClusterEstimator.from_matrix(a, b, 4, seed=31).join_size(0.3)
        cost = result.cost
        assert cost.total_bits == sum(cost.link_bits.values())
        assert cost.max_link_bits == max(cost.link_bits.values())
        assert set(cost.site_bits) == {f"site-{i}" for i in range(4)}
        assert sum(cost.per_round.values()) == cost.total_bits
        assert sum(cost.breakdown.values()) == cost.total_bits
        # Round 1 is the downstream sketch broadcast, paid on every link.
        assert cost.per_round[1] == cost.coordinator_bits
        assert cost.coordinator_bits + sum(cost.site_bits.values()) == cost.total_bits

    def test_breakdown_labels_mirror_two_party(self, binary_pair):
        a, b = binary_pair
        result = ClusterEstimator.from_matrix(a, b, 2, seed=1).lp_norm(1.0, 0.3)
        assert "round1/sketch-of-B" in result.cost.breakdown
        assert any(label.startswith("round2/") for label in result.cost.breakdown)


class TestValidation:
    def test_cluster_estimator_rejects_empty_shard_list(self, binary_pair):
        _, b = binary_pair
        with pytest.raises(ValueError, match="at least one"):
            ClusterEstimator([], b)

    def test_cluster_estimator_rejects_mismatched_inner_dims(self, binary_pair):
        a, b = binary_pair
        with pytest.raises(ValueError, match="inner dimensions"):
            ClusterEstimator([a[:, :-1]], b)

    def test_from_matrix_bounds_num_sites(self, binary_pair):
        a, b = binary_pair
        with pytest.raises(ValueError, match="num_sites"):
            ClusterEstimator.from_matrix(a, b, 0)
        with pytest.raises(ValueError, match="num_sites"):
            ClusterEstimator.from_matrix(a, b, a.shape[0] + 1)

    def test_protocol_parameter_validation(self):
        with pytest.raises(ValueError, match="p must be"):
            MultipartyLpNormProtocol(5.0, 0.1)
        with pytest.raises(ValueError, match="epsilon"):
            MultipartyL0SamplingProtocol(0.0)
        with pytest.raises(ValueError, match="eps"):
            MultipartyHeavyHittersProtocol(0.1, 0.5)

    def test_heavy_hitters_rejects_negative_entries(self, binary_pair):
        a, b = binary_pair
        shards = [a[:32].astype(np.int64), a[32:].astype(np.int64)]
        shards[0][0, 0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            MultipartyHeavyHittersProtocol(0.1, 0.05, seed=0).run(shards, b)

    def test_run_rejects_mismatched_shard_widths(self, binary_pair):
        a, b = binary_pair
        with pytest.raises(ValueError, match="inner dimension"):
            MultipartyLpNormProtocol(1.0, 0.3, seed=0).run([a[:10], a[10:, :-1]], b)

    def test_zero_product_returns_zero(self):
        shards = [np.zeros((8, 16), dtype=np.int64), np.zeros((8, 16), dtype=np.int64)]
        b = np.zeros((16, 16), dtype=np.int64)
        result = MultipartyLpNormProtocol(1.0, 0.3, seed=0).run(shards, b)
        assert result.value == 0.0
        assert result.cost.rounds == 2
        sample = MultipartyL0SamplingProtocol(0.3, seed=0).run(shards, b)
        assert not sample.value.success
        heavy = MultipartyHeavyHittersProtocol(0.1, 0.05, seed=0).run(shards, b)
        assert len(heavy.value) == 0
