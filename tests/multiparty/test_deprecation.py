"""The ``repro.multiparty`` compatibility shims.

The ``protocols`` shim must warn **exactly once per import**, attribute the
warning to the importing code (not to the frozen importlib machinery), and
keep every historical name resolving to the engine implementation it
aliases.  The ``repro.multiparty.network`` alias module completed its
scheduled removal: importing it must now fail, pinned below so the import
error is a deliberate contract rather than an accident.
"""

from __future__ import annotations

import sys
import warnings

import pytest

from repro.engine.base import StarProtocol
from repro.engine.heavy_hitters import (
    StarBinaryHeavyHittersProtocol,
    StarHeavyHittersProtocol,
)
from repro.engine.l0_sampling import StarL0SamplingProtocol
from repro.engine.lp_norm import StarLpNormProtocol, star_lp_pp_estimate
from repro.engine.topology import coerce_shards


def fresh_import():
    """Import the shim from scratch, recording every warning it emits."""
    sys.modules.pop("repro.multiparty.protocols", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.multiparty.protocols as shim
    return shim, caught


class TestDeprecationShim:
    def test_warns_exactly_once_per_import(self):
        _, caught = fresh_import()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.multiparty.protocols is deprecated" in str(
            deprecations[0].message
        )
        assert "repro.engine" in str(deprecations[0].message)

    def test_cached_reimport_stays_silent(self):
        fresh_import()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.multiparty.protocols  # noqa: F401  (cached)
        assert caught == []

    def test_warning_attributed_to_the_importer(self):
        """The warning points at the import statement, not frozen importlib."""
        _, caught = fresh_import()
        (warning,) = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert warning.filename == __file__
        assert "importlib" not in warning.filename

    def test_pytest_warns_sees_the_import(self):
        sys.modules.pop("repro.multiparty.protocols", None)
        with pytest.warns(DeprecationWarning, match="protocol bodies moved"):
            import repro.multiparty.protocols  # noqa: F401

    def test_aliases_resolve_to_engine_implementations(self):
        shim, _ = fresh_import()
        assert shim.CoordinatorProtocol is StarProtocol
        assert shim.MultipartyLpNormProtocol is StarLpNormProtocol
        assert shim.MultipartyL0SamplingProtocol is StarL0SamplingProtocol
        assert shim.MultipartyHeavyHittersProtocol is StarHeavyHittersProtocol
        assert (
            shim.MultipartyBinaryHeavyHittersProtocol
            is StarBinaryHeavyHittersProtocol
        )
        assert shim.star_lp_pp_estimate is star_lp_pp_estimate
        assert shim.coerce_shards is coerce_shards

    def test_every_advertised_name_resolves(self):
        shim, _ = fresh_import()
        for name in shim.__all__:
            assert getattr(shim, name) is not None, f"missing export {name}"

    def test_package_level_aliases_match_the_shim(self):
        """``repro.multiparty`` exposes the same names without deprecation."""
        import repro.multiparty as pkg

        shim, _ = fresh_import()
        for name in (
            "CoordinatorProtocol",
            "MultipartyLpNormProtocol",
            "MultipartyL0SamplingProtocol",
            "MultipartyHeavyHittersProtocol",
            "MultipartyBinaryHeavyHittersProtocol",
        ):
            assert getattr(pkg, name) is getattr(shim, name)


class TestNetworkAliasRemoved:
    """``repro.multiparty.network`` completed its scheduled removal.

    The alias was pinned while it lived; now its *absence* is pinned: the
    import must fail (no lingering module cache, no resurrected shim), and
    the canonical home keeps exporting everything the alias once did.
    """

    def test_the_alias_module_is_gone(self):
        sys.modules.pop("repro.multiparty.network", None)
        with pytest.raises(ModuleNotFoundError):
            import repro.multiparty.network  # noqa: F401

    def test_canonical_home_still_exports_everything(self):
        import repro.comm.network as canonical

        for name in ("Network", "UPSTREAM", "DOWNSTREAM"):
            assert getattr(canonical, name) is not None
