"""Multi-tenant isolation, quotas and the billing accounting contract.

The claims pinned here, straight from ISSUE 8's ground rules:

* a tenant's transcript is a pure function of its own seed and its own
  update stream — **bit-identical** no matter how other tenants interleave
  with it (or whether they exist at all);
* per-tenant ledger rows sum **exactly** to the aggregate, and the
  aggregate equals the sum of every session's own network meters — no
  double-count, no cross-tenant bleed;
* quota budgets let the crossing epoch complete, then ``reject`` raises
  and ``throttle`` degrades (counted boundary, nothing ships, deltas stay
  queued);
* the round-robin sweep rotates its starting tenant and survives an
  exhausted tenant;
* every multi-tenant lifecycle bug found during development stays pinned
  (closed-name reservation, closed-manager refusal, gauge removal).
"""

from __future__ import annotations

import pickle
import pickletools

import numpy as np
import pytest

from repro.comm.accounting import TenantLedger
from repro.comm.protocol import ProtocolResult
from repro.engine.runtime import Runtime
from repro.service.metrics import parse_metrics_text
from repro.service.tenancy import (
    PriceSchedule,
    QuotaExceededError,
    SessionManager,
    TenantCostReport,
    TenantQuota,
    derive_tenant_seed,
)

N, M = 16, 3


def canon(value) -> bytes:
    return pickletools.optimize(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


@pytest.fixture()
def b() -> np.ndarray:
    return np.random.default_rng(3).integers(0, 5, size=(N, M))


def batches(seed: int, *, sites: int = 2, epochs: int = 3, batch: int = 6,
            row_counts=None):
    """A deterministic per-tenant update stream: epochs x sites batches."""
    rng = np.random.default_rng(seed)
    if row_counts is None:
        row_counts = [N // sites] * sites
    offsets = np.concatenate([[0], np.cumsum(row_counts)])
    out = []
    for _ in range(epochs):
        epoch = []
        for site in range(len(row_counts)):
            rows = rng.integers(offsets[site], offsets[site + 1], size=batch)
            deltas = rng.integers(-3, 4, size=(batch, N))
            epoch.append((site, rows, deltas))
        out.append(epoch)
    return out


def transcript(manager: SessionManager, name: str, stream) -> dict:
    """Drive one tenant through its stream; capture everything observable."""
    out = {"epochs": [], "live": [], "queries": []}
    for epoch in stream:
        for site, rows, deltas in epoch:
            manager.ingest(name, site, rows, deltas)
        report = manager.end_epoch(name, force=True)
        out["epochs"].append((report.epoch, report.total_bytes, report.cumulative_bytes))
        session = manager.session(name)
        out["live"].append(canon(session.live_lp_norm(p=2.0)))
    result = manager.query(name, "lp_norm", p=2.0, epsilon=0.3)
    out["queries"].append((canon(result.value), result.cost.total_bits, result.cost.rounds))
    return out


class TestSeedDerivation:
    def test_deterministic_and_name_dependent(self):
        assert derive_tenant_seed(7, "alice") == derive_tenant_seed(7, "alice")
        assert derive_tenant_seed(7, "alice") != derive_tenant_seed(7, "bob")
        assert derive_tenant_seed(7, "alice") != derive_tenant_seed(8, "alice")

    def test_in_session_seed_range(self):
        for name in ("a", "b", "tenant-with-a-long-name"):
            assert 0 <= derive_tenant_seed(0, name) < 2**31 - 1


class TestTranscriptIsolation:
    """Same seed + same stream => bit-identical transcript, always."""

    def test_alone_vs_interleaved(self, b):
        # Reference: the tenant runs alone on its own manager.
        with SessionManager(b, seed=7) as alone:
            alone.open_tenant("x", [8, 8])
            reference = transcript(alone, "x", batches(1))

        # Same tenant on a busy manager, its epochs interleaved with two
        # noisy neighbours (opened *before* it, ingesting between its
        # batches, issuing their own queries).
        with SessionManager(b, seed=7) as busy:
            busy.open_tenant("noise-a", [16])
            busy.open_tenant("x", [8, 8])
            busy.open_tenant("noise-b", [4, 4, 8])
            noise = {"noise-a": batches(100, sites=1), "noise-b": batches(200, row_counts=[4, 4, 8])}
            out = {"epochs": [], "live": [], "queries": []}
            for index, epoch in enumerate(batches(1)):
                for name, stream in noise.items():
                    for site, rows, deltas in stream[index]:
                        busy.ingest(name, site, rows, deltas)
                for site, rows, deltas in epoch:
                    busy.ingest("x", site, rows, deltas)
                busy.query("noise-a", "lp_norm", p=1.0, epsilon=0.4)
                reports = busy.run_epoch(force=True)  # all tenants at once
                report = reports["x"]
                out["epochs"].append(
                    (report.epoch, report.total_bytes, report.cumulative_bytes)
                )
                out["live"].append(canon(busy.session("x").live_lp_norm(p=2.0)))
            result = busy.query("x", "lp_norm", p=2.0, epsilon=0.3)
            out["queries"].append(
                (canon(result.value), result.cost.total_bits, result.cost.rounds)
            )

        assert out == reference

    def test_two_tenants_with_identical_seed_and_stream_match(self, b):
        """Registration order and neighbour traffic must not matter."""
        with SessionManager(b, seed=0) as manager:
            manager.open_tenant("first", [8, 8], seed=42)
            manager.open_tenant("second", [8, 8], seed=42)
            # Interleave their identical streams batch by batch, in
            # opposite orders per epoch.
            stream = batches(5)
            for index, epoch in enumerate(stream):
                order = ("first", "second") if index % 2 else ("second", "first")
                for name in order:
                    for site, rows, deltas in epoch:
                        manager.ingest(name, site, rows, deltas)
                for name in order:
                    manager.end_epoch(name, force=True)
            a = manager.query("first", "lp_norm", p=2.0, epsilon=0.3)
            z = manager.query("second", "lp_norm", p=2.0, epsilon=0.3)
            assert canon(a.value) == canon(z.value)
            assert a.cost.total_bits == z.cost.total_bits
            assert (
                manager.session("first").total_upload_bytes
                == manager.session("second").total_upload_bytes
            )


class TestAccountingExactness:
    """Per-tenant rows sum exactly to the aggregate; ledger == network."""

    def test_meters_sum_to_aggregate(self, b):
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8])
            manager.open_tenant("b", [16])
            manager.open_tenant("c", [4, 4, 8])
            streams = {
                "a": batches(1),
                "b": batches(2, sites=1),
                "c": batches(3, row_counts=[4, 4, 8]),
            }
            for index in range(3):
                for name, stream in streams.items():
                    for site, rows, deltas in stream[index]:
                        manager.ingest(name, site, rows, deltas)
                manager.run_epoch(force=True)
            for name in ("a", "b", "c"):
                manager.query(name, "lp_norm", p=2.0, epsilon=0.3)

            manager.verify_accounting()  # raises on any imbalance
            aggregate = manager.aggregate_report()
            assert aggregate["meters_consistent"]
            ledger = manager.ledger
            for key, total in aggregate["usage"].items():
                assert total == sum(
                    ledger.tenant_totals(name).get(key, 0) for name in ledger.tenants
                ), key
            # Ledger shipped bytes are the sessions' own network meters.
            for name in ("a", "b", "c"):
                assert (
                    ledger.tenant_totals(name)["shipped_bytes"]
                    == manager.session(name).total_upload_bytes
                )

    def test_close_keeps_the_ledger_row(self, b):
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8])
            for site, rows, deltas in batches(1)[0]:
                manager.ingest("a", site, rows, deltas)
            manager.end_epoch("a", force=True)
            report = manager.close_tenant("a")
            assert report.closed
            assert report.usage["shipped_bytes"] > 0
            # Row survives; identity still checkable; name stays reserved.
            manager.verify_accounting()
            assert manager.report("a").usage == report.usage
            with pytest.raises(ValueError, match="already registered"):
                manager.open_tenant("a", [8, 8])

    def test_query_costs_are_billed_exactly(self, b):
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8])
            for site, rows, deltas in batches(1)[0]:
                manager.ingest("a", site, rows, deltas)
            manager.end_epoch("a", force=True)
            result = manager.query("a", "lp_norm", p=2.0, epsilon=0.3)
            usage = manager.ledger.tenant_totals("a")
            assert usage["queries"] == 1
            assert usage["query_bits"] == result.cost.total_bits
            assert usage["query_rounds"] == result.cost.rounds

    def test_ledger_unit_invariants(self):
        ledger = TenantLedger()
        ledger.charge("a", rows=3, bytes=10)
        ledger.charge("b", rows=4)
        ledger.charge("a", rows=1)
        assert ledger.tenant_totals("a") == {"rows": 4, "bytes": 10}
        assert ledger.aggregate_totals() == {"rows": 8, "bytes": 10}
        ledger.verify()
        with pytest.raises(ValueError):
            ledger.charge("a", rows=-1)
        ledger.forget("a")
        assert ledger.tenants == ["b"]
        # Aggregate keeps the forgotten tenant's history: now inconsistent
        # with the surviving rows, which verify() must say loudly.
        with pytest.raises(AssertionError):
            ledger.verify()


class TestQuotas:
    def _fill(self, manager, name, epoch):
        for site, rows, deltas in epoch:
            manager.ingest(name, site, rows, deltas)

    def test_crossing_epoch_completes_then_reject_raises(self, b):
        quota = TenantQuota(byte_budget=1, policy="reject")
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8], quota=quota)
            stream = batches(1)
            self._fill(manager, "a", stream[0])
            report = manager.end_epoch("a", force=True)  # crosses the budget
            assert report.total_bytes > 1  # overshoot recorded
            self._fill(manager, "a", stream[1])
            with pytest.raises(QuotaExceededError, match="budget exhausted"):
                manager.end_epoch("a", force=True)
            assert manager.ledger.tenant_totals("a")["rejections"] == 1
            # close() still verifies cleanly after the rejection.

    def test_epoch_budget(self, b):
        quota = TenantQuota(epoch_budget=2, policy="reject")
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8])
            manager.open_tenant("budgeted", [8, 8], quota=quota)
            stream = batches(1)
            for index in range(2):
                self._fill(manager, "budgeted", stream[index])
                manager.end_epoch("budgeted", force=True)
            with pytest.raises(QuotaExceededError):
                manager.end_epoch("budgeted", force=True)

    def test_throttle_counts_the_boundary_but_ships_nothing(self, b):
        quota = TenantQuota(byte_budget=1, policy="throttle")
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8], quota=quota)
            stream = batches(1)
            self._fill(manager, "a", stream[0])
            first = manager.end_epoch("a", force=True)
            shipped = manager.session("a").total_upload_bytes
            self._fill(manager, "a", stream[1])
            second = manager.end_epoch("a", force=True)
            assert second.throttled and not first.throttled
            assert second.epoch == first.epoch + 1
            assert second.total_bytes == 0
            assert second.cumulative_bytes == first.cumulative_bytes
            # Nothing shipped; the deltas stay queued at the sites.
            assert manager.session("a").total_upload_bytes == shipped
            assert sum(s.pending_updates for s in manager.session("a").sites) > 0
            usage = manager.ledger.tenant_totals("a")
            assert usage["epochs"] == 1 and usage["throttled_epochs"] == 1
            manager.verify_accounting()

    def test_run_epoch_skips_the_exhausted_tenant(self, b):
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("broke", [8, 8],
                                quota=TenantQuota(byte_budget=1, policy="reject"))
            manager.open_tenant("fine", [8, 8])
            stream = batches(1)
            self._fill(manager, "broke", stream[0])
            manager.end_epoch("broke", force=True)
            self._fill(manager, "broke", stream[1])
            self._fill(manager, "fine", stream[0])
            reports = manager.run_epoch(force=True)
            assert reports["broke"] is None
            assert reports["fine"] is not None and reports["fine"].total_bytes > 0

    def test_backpressure_reject(self, b):
        quota = TenantQuota(max_pending_updates=10, policy="reject")
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8], quota=quota)
            epoch = batches(1, batch=10)[0]
            site, rows, deltas = epoch[0]
            manager.ingest("a", site, rows, deltas)
            with pytest.raises(QuotaExceededError, match="backpressure"):
                manager.ingest("a", *epoch[1][0:1], epoch[1][1], epoch[1][2])
            # Shipping the backlog reopens ingest.
            manager.end_epoch("a", force=True)
            manager.ingest("a", epoch[1][0], epoch[1][1], epoch[1][2])

    def test_backpressure_throttle_force_ships_the_backlog(self, b):
        quota = TenantQuota(max_pending_updates=10, policy="throttle")
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8], quota=quota)
            epoch = batches(1, batch=10)[0]
            manager.ingest("a", epoch[0][0], epoch[0][1], epoch[0][2])
            manager.ingest("a", epoch[1][0], epoch[1][1], epoch[1][2])  # ships
            assert manager.session("a").total_upload_bytes > 0
            assert manager.ledger.tenant_totals("a")["epochs"] == 1

    def test_backpressure_throttle_with_exhausted_budget_raises(self, b):
        quota = TenantQuota(
            byte_budget=1, max_pending_updates=10, policy="throttle"
        )
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8], quota=quota)
            stream = batches(1, batch=10)
            manager.ingest("a", *stream[0][0])
            manager.end_epoch("a", force=True)  # exhausts the byte budget
            manager.ingest("a", *stream[1][0])
            with pytest.raises(QuotaExceededError, match="cannot ship"):
                manager.ingest("a", *stream[2][0])

    def test_quota_validation(self):
        with pytest.raises(ValueError, match="policy"):
            TenantQuota(policy="explode")
        with pytest.raises(ValueError, match="byte_budget"):
            TenantQuota(byte_budget=-1)


class TestScheduling:
    def test_round_robin_rotates_the_start(self, b):
        with SessionManager(b, seed=7) as manager:
            for name in ("a", "b", "c"):
                manager.open_tenant(name, [16])
            starts = [next(iter(manager.run_epoch(force=True))) for _ in range(4)]
            assert starts == ["a", "b", "c", "a"]

    def test_sweep_covers_every_open_tenant(self, b):
        with SessionManager(b, seed=7) as manager:
            for name in ("a", "b", "c"):
                manager.open_tenant(name, [16])
            manager.close_tenant("b")
            assert set(manager.run_epoch(force=True)) == {"a", "c"}


class TestBilling:
    def test_report_prices_the_ledger_row(self, b):
        prices = PriceSchedule(per_shipped_mib=2.0, per_epoch=0.5, per_query=1.0)
        with SessionManager(b, seed=7, prices=prices) as manager:
            manager.open_tenant("a", [8, 8])
            for site, rows, deltas in batches(1)[0]:
                manager.ingest("a", site, rows, deltas)
            manager.end_epoch("a", force=True)
            manager.query("a", "lp_norm", p=2.0, epsilon=0.3)
            report = manager.report("a")
            assert isinstance(report, TenantCostReport)
            usage = report.usage
            by_item = {item["item"]: item for item in report.line_items}
            assert by_item["shipped bytes"]["quantity"] == usage["shipped_bytes"]
            assert by_item["shipped bytes"]["amount"] == pytest.approx(
                usage["shipped_bytes"] * 2.0 / 2**20
            )
            assert by_item["epochs shipped"]["amount"] == pytest.approx(0.5)
            assert by_item["queries"]["amount"] == pytest.approx(1.0)
            assert report.total_cost == pytest.approx(
                sum(item["amount"] for item in report.line_items)
            )
            round_trip = report.to_dict()
            assert round_trip["tenant"] == "a"
            assert round_trip["quota"]["bytes_remaining"] == float("inf")

    def test_unknown_query_method_is_refused(self, b):
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [16])
            with pytest.raises(ValueError, match="unknown query method"):
                manager.query("a", "drop_tables")
            with pytest.raises(ValueError, match="not a one-shot query"):
                manager.query("a", "live_l0")


class TestLifecycle:
    def test_unknown_and_closed_tenants_raise(self, b):
        with SessionManager(b, seed=7) as manager:
            with pytest.raises(KeyError, match="unknown"):
                manager.ingest("ghost", 0, [0], np.zeros((1, N), dtype=np.int64))
            manager.open_tenant("a", [16])
            manager.close_tenant("a")
            with pytest.raises(KeyError, match="closed"):
                manager.end_epoch("a")
            # Reports remain available for closed tenants.
            assert manager.report("a").closed

    def test_closed_manager_refuses_new_tenants(self, b):
        manager = SessionManager(b, seed=7)
        manager.close()
        manager.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            manager.open_tenant("a", [16])
        with pytest.raises(RuntimeError, match="closed"):
            manager.run_epoch()

    def test_metrics_reflect_the_tenant_lifecycle(self, b):
        with SessionManager(b, seed=7) as manager:
            manager.open_tenant("a", [8, 8])
            manager.open_tenant("b", [16])
            assert manager.metrics.get("repro_tenants").value() == 2
            for site, rows, deltas in batches(1)[0]:
                manager.ingest("a", site, rows, deltas)
            manager.end_epoch("a", force=True)
            parsed = parse_metrics_text(manager.metrics.render())
            assert parsed[("repro_ingest_rows_total", (("tenant", "a"),))] == 12
            assert parsed[("repro_epochs_total", (("tenant", "a"),))] == 1
            # "a" leads by one epoch; "b" lags by one.
            assert parsed[("repro_epoch_lag", (("tenant", "b"),))] == 1
            assert parsed[("repro_epoch_lag", (("tenant", "a"),))] == 0
            manager.close_tenant("a")
            parsed = parse_metrics_text(manager.metrics.render())
            assert manager.metrics.get("repro_tenants").value() == 1
            # Per-tenant gauge series for the closed tenant are removed;
            # its counters (billing history) survive.
            assert ("repro_epoch_lag", (("tenant", "a"),)) not in parsed
            assert parsed[("repro_ingest_rows_total", (("tenant", "a"),))] == 12


class TestSharedRuntime:
    """Many resident sessions over one runtime: shared pools, flat tracking."""

    def test_resident_tenants_share_the_runtime(self, b):
        with Runtime("threads", max_workers=2, persistent=True) as runtime:
            with SessionManager(b, seed=7, runtime=runtime) as manager:
                manager.open_tenant("a", [8, 8])
                manager.open_tenant("b", [16])
                assert runtime.resident_pool_count == 2
                assert manager.metrics.get(
                    "repro_resident_pool_occupancy"
                ).value() == 2
                stream_a, stream_b = batches(1), batches(2, sites=1)
                for index in range(2):
                    for site, rows, deltas in stream_a[index]:
                        manager.ingest("a", site, rows, deltas)
                    for site, rows, deltas in stream_b[index]:
                        manager.ingest("b", site, rows, deltas)
                    manager.run_epoch(force=True)
                manager.verify_accounting()
                manager.close_tenant("a")
                # The closed tenant's pool and arena leave the runtime.
                assert runtime.resident_pool_count == 1
                assert len(runtime._resident_pools) == 1
                assert len(runtime._adopted_arenas) == 1
            assert runtime.resident_pool_count == 0
            assert runtime._adopted_arenas == []

    def test_resident_transcript_matches_serial(self, b):
        with SessionManager(b, seed=7) as serial:
            serial.open_tenant("x", [8, 8], seed=11)
            reference = transcript(serial, "x", batches(9))
        with Runtime("threads", max_workers=2, persistent=True) as runtime:
            with SessionManager(b, seed=7, runtime=runtime) as manager:
                manager.open_tenant("other", [16])
                manager.open_tenant("x", [8, 8], seed=11)
                result = transcript(manager, "x", batches(9))
        assert result == reference


class TestManyTenants:
    def test_fifty_tenants_account_exactly(self, b):
        rng = np.random.default_rng(0)
        with SessionManager(b, seed=7) as manager:
            names = [f"t{i:02d}" for i in range(50)]
            for name in names:
                manager.open_tenant(name, [16])
            for name in names:
                size = int(rng.integers(1, 8))
                rows = rng.integers(0, N, size=size)
                deltas = rng.integers(-2, 3, size=(size, N))
                manager.ingest(name, 0, rows, deltas)
            manager.run_epoch(force=True)
            for name in names[::7]:
                result = manager.query(name, "lp_norm", p=2.0, epsilon=0.4)
                assert isinstance(result, ProtocolResult)
            manager.verify_accounting()
            assert manager.aggregate_report()["meters_consistent"]
