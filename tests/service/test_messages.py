"""Message schema and payload codec: bit-exact round trips, loud failures.

The payload codec must restore every payload type the protocol families
actually put on the network — arrays, scalars, bundles, sketch objects,
sets, raw delta bytes — *bit-exactly*, because the transport digests the
encoded bytes and the coordinator asserts bit-identical estimates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.messages import (
    MESSAGE_TYPES,
    PAYLOAD_TAG_BYTES,
    Message,
    ServiceError,
    decode_message,
    decode_payload,
    encode_message,
    encode_payload,
)


class TestMessageCodec:
    @pytest.mark.parametrize("mtype", MESSAGE_TYPES)
    def test_every_type_round_trips(self, mtype):
        message = Message(mtype, {"x": 1, "label": "lp"}, b"\x00payload")
        decoded = decode_message(encode_message(message))
        assert decoded.type == mtype
        assert decoded.meta == message.meta
        assert decoded.payload == message.payload

    def test_empty_meta_and_payload(self):
        decoded = decode_message(encode_message(Message("ack")))
        assert (decoded.type, decoded.meta, decoded.payload) == ("ack", {}, b"")

    def test_unknown_type_rejected_at_construction(self):
        with pytest.raises(ServiceError, match="unknown message type"):
            Message("nonsense")

    def test_unknown_code_rejected_at_decode(self):
        body = bytes([250]) + (0).to_bytes(4, "little")
        with pytest.raises(ServiceError, match="unknown message type code"):
            decode_message(body)

    def test_truncated_header_rejected(self):
        with pytest.raises(ServiceError, match="no header"):
            decode_message(b"\x00")

    def test_meta_overrunning_body_rejected(self):
        body = bytes([0]) + (100).to_bytes(4, "little") + b"{}"
        with pytest.raises(ServiceError, match="truncated"):
            decode_message(body)

    def test_non_object_meta_rejected(self):
        meta = b"[1,2]"
        body = bytes([0]) + len(meta).to_bytes(4, "little") + meta
        with pytest.raises(ServiceError, match="JSON object"):
            decode_message(body)

    def test_unparseable_meta_rejected(self):
        meta = b"\xff\xfe"
        body = bytes([0]) + len(meta).to_bytes(4, "little") + meta
        with pytest.raises(ServiceError, match="unparseable"):
            decode_message(body)


#: One representative of every payload shape the 11 families + streaming
#: runtime put on a network (see the send/broadcast inventory in
#: repro.engine.*): arrays, scalars, array bundles, composite dicts, sets,
#: tuples, and raw (already wire-encoded) delta bytes.
PAYLOAD_CASES = [
    np.arange(12, dtype=np.int64).reshape(3, 4),
    np.random.default_rng(0).uniform(size=(4, 5)),
    np.array([], dtype=np.float64),
    None,
    3,
    -1.5,
    float("nan"),
    "site-3",
    True,
    np.float64(2.5),
    np.int64(7),
    {"rows": np.arange(3), "weights": np.ones(3)},
    {"A": np.eye(2), "A_prime": None},
    {"ship_items": [(0, 1), (2, 3)], "b_rows": np.arange(4)},
    {"l0_sketch": {"state": np.zeros(8)}, "sampler": [1, 2, 3]},
    {1, 4, 9},
    (0, 2),
    b"\x00raw-delta-bytes\xff",
    bytearray(b"mutable"),
]


def _assert_equal(result, value):
    if isinstance(value, np.ndarray):
        assert isinstance(result, np.ndarray)
        assert result.dtype == value.dtype
        assert result.shape == value.shape
        np.testing.assert_array_equal(result, value)
    elif isinstance(value, dict):
        assert isinstance(result, dict)
        assert list(result) == list(value)
        for key in value:
            _assert_equal(result[key], value[key])
    elif isinstance(value, (list, tuple)):
        assert type(result) is type(value)
        assert len(result) == len(value)
        for got, expected in zip(result, value):
            _assert_equal(got, expected)
    elif isinstance(value, float) and value != value:  # NaN
        assert result != result
    elif isinstance(value, (bytes, bytearray)):
        assert result == bytes(value)
    else:
        assert result == value


class TestPayloadCodec:
    @pytest.mark.parametrize("value", PAYLOAD_CASES, ids=[str(i) for i in range(len(PAYLOAD_CASES))])
    def test_round_trips_bit_exactly(self, value):
        _assert_equal(decode_payload(encode_payload(value)), value)

    def test_numpy_scalars_keep_their_type(self):
        """np.float64 is an isinstance of float; it must not decay to one."""
        assert type(decode_payload(encode_payload(np.float64(1.5)))) is np.float64
        assert type(decode_payload(encode_payload(np.int64(3)))) is np.int64

    def test_bools_keep_their_type(self):
        assert decode_payload(encode_payload(True)) is True

    def test_encoding_is_canonical(self):
        """Equal values encode to equal bytes (digests must be reproducible)."""
        value = {"l0_sketch": {"state": np.arange(5)}, "items": [(1, 2), (3, 4)]}
        assert encode_payload(value) == encode_payload(
            {"l0_sketch": {"state": np.arange(5)}, "items": [(1, 2), (3, 4)]}
        )

    def test_raw_bytes_cost_exactly_their_length(self):
        """Streaming deltas are metered at 8 bits/byte: the codec adds only
        the envelope tag, which the meters exclude."""
        delta = b"\x01" * 137
        assert len(encode_payload(delta)) == len(delta) + PAYLOAD_TAG_BYTES

    def test_empty_blob_rejected(self):
        with pytest.raises(ServiceError, match="empty payload"):
            decode_payload(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ServiceError, match="unknown payload tag"):
            decode_payload(b"Zdata")

    def test_corrupt_pickle_rejected(self):
        with pytest.raises(ServiceError, match="unpicklable"):
            decode_payload(b"P\x00\x01garbage")

    def test_corrupt_json_rejected(self):
        with pytest.raises(ServiceError, match="unparseable"):
            decode_payload(b"J{not json")

    def test_site_rng_round_trips_through_task_payloads(self):
        """map_sites ships each site's generator out and back; the stream
        must resume exactly where it left off."""
        rng = np.random.default_rng(42)
        rng.integers(0, 100, size=5)  # advance the state
        clone = decode_payload(encode_payload((rng,)))[0]
        assert clone.integers(0, 2**31 - 1) == rng.integers(0, 2**31 - 1)
