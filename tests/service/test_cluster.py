"""The acceptance gate: a real 4-site socket cluster vs the in-process facade.

One coordinator server in this process, four ``repro-site`` OS processes on
localhost, one client — and an in-process :class:`ClusterEstimator` with the
same shards and seed issuing the *identical query sequence* (the per-query
seed stream is stateful, so sequence identity is part of the contract).

Claims pinned here, straight from the service contract:

* estimates are **bit-identical** to the in-process serial runtime for
  ``lp_norm``, ``l0_sample``, ``heavy_hitters`` and a streamed session;
* **observed socket bytes × 8 == wire-meter bits** — in aggregate, on every
  link, and in every round;
* for streaming traffic (deltas are already encoded bytes, charged
  8 bits/byte in-process too) the simulated, wire and observed meters all
  coincide exactly.
"""

from __future__ import annotations

import pickle
import pickletools

import numpy as np
import pytest

from repro.multiparty import ClusterEstimator
from repro.service.client import local_cluster
from repro.service.messages import ServiceError

SEED = 7
NUM_SITES = 4


def _data():
    rng = np.random.default_rng(11)
    a = rng.integers(0, 3, size=(40, 24))
    b = rng.integers(0, 3, size=(24, 20))
    return np.array_split(a, NUM_SITES, axis=0), b


def canon(value) -> bytes:
    """Canonical pickle — byte equality here is bit-identity of the value."""
    return pickletools.optimize(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


#: The shared query script: (key, method, kwargs), issued in this exact
#: order on both the remote client and the in-process reference.
ONE_SHOT_QUERIES = [
    ("lp_norm", "lp_norm", {"p": 2.0, "epsilon": 0.3}),
    ("l0_sample", "l0_sample", {"epsilon": 0.3}),
    ("heavy_hitters", "heavy_hitters", {"phi": 0.3, "epsilon": 0.2}),
]


def _run_reference(shards, b):
    estimator = ClusterEstimator(shards, b, seed=SEED)
    out = {}
    for key, method, kwargs in ONE_SHOT_QUERIES:
        out[key] = getattr(estimator, method)(**kwargs)
    session = estimator.stream()
    offset = 0
    for index, shard in enumerate(shards):
        session.ingest(index, offset + np.arange(shard.shape[0]), shard)
        offset += shard.shape[0]
    out["epoch"] = session.sync()
    out["live_lp"] = session.live_lp_norm(p=2.0)
    out["live_l0"] = session.live_l0()
    out["live_hh"] = session.live_heavy_hitters(phi=0.3)
    out["session_lp"] = session.lp_norm(p=2.0, epsilon=0.3)
    out["upload_bytes"] = session.total_upload_bytes
    return out


def _run_remote(client, shards):
    out, reports = {}, {}

    def query(key, method, **kwargs):
        out[key] = client.query(method, **kwargs)
        reports[key] = client.last_service

    for key, method, kwargs in ONE_SHOT_QUERIES:
        query(key, method, **kwargs)
    client.query("stream_open")
    offset = 0
    for index, shard in enumerate(shards):
        client.query(
            "stream_ingest",
            site=index,
            rows=offset + np.arange(shard.shape[0]),
            deltas=shard,
        )
        offset += shard.shape[0]
    query("epoch", "stream_sync")
    query("live_lp", "stream_live_lp_norm", p=2.0)
    query("live_l0", "stream_live_l0")
    query("live_hh", "stream_live_heavy_hitters", phi=0.3)
    query("session_lp", "stream_lp_norm", p=2.0, epsilon=0.3)
    query("upload_bytes", "stream_total_upload_bytes")
    return out, reports


@pytest.fixture(scope="module")
def cluster():
    """Run the whole script once against a live cluster; tests assert on it."""
    shards, b = _data()
    with local_cluster(shards, b, seed=SEED) as (server, client):
        remote, reports = _run_remote(client, shards)
        yield {
            "server": server,
            "client": client,
            "remote": remote,
            "reports": reports,
            "reference": _run_reference(shards, b),
        }


class TestHandshake:
    def test_client_sees_the_cluster_shape(self, cluster):
        meta = cluster["client"].cluster
        assert meta["k"] == NUM_SITES
        assert meta["b_shape"] == [24, 20]

    def test_info_reports_the_registered_shards(self, cluster):
        shards, _ = _data()
        info = cluster["client"].query("info")
        assert info["k"] == NUM_SITES
        assert info["seed"] == SEED
        assert info["row_counts"] == [shard.shape[0] for shard in shards]


class TestBitIdentity:
    """Socket execution must be invisible: same estimates, same meters."""

    @pytest.mark.parametrize("key", [key for key, _, _ in ONE_SHOT_QUERIES])
    def test_one_shot_estimates_are_bit_identical(self, cluster, key):
        remote, reference = cluster["remote"][key], cluster["reference"][key]
        assert canon(remote.value) == canon(reference.value)

    @pytest.mark.parametrize("key", [key for key, _, _ in ONE_SHOT_QUERIES])
    def test_one_shot_costs_are_identical(self, cluster, key):
        remote, reference = cluster["remote"][key], cluster["reference"][key]
        assert remote.cost.total_bits == reference.cost.total_bits
        assert remote.cost.rounds == reference.cost.rounds

    @pytest.mark.parametrize("key", [key for key, _, _ in ONE_SHOT_QUERIES])
    def test_simulated_meter_in_report_matches_the_cost(self, cluster, key):
        report = cluster["reports"][key]
        result = cluster["reference"][key]
        assert report["simulated_bits"] == result.cost.total_bits
        assert report["rounds"] == result.cost.rounds

    def test_streamed_epoch_is_identical(self, cluster):
        remote, reference = cluster["remote"]["epoch"], cluster["reference"]["epoch"]
        assert remote.upload_bytes == reference.upload_bytes
        assert remote.total_bytes == reference.total_bytes
        assert cluster["remote"]["upload_bytes"] == cluster["reference"]["upload_bytes"]

    def test_streamed_live_estimates_are_bit_identical(self, cluster):
        for key in ("live_lp", "live_l0", "live_hh"):
            assert canon(cluster["remote"][key]) == canon(cluster["reference"][key])

    def test_streamed_one_shot_query_is_bit_identical(self, cluster):
        remote = cluster["remote"]["session_lp"]
        reference = cluster["reference"]["session_lp"]
        assert canon(remote.value) == canon(reference.value)
        assert remote.cost.total_bits == reference.cost.total_bits


class TestObservedBytes:
    """observed socket bytes × 8 == wire-meter bits, at every granularity."""

    def _metered_reports(self, cluster):
        return {
            key: report
            for key, report in cluster["reports"].items()
            if report is not None and report["wire_bits"] > 0
        }

    def test_aggregate(self, cluster):
        reports = self._metered_reports(cluster)
        assert reports  # the script produced metered traffic
        for key, report in reports.items():
            assert report["observed_bytes"] * 8 == report["wire_bits"], key

    def test_per_link(self, cluster):
        for key, report in self._metered_reports(cluster).items():
            for site, wire_bits in report["wire_link_bits"].items():
                observed = report["observed_link_bytes"].get(site, 0)
                assert observed * 8 == wire_bits, (key, site)

    def test_per_round(self, cluster):
        for key, report in self._metered_reports(cluster).items():
            for round_index, wire_bits in report["wire_round_bits"].items():
                observed = sum(
                    rounds.get(round_index, 0)
                    for rounds in report["observed_round_bytes"].values()
                )
                assert observed * 8 == wire_bits, (key, round_index)

    def test_every_live_site_carried_traffic(self, cluster):
        for report in self._metered_reports(cluster).values():
            assert set(report["observed_link_bytes"]) == {
                f"site-{i}" for i in range(NUM_SITES)
            }

    def test_streaming_meters_all_coincide(self, cluster):
        """Deltas are encoded bytes charged 8 bits/byte in-process too, so
        for the sync epoch *all three* meters agree exactly."""
        report = cluster["reports"]["epoch"]
        assert (
            report["simulated_bits"]
            == report["wire_bits"]
            == report["observed_bytes"] * 8
        )
        assert report["observed_bytes"] == cluster["reference"]["epoch"].total_bytes


class TestErrors:
    """Failures surface as remote ServiceErrors, never silent hangs."""

    def test_unknown_method_is_refused(self, cluster):
        with pytest.raises(ServiceError, match="unknown query method"):
            cluster["client"].query("drop_tables")

    def test_remote_exception_carries_its_type_and_message(self, cluster):
        with pytest.raises(ServiceError, match="ValueError"):
            cluster["client"].query("lp_norm", p=17.0, epsilon=0.3)
