"""Service hardening under injected faults (ISSUE 9): retry, degrade, quarantine.

Each scenario runs a real loopback cluster whose site processes carry a
chaos flag (see ``repro-site --help``), and pins the coordinator's new
robustness contract:

* a **transient refusal** (``retry`` reply) is backed off and resent
  within the budget — the answer is still bit-identical to the in-process
  runtime, and ``repro_link_retries_total`` counts the resends; beyond
  the budget the failure is a plain :class:`ServiceError`;
* a **reply past the deadline** degrades the query: the surviving
  sub-cluster answers (exclude + renormalize, bit-identical to an
  in-process dropout-exclude run) and ``client.last_degraded`` carries
  the structured report;
* a **corrupt frame** quarantines the site — its link is dead, the gauge
  shows it, and every later query degrades immediately (reason
  ``"quarantine"``, no timeout wait);
* a **mid-stream timeout** drops the site from the streaming session with
  the degradation report attached to the error; after restore the next
  boundary ships everyone and the live state matches a clean in-process
  replay bit for bit (the failed boundary must not double-merge).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.comm.conditions import NetworkConditions
from repro.engine.runtime import Runtime
from repro.multiparty import ClusterEstimator
from repro.service.client import local_cluster
from repro.service.messages import ServiceError
from repro.service.metrics import parse_metrics_text

SEED = 13


def _data(num_sites: int):
    rng = np.random.default_rng(31)
    a = rng.integers(0, 3, size=(12 * num_sites, 12))
    b = rng.integers(0, 3, size=(12, 8))
    return np.array_split(a, num_sites, axis=0), b


def _metric(server, name: str, **labels) -> float:
    parsed = parse_metrics_text(server.metrics.render())
    return parsed.get((name, tuple(sorted(labels.items()))), 0.0)


class TestTransientRetries:
    def test_refusals_within_budget_are_invisible_to_the_answer(self):
        shards, b = _data(2)
        site_args = [[], ["--flaky", "2"]]
        with local_cluster(
            shards, b, seed=SEED, site_args=site_args, retries=3, backoff=0.01
        ) as (server, client):
            answer = client.query("lp_norm", p=2.0, epsilon=0.3)
            assert client.last_degraded is None
            reference = ClusterEstimator(shards, b, seed=SEED).lp_norm(
                p=2.0, epsilon=0.3
            )
            assert answer.value == reference.value
            assert _metric(server, "repro_link_retries_total", site="site-1") >= 2

    def test_refusals_beyond_budget_fail_plainly(self):
        shards, b = _data(2)
        site_args = [[], ["--flaky", "99"]]
        with local_cluster(
            shards, b, seed=SEED, site_args=site_args, retries=1, backoff=0.01
        ) as (server, client):
            with pytest.raises(ServiceError, match="still refusing"):
                client.query("lp_norm", p=2.0, epsilon=0.3)
            # An exhausted retry budget is not a site loss: nothing is
            # degraded, nothing is quarantined.
            assert client.last_degraded is None
            assert _metric(server, "repro_quorum_shortfall_total") == 0


class TestTimeoutDegradation:
    def test_slow_site_degrades_with_a_renormalized_answer(self):
        shards, b = _data(3)
        site_args = [[], [], ["--delay", "2"]]
        with local_cluster(
            shards, b, seed=SEED, site_args=site_args, deadline=0.5, retries=0
        ) as (server, client):
            answer = client.query("lp_norm", p=2.0, epsilon=0.3)
            report = client.last_degraded
            assert report is not None
            assert report["reason"] == "timeout"
            assert report["failed_sites"] == ["site-2"]
            assert report["policy"] == "exclude"
            assert report["surviving_sites"] == 2
            # The degraded answer is the survivor-renormalized estimate —
            # bit-identical to an in-process dropout-exclude run over the
            # same sub-cluster with the same seed.
            reference = ClusterEstimator(
                shards,
                b,
                seed=SEED,
                runtime=Runtime(dropout="exclude"),
                conditions=NetworkConditions(dropped=["site-2"]),
            ).lp_norm(p=2.0, epsilon=0.3)
            assert answer.value == reference.value
            assert _metric(server, "repro_quorum_shortfall_total") >= 1

            # The next query degrades again (the site is still slow) but
            # still answers, and the degraded seed stream stays stateful:
            # it does not restart from the first degraded answer.
            again = client.query("lp_norm", p=2.0, epsilon=0.3)
            assert client.last_degraded is not None
            assert again.value > 0


class TestQuarantine:
    def test_corrupt_frames_quarantine_the_site(self):
        shards, b = _data(3)
        site_args = [[], ["--corrupt-upstream"], []]
        with local_cluster(
            shards, b, seed=SEED, site_args=site_args, retries=0
        ) as (server, client):
            client.query("lp_norm", p=2.0, epsilon=0.3)
            report = client.last_degraded
            assert report is not None
            assert report["reason"] == "corrupt-frame"
            assert report["failed_sites"] == ["site-1"]
            assert server.quarantined == {"site-1"}
            assert _metric(server, "repro_quarantined_sites") == 1

            # Quarantine is sticky: later queries skip the dead link and
            # degrade immediately (no deadline wait).
            start = time.monotonic()
            again = client.query("l0_sample", epsilon=0.3)
            assert time.monotonic() - start < 5.0
            assert client.last_degraded["reason"] == "quarantine"
            assert client.last_degraded["failed_sites"] == ["site-1"]
            assert again is not None


class TestStreamingDegradation:
    def test_timed_out_boundary_drops_then_recovers_bit_exact(self):
        shards, b = _data(3)
        # site-1's first protocol request is its first epoch-boundary
        # upload; the nap outlives the deadline, so the boundary degrades.
        site_args = [[], ["--delay", "3", "--delay-count", "1"], []]
        first, second = [], []
        offset = 0
        for index, shard in enumerate(shards):
            half = shard.shape[0] // 2
            rows = offset + np.arange(shard.shape[0])
            first.append((index, rows[:half], shard[:half]))
            second.append((index, rows[half:], shard[half:]))
            offset += shard.shape[0]

        with local_cluster(
            shards, b, seed=SEED, site_args=site_args, deadline=1.0, retries=0
        ) as (server, client):
            client.query("stream_open")
            for index, rows, deltas in first:
                client.query("stream_ingest", site=index, rows=rows, deltas=deltas)
            with pytest.raises(ServiceError, match="dropped") as info:
                client.query("stream_end_epoch", force=True)
            degradation = info.value.degradation
            assert degradation["reason"] == "timeout"
            assert degradation["failed_sites"] == ["site-1"]
            assert _metric(server, "repro_quorum_shortfall_total") >= 1

            # Let the napping site wake up and flush its stale reply.
            time.sleep(2.5)
            restored = client.query("stream_restore_site", site=1)
            assert restored["dropped"] == []
            for index, rows, deltas in second:
                client.query("stream_ingest", site=index, rows=rows, deltas=deltas)
            report = client.query("stream_end_epoch", force=True)
            assert report.dropped == []

            # The failed boundary merged every on-time delta exactly once;
            # after restore + the next boundary the live state must equal a
            # clean in-process replay bit for bit (a double-merge of the
            # sites behind the timed-out send would show up here).
            replay = ClusterEstimator(shards, b, seed=SEED).stream()
            for index, rows, deltas in first:
                replay.ingest(index, rows, deltas)
            replay.end_epoch(force=True)
            for index, rows, deltas in second:
                replay.ingest(index, rows, deltas)
            replay.end_epoch(force=True)
            assert client.query("stream_live_lp_norm", p=2.0) == replay.live_lp_norm(
                p=2.0
            )
            assert client.query(
                "stream_live_heavy_hitters", phi=0.3
            ) == replay.live_heavy_hitters(phi=0.3)
