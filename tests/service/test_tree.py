"""A real 2-level aggregation tree over loopback sockets.

The contract: standing a cluster up as a socket *tree* — aggregator agent
processes fronting leaf-site processes, every tree edge its own TCP
connection — changes nothing about the estimates (bit-identical to the
in-process flat star with the same seed) while the coordinator's socket
fan-in drops from k to the number of root children; and the service
invariant ``observed_bytes * 8 == wire_bits`` holds on every tree edge.
"""

import numpy as np
import pytest

from repro.comm.tree import TreeSpec
from repro.multiparty import ClusterEstimator
from repro.service.client import local_cluster

def _cluster_data(k=4, rows=6, cols=16, seed=5):
    rng = np.random.default_rng(seed)
    a = (rng.uniform(size=(k * rows, cols)) < 0.3).astype(int)
    b = (rng.uniform(size=(cols, 12)) < 0.3).astype(int)
    return list(np.array_split(a, k, axis=0)), b


def _two_level_tree():
    return TreeSpec(
        {
            "coordinator": ["agg-0-0", "agg-0-1"],
            "agg-0-0": ["site-0", "site-1"],
            "agg-0-1": ["site-2", "site-3"],
        }
    )


def _assert_edge_invariant(report):
    """observed * 8 == wire bits, in total and on every tree edge."""
    assert report["observed_bytes"] * 8 == report["wire_bits"]
    for edge, wire_bits in report["wire_link_bits"].items():
        assert report["observed_link_bytes"].get(edge, 0) * 8 == wire_bits, edge


class TestServiceTree:
    def test_two_level_tree_is_bit_identical_and_edge_metered(self):
        shards, b = _cluster_data()
        tree = _two_level_tree()
        flat = ClusterEstimator(shards, b, seed=11)
        reference_l2 = flat.lp_norm(p=2.0, epsilon=0.3)
        reference_l0 = flat.lp_norm(p=0, epsilon=0.3)
        with local_cluster(shards, b, seed=11, tree=tree) as (server, client):
            value_l2 = client.lp_norm(p=2.0, epsilon=0.3)
            report_l2 = client.last_service
            value_l0 = client.lp_norm(p=0, epsilon=0.3)
            report_l0 = client.last_service

        # Estimates and simulated meters: bit-identical to the in-process
        # flat star (the tree reroutes and re-meters, never recomputes).
        assert value_l2.value == reference_l2.value
        assert value_l0.value == reference_l0.value
        assert value_l2.cost.rounds == reference_l2.cost.rounds

        for report in (report_l2, report_l0):
            _assert_edge_invariant(report)
            assert report["tree"] == tree.describe()
            # Every tree edge carried real bytes: both aggregator edges and
            # all four leaf edges appear in the per-edge observed counters.
            observed = {
                edge for edge, n in report["observed_link_bytes"].items() if n > 0
            }
            assert {"agg-0-0", "agg-0-1"} <= observed
            assert {f"site-{i}" for i in range(4)} <= observed
            # The coordinator's own sockets are the aggregator edges only:
            # root fan-in is 2, not k=4.
            assert set(report["root_link_bits"]) == {"agg-0-0", "agg-0-1"}

    def test_mixed_tree_with_direct_leaf(self):
        """A leaf directly under the root coexists with an aggregator."""
        shards, b = _cluster_data(k=3)
        tree = TreeSpec(
            {"coordinator": ["agg-0-0", "site-2"], "agg-0-0": ["site-0", "site-1"]}
        )
        reference = ClusterEstimator(shards, b, seed=7).lp_norm(p=1.0, epsilon=0.3)
        with local_cluster(shards, b, seed=7, tree=tree) as (server, client):
            value = client.lp_norm(p=1.0, epsilon=0.3)
            report = client.last_service
        assert value.value == reference.value
        _assert_edge_invariant(report)
        assert set(report["root_link_bits"]) == {"agg-0-0", "site-2"}

    def test_integer_fan_out_sugar(self):
        """``tree=2`` stands up the balanced fan-out-2 tree of processes."""
        shards, b = _cluster_data()
        reference = ClusterEstimator(shards, b, seed=3).join_size(epsilon=0.3)
        with local_cluster(shards, b, seed=3, tree=2) as (server, client):
            assert server.tree is not None and not server.tree.is_flat
            value = client.join_size(epsilon=0.3)
            report = client.last_service
        assert value.value == reference.value
        _assert_edge_invariant(report)

    def test_streaming_session_over_the_tree(self):
        """Epoch deltas merge at the aggregators over real sockets too."""
        shards, b = _cluster_data()
        tree = _two_level_tree()
        flat = ClusterEstimator(shards, b, seed=19)
        reference_session = flat.stream(preload=True)
        reference_live = reference_session.live_lp_norm(p=2.0)
        with local_cluster(shards, b, seed=19, tree=tree) as (server, client):
            client.query("stream_open")
            for index, shard in enumerate(shards):
                offset = sum(s.shape[0] for s in shards[:index])
                client.query(
                    "stream_ingest",
                    site=index,
                    rows=offset + np.arange(shard.shape[0]),
                    deltas=shard,
                )
            client.query("stream_sync")
            live = client.query("stream_live_lp_norm", p=2.0)
            report = client.last_service
        assert live == reference_live
        assert report["tree"] == tree.describe()
        # Delta uploads traveled every leaf and aggregator edge.
        for edge in ("site-0", "site-3", "agg-0-0", "agg-0-1"):
            assert report["observed_link_bytes"].get(edge, 0) > 0
