"""Error paths under faults: dead sites, failed queries, malformed frames.

ISSUE 8's satellite bugfix (updated for ISSUE 9's degradation), pinned:

* a site killed mid-query no longer fails the query: the coordinator
  answers it *degraded* over the surviving sub-cluster (exclude +
  renormalize), explicitly marked via the answer's ``degraded`` meta —
  never a wedge of the serialized query loop, never a silent wrong
  answer, and the client socket is not leaked mid-protocol;
* a failed query's in-flight requests are written off: the stale replies
  its sites still owe are discarded on arrival and its undrained
  observed-byte records are dropped, so the *next* query's
  ``observed * 8 == wire`` invariant still holds exactly;
* a site agent answers a malformed payload with an ``error`` reply instead
  of dying (one bad frame used to take the whole site down);
* the tenant-facing coordinator (``num_sites=0``) serves its routes and
  the Prometheus scrape without any site cluster.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.service.client import SiteAgent, connect
from repro.service.messages import Message, ServiceError, encode_payload
from repro.service.metrics import parse_metrics_text
from repro.service.server import CoordinatorServer

NUM_SITES = 2


def _data():
    rng = np.random.default_rng(5)
    a = rng.integers(0, 3, size=(16, 12))
    b = rng.integers(0, 3, size=(12, 8))
    return np.array_split(a, NUM_SITES, axis=0), b


def _spawn_cluster(tmp: str):
    """A live cluster whose site *processes* the test can kill."""
    shards, b = _data()
    server = CoordinatorServer(
        b,
        num_sites=NUM_SITES,
        expected_row_counts=[shard.shape[0] for shard in shards],
        seed=3,
        host="127.0.0.1",
        port=0,
    ).start()
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    processes = []
    for index, shard in enumerate(shards):
        shard_path = Path(tmp) / f"shard-{index}.npy"
        np.save(shard_path, shard)
        processes.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.service.cli", "site",
                    "--host", "127.0.0.1", "--port", str(server.port),
                    "--index", str(index), "--shard", str(shard_path),
                ],
                env=env,
            )
        )
    if not server.wait_ready(60.0):
        raise TimeoutError("cluster not ready")
    return server, processes


def _query_with_deadline(client, method: str, timeout: float = 30.0, **kwargs):
    """Run one query under a hard deadline: a wedge fails, never hangs."""
    box: dict = {}

    def run():
        try:
            box["value"] = client.query(method, **kwargs)
        except Exception as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    thread.join(timeout)
    assert not thread.is_alive(), f"query {method!r} wedged (> {timeout}s)"
    if "error" in box:
        raise box["error"]
    return box["value"]


class TestDeadSite:
    def test_killed_site_degrades_the_query_not_the_server(self):
        with tempfile.TemporaryDirectory(prefix="repro-fault-") as tmp:
            server, processes = _spawn_cluster(tmp)
            try:
                client = connect("127.0.0.1", server.port)
                baseline = _query_with_deadline(
                    client, "lp_norm", p=2.0, epsilon=0.3
                )
                assert baseline.value > 0
                assert client.last_degraded is None

                processes[0].send_signal(signal.SIGKILL)
                processes[0].wait(timeout=10)

                # The dead site degrades this query, within the deadline:
                # the surviving sub-cluster answers (exclude+renormalize),
                # the degradation is explicitly marked — neither a wedge of
                # the single query worker nor a silent wrong answer.
                degraded = _query_with_deadline(
                    client, "lp_norm", p=2.0, epsilon=0.3
                )
                assert degraded.value > 0
                report = client.last_degraded
                assert report is not None
                assert report["failed_sites"] == ["site-0"]
                assert report["policy"] == "exclude"
                assert report["surviving_sites"] == NUM_SITES - 1
                assert report["reason"] in ("disconnect", "timeout")

                # The coordinator answers the next query: the loop is not
                # wedged and the client connection was not dropped.
                info = _query_with_deadline(client, "info")
                assert info["k"] == NUM_SITES
                assert client.last_degraded is None  # info is not degraded

                # Repeat offenders keep degrading fast (dead-link
                # fail-fast + cached degraded estimator, not a fresh
                # wedge each time).
                start = time.monotonic()
                _query_with_deadline(client, "l0_sample", epsilon=0.3)
                assert time.monotonic() - start < 10.0
                assert client.last_degraded is not None

                # A fresh client still gets served.
                other = connect("127.0.0.1", server.port)
                assert _query_with_deadline(other, "info")["k"] == NUM_SITES
                other.close()
                client.close()
            finally:
                server.stop()
                for process in processes:
                    if process.poll() is None:
                        process.terminate()
                    process.wait(timeout=10)


class TestFailedQueryIsolation:
    """A failed query must not bleed state into the next one."""

    def test_server_side_validation_error_then_clean_query(self):
        with tempfile.TemporaryDirectory(prefix="repro-fault-") as tmp:
            server, processes = _spawn_cluster(tmp)
            try:
                client = connect("127.0.0.1", server.port)
                with pytest.raises(ServiceError, match="ValueError"):
                    _query_with_deadline(client, "lp_norm", p=17.0, epsilon=0.3)
                value = _query_with_deadline(client, "lp_norm", p=2.0, epsilon=0.3)
                assert value.value > 0
                report = client.last_service
                assert report["observed_bytes"] * 8 == report["wire_bits"]
                client.close()
            finally:
                server.stop()
                for process in processes:
                    process.wait(timeout=10)

    def test_mid_protocol_fault_leaves_the_next_query_exact(self):
        """Inject a link failure *after* real traffic: the abandoned
        requests' stale replies and undrained observed-byte records must
        not corrupt the next query's meters."""
        with tempfile.TemporaryDirectory(prefix="repro-fault-") as tmp:
            server, processes = _spawn_cluster(tmp)
            try:
                client = connect("127.0.0.1", server.port)
                link = server._links["site-0"]
                original = link.request
                calls = {"n": 0}

                def flaky(message, timeout=None):
                    reply = original(message, timeout)
                    calls["n"] += 1
                    # Round opens coalesce into the first burst (staged
                    # submits), so the fault fires on the second *request*:
                    # still after real protocol traffic completed.
                    if calls["n"] >= 2:
                        raise ServiceError("injected mid-protocol fault")
                    return reply

                link.request = flaky
                try:
                    with pytest.raises(ServiceError, match="injected"):
                        _query_with_deadline(client, "lp_norm", p=2.0, epsilon=0.3)
                finally:
                    link.request = original
                assert calls["n"] >= 2  # the fault fired after real traffic

                reference = _query_with_deadline(
                    client, "lp_norm", p=2.0, epsilon=0.3
                )
                report = client.last_service
                # The invariant the bleed used to break: exact, per link.
                assert report["observed_bytes"] * 8 == report["wire_bits"]
                for site, wire_bits in report["wire_link_bits"].items():
                    assert report["observed_link_bytes"].get(site, 0) * 8 == wire_bits
                assert reference.value > 0
                client.close()
            finally:
                server.stop()
                for process in processes:
                    process.wait(timeout=10)


class TestSiteAgentRobustness:
    """One bad frame must answer with ``error``, never kill the agent."""

    def _agent(self) -> SiteAgent:
        return SiteAgent("127.0.0.1", 1, 0, np.zeros((2, 3)))

    def test_malformed_msg_payload_returns_error(self):
        reply = self._agent()._handle(
            Message("msg", {"round": 1}, b"\xffnot a payload")
        )
        assert reply.type == "error"
        assert reply.meta["error"]

    def test_malformed_relay_payload_returns_error(self):
        reply = self._agent()._handle(Message("relay", {}, b"\x00garbage"))
        assert reply.type == "error"

    def test_malformed_task_returns_error(self):
        reply = self._agent()._handle(
            Message("task", {"fn": "os:system"}, encode_payload(("true",)))
        )
        assert reply.type == "error"
        assert "refusing" in reply.meta["message"]

    def test_unexpected_type_returns_error(self):
        reply = self._agent()._handle(Message("assign", {}))
        assert reply.type == "error"

    def test_healthy_round_still_acks(self):
        reply = self._agent()._handle(Message("round", {"round": 2}))
        assert reply.type == "ack" and reply.meta["round"] == 2


class TestTenantOnlyServer:
    """``num_sites=0``: tenant routes + scrape, no site cluster at all."""

    @pytest.fixture()
    def server(self):
        rng = np.random.default_rng(2)
        b = rng.integers(0, 4, size=(12, 3))
        server = CoordinatorServer(b, num_sites=0, seed=9, port=0).start()
        yield server
        server.stop()

    def _scrape(self, port: int, path: str = "/metrics") -> tuple[str, str]:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(f"GET {path} HTTP/1.0\r\nHost: t\r\n\r\n".encode())
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        return head.decode().split("\r\n")[0], body.decode()

    def test_tenant_routes_over_the_socket(self, server):
        rng = np.random.default_rng(4)
        client = connect("127.0.0.1", server.port)
        assert client.cluster["k"] == 0 and client.cluster["ready"]
        client.query("tenant_open", name="alice", row_counts=[6, 6])
        client.query(
            "tenant_open",
            name="bob",
            row_counts=[12],
            quota={"byte_budget": 1, "policy": "throttle"},
        )
        client.query(
            "tenant_ingest",
            name="alice",
            site=0,
            rows=np.arange(4),
            deltas=rng.integers(-2, 3, size=(4, 12)),
        )
        report = client.query("tenant_end_epoch", name="alice", force=True)
        assert report.total_bytes > 0 and not report.throttled
        result = client.query("tenant_query", name="alice", query="lp_norm", p=2.0)
        assert result.value >= 0
        assert client.query("tenants") == ["alice", "bob"]
        statement = client.query("tenant_report", name="alice")
        assert statement["usage"]["queries"] == 1
        aggregate = client.query("aggregate_report")
        assert aggregate["meters_consistent"]
        closed = client.query("tenant_close", name="bob")
        assert closed["closed"]
        client.close()

    def test_quota_rejection_travels_as_a_service_error(self, server):
        client = connect("127.0.0.1", server.port)
        client.query(
            "tenant_open",
            name="capped",
            row_counts=[12],
            quota={"byte_budget": 1, "policy": "reject"},
        )
        rng = np.random.default_rng(6)
        for _ in range(2):
            client.query(
                "tenant_ingest",
                name="capped",
                site=0,
                rows=np.arange(3),
                deltas=rng.integers(-2, 3, size=(3, 12)),
            )
            try:
                client.query("tenant_end_epoch", name="capped", force=True)
            except ServiceError as exc:
                assert "QuotaExceededError" in str(exc)
                break
        else:
            pytest.fail("quota never enforced")
        # The failed route did not wedge the loop.
        assert client.query("tenants") == ["capped"]
        client.close()

    def test_metrics_scrape_parses(self, server):
        client = connect("127.0.0.1", server.port)
        client.query("tenant_open", name="alice", row_counts=[12])
        rng = np.random.default_rng(8)
        client.query(
            "tenant_ingest",
            name="alice",
            site=0,
            rows=np.arange(5),
            deltas=rng.integers(-2, 3, size=(5, 12)),
        )
        client.query("tenant_end_epoch", name="alice", force=True)
        status, body = self._scrape(server.port)
        assert status == "HTTP/1.0 200 OK"
        parsed = parse_metrics_text(body)
        assert parsed[("repro_tenants", ())] == 1
        assert parsed[("repro_ingest_rows_total", (("tenant", "alice"),))] == 5
        assert parsed[("repro_epochs_total", (("tenant", "alice"),))] == 1
        # The scrape is a side channel: the message client still works.
        assert client.query("tenants") == ["alice"]
        client.close()

    def test_unknown_http_path_is_404(self, server):
        status, _ = self._scrape(server.port, "/nope")
        assert status.startswith("HTTP/1.0 404")

    def test_cluster_queries_are_refused_without_sites(self, server):
        client = connect("127.0.0.1", server.port)
        with pytest.raises(ServiceError, match="site cluster"):
            client.query("lp_norm", p=2.0, epsilon=0.3)
        # ... but the refusal leaves the tenant loop alive.
        assert client.query("tenants") == []
        client.close()
