"""Framing: any byte-level chunking of a framed stream reassembles identically.

TCP guarantees bytes in order but says nothing about read boundaries, so
the frame decoder must be invariant to how the stream is sliced — that is
the hypothesis property here.  The adversarial cases pin the loud-failure
contract: wrong magic, wrong version, oversize length and truncated tails
all raise :class:`~repro.comm.framing.FramingError`, never garbage frames.
"""

from __future__ import annotations

import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.framing import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FramingError,
    decode_frames,
    encode_frame,
    encode_frames,
)


class TestRoundTrip:
    def test_single_frame(self):
        assert decode_frames(encode_frame(b"hello")) == [b"hello"]

    def test_empty_body(self):
        assert decode_frames(encode_frame(b"")) == [b""]

    def test_concatenated_frames_decode_in_order(self):
        bodies = [b"a", b"", b"yz" * 100, b"\x00\xff"]
        stream = b"".join(encode_frame(body) for body in bodies)
        assert decode_frames(stream) == bodies

    def test_header_size_is_documented(self):
        assert len(encode_frame(b"")) == HEADER_BYTES


@settings(max_examples=200, deadline=None)
@given(
    bodies=st.lists(st.binary(max_size=200), max_size=8),
    data=st.data(),
)
def test_any_chunking_reassembles_identically(bodies, data):
    """The load-bearing property: chunk boundaries are invisible."""
    stream = b"".join(encode_frame(body) for body in bodies)
    cuts = sorted(
        data.draw(
            st.lists(st.integers(0, len(stream)), max_size=30),
            label="cut points",
        )
    )
    edges = [0, *cuts, len(stream)]
    decoder = FrameDecoder()
    reassembled = []
    for start, end in zip(edges, edges[1:]):
        reassembled.extend(decoder.feed(stream[start:end]))
    decoder.close()
    assert reassembled == bodies
    assert decoder.pending == 0


@settings(max_examples=100, deadline=None)
@given(bodies=st.lists(st.binary(max_size=200), max_size=8), data=st.data())
def test_coalesced_batch_is_byte_identical_and_chunk_invariant(bodies, data):
    """``encode_frames`` (one coalesced write) == per-frame writes, and the
    decoder reassembles the batch identically under any chunking."""
    batch = encode_frames(bodies)
    assert batch == b"".join(encode_frame(body) for body in bodies)
    cuts = sorted(data.draw(st.lists(st.integers(0, len(batch)), max_size=20)))
    decoder = FrameDecoder()
    reassembled = []
    for start, end in zip([0, *cuts], [*cuts, len(batch)]):
        reassembled.extend(decoder.feed(batch[start:end]))
    decoder.close()
    assert reassembled == bodies


@settings(max_examples=100, deadline=None)
@given(body=st.binary(max_size=300), drop=st.integers(min_value=1, max_value=50))
def test_truncated_tail_raises_on_close(body, drop):
    frame = encode_frame(body)
    decoder = FrameDecoder()
    decoder.feed(frame[: max(0, len(frame) - drop)])
    if decoder.pending:
        with pytest.raises(FramingError, match="incomplete frame"):
            decoder.close()
    else:
        decoder.close()  # the drop swallowed whole frames only


class TestAdversarial:
    def test_bad_magic_raises_immediately(self):
        with pytest.raises(FramingError, match="magic"):
            FrameDecoder().feed(b"XX\x01\x00\x00\x00\x00")

    def test_bad_version_raises_immediately(self):
        with pytest.raises(FramingError, match="version"):
            FrameDecoder().feed(b"RP\x07\x00\x00\x00\x00")

    def test_oversize_declared_length_raises_before_buffering(self):
        length = (MAX_FRAME_BYTES + 1).to_bytes(4, "little")
        with pytest.raises(FramingError, match="cap"):
            FrameDecoder().feed(b"RP\x01" + length)

    def test_oversize_body_refused_at_encode(self):
        class _FakeLen(bytes):
            def __len__(self):
                return MAX_FRAME_BYTES + 1

        with pytest.raises(FramingError, match="cap"):
            encode_frame(_FakeLen())

    def test_garbage_after_valid_frame_raises(self):
        with pytest.raises(FramingError, match="magic"):
            decode_frames(encode_frame(b"ok") + b"garbage")


class TestSocketRoundTrip:
    def test_frames_survive_a_real_socket_in_dribbled_chunks(self):
        """End to end over an actual OS socket pair, written byte by byte."""
        bodies = [b"alpha", b"", b"\x00" * 257, bytes(range(256))]
        stream = b"".join(encode_frame(body) for body in bodies)
        left, right = socket.socketpair()
        try:
            received = []
            decoder = FrameDecoder()
            # Dribble in tiny writes to force chunk boundaries mid-header.
            for start in range(0, len(stream), 3):
                left.sendall(stream[start : start + 3])
                while True:
                    right.setblocking(False)
                    try:
                        chunk = right.recv(4096)
                    except BlockingIOError:
                        break
                    finally:
                        right.setblocking(True)
                    received.extend(decoder.feed(chunk))
            left.shutdown(socket.SHUT_WR)
            while chunk := right.recv(4096):
                received.extend(decoder.feed(chunk))
            decoder.close()
            assert received == bodies
        finally:
            left.close()
            right.close()
