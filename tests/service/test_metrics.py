"""The metrics registry: Prometheus text exposition, exactly.

The registry is dependency-free, so its own parser
(:func:`~repro.service.metrics.parse_metrics_text`) doubles as the scrape
contract: everything :meth:`~repro.service.metrics.MetricsRegistry.render`
emits must parse back to the same samples, including escaped label values
and the inf/nan formatting rules of exposition format 0.0.4.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.service.metrics import (
    MetricsError,
    MetricsRegistry,
    parse_metrics_text,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounters:
    def test_counts_and_reads_back(self, registry):
        rows = registry.counter("rows_total", "rows", ("tenant",))
        rows.inc(tenant="a")
        rows.inc(4, tenant="a")
        rows.inc(2, tenant="b")
        assert rows.value(tenant="a") == 5
        assert rows.value(tenant="b") == 2

    def test_unlabelled_counter(self, registry):
        total = registry.counter("epochs_total", "epochs")
        total.inc()
        total.inc(2)
        assert total.value() == 3

    def test_negative_increment_is_refused(self, registry):
        rows = registry.counter("rows_total", "rows")
        with pytest.raises(MetricsError, match="cannot decrease"):
            rows.inc(-1)

    def test_unseen_labels_read_zero(self, registry):
        rows = registry.counter("rows_total", "rows", ("tenant",))
        assert rows.value(tenant="ghost") == 0

    def test_label_name_set_must_match_exactly(self, registry):
        rows = registry.counter("rows_total", "rows", ("tenant",))
        with pytest.raises(MetricsError):
            rows.inc(site="x")
        with pytest.raises(MetricsError):
            rows.inc(tenant="a", site="x")


class TestGauges:
    def test_set_inc_dec(self, registry):
        lag = registry.gauge("lag", "lag", ("tenant",))
        lag.set(3.5, tenant="a")
        lag.inc(tenant="a")
        lag.dec(0.5, tenant="a")
        assert lag.value(tenant="a") == 4.0

    def test_gauges_may_go_negative(self, registry):
        g = registry.gauge("delta", "delta")
        g.dec(2)
        assert g.value() == -2

    def test_remove_drops_the_series(self, registry):
        lag = registry.gauge("lag", "lag", ("tenant",))
        lag.set(1, tenant="a")
        lag.set(2, tenant="b")
        lag.remove(tenant="a")
        assert list(lag.samples()) == [("b",)]
        lag.remove(tenant="a")  # idempotent


class TestRegistry:
    def test_reregistration_is_idempotent(self, registry):
        first = registry.counter("rows_total", "rows", ("tenant",))
        second = registry.counter("rows_total", "rows", ("tenant",))
        assert first is second

    def test_kind_mismatch_is_refused(self, registry):
        registry.counter("rows_total", "rows")
        with pytest.raises(MetricsError, match="registered"):
            registry.gauge("rows_total", "rows")

    def test_label_mismatch_is_refused(self, registry):
        registry.counter("rows_total", "rows", ("tenant",))
        with pytest.raises(MetricsError, match="registered"):
            registry.counter("rows_total", "rows", ("tenant", "site"))

    def test_invalid_metric_name_is_refused(self, registry):
        with pytest.raises(MetricsError):
            registry.counter("bad-name", "nope")

    def test_invalid_label_name_is_refused(self, registry):
        with pytest.raises(MetricsError):
            registry.counter("ok_total", "ok", ("bad-label",))

    def test_get_unknown_metric(self, registry):
        assert registry.get("nope") is None


class TestRenderParseRoundTrip:
    def test_round_trip_preserves_every_sample(self, registry):
        rows = registry.counter("rows_total", "Rows ingested", ("tenant",))
        lag = registry.gauge("lag", "Lag", ("tenant",))
        up = registry.gauge("up", "Up")
        rows.inc(7, tenant="a")
        rows.inc(9, tenant="b")
        lag.set(2.5, tenant="a")
        up.set(1)
        parsed = parse_metrics_text(registry.render())
        assert parsed == {
            ("rows_total", (("tenant", "a"),)): 7.0,
            ("rows_total", (("tenant", "b"),)): 9.0,
            ("lag", (("tenant", "a"),)): 2.5,
            ("up", ()): 1.0,
        }

    def test_help_and_type_lines(self, registry):
        registry.counter("rows_total", "Rows ingested", ("tenant",)).inc(tenant="a")
        text = registry.render()
        assert "# HELP rows_total Rows ingested" in text
        assert "# TYPE rows_total counter" in text

    def test_label_values_are_escaped(self, registry):
        g = registry.gauge("g", "g", ("name",))
        tricky = 'we"ird\\ten\nant'
        g.set(1, name=tricky)
        parsed = parse_metrics_text(registry.render())
        assert parsed == {("g", (("name", tricky),)): 1.0}

    def test_inf_and_nan_render(self, registry):
        g = registry.gauge("g", "g", ("k",))
        g.set(math.inf, k="hi")
        g.set(-math.inf, k="lo")
        g.set(math.nan, k="nan")
        parsed = parse_metrics_text(registry.render())
        assert parsed[("g", (("k", "hi"),))] == math.inf
        assert parsed[("g", (("k", "lo"),))] == -math.inf
        assert math.isnan(parsed[("g", (("k", "nan"),))])

    def test_integral_values_render_without_fraction(self, registry):
        registry.counter("n_total", "n").inc(3)
        line = [
            line
            for line in registry.render().splitlines()
            if not line.startswith("#") and line.startswith("n_total")
        ]
        assert line == ["n_total 3"]

    def test_empty_registry_renders_empty(self, registry):
        assert parse_metrics_text(registry.render()) == {}


class TestParserStrictness:
    def test_garbage_line_is_an_error(self):
        with pytest.raises(MetricsError):
            parse_metrics_text("what even is this\n")

    def test_duplicate_sample_is_an_error(self):
        with pytest.raises(MetricsError, match="duplicate"):
            parse_metrics_text('m{a="1"} 1\nm{a="1"} 2\n')

    def test_unparseable_value_is_an_error(self):
        with pytest.raises(MetricsError):
            parse_metrics_text("m noodles\n")


class TestThreadSafety:
    def test_concurrent_increments_lose_nothing(self, registry):
        rows = registry.counter("rows_total", "rows", ("tenant",))

        def worker(tenant: str) -> None:
            for _ in range(2000):
                rows.inc(tenant=tenant)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in ("a", "b", "a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert rows.value(tenant="a") == 4000
        assert rows.value(tenant="b") == 4000
