"""Accounting invariants of the unified engine's transports.

Every metered transport — the two-party ``Channel`` view and the star
``Network`` under it — must satisfy, after any protocol execution:

* per-round bits partition the total: ``sum(bits_per_round()) == total_bits``;
* per-label bits partition the total: ``sum(bits_by_label()) == total_bits``;
* round indices are contiguous from 1;
* per-link meters partition the aggregate (star only);
* per-sender bits partition the total.

These are checked against *real* engine executions (not synthetic sends), so
a protocol that mislabels or double-charges a message fails here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.channel import Channel
from repro.comm.network import Network
from repro.engine import (
    StarBinaryHeavyHittersProtocol,
    StarKappaApproxLinfProtocol,
    StarL0SamplingProtocol,
    StarL1SamplingProtocol,
    StarLpNormProtocol,
    StarTwoPlusEpsilonLinfProtocol,
)
from repro.matrices import random_binary_pair


@pytest.fixture(scope="module")
def workload():
    return random_binary_pair(48, density=0.12, seed=17)


ENGINE_PROTOCOLS = [
    lambda: StarLpNormProtocol(0.0, 0.4, seed=5),
    lambda: StarL0SamplingProtocol(0.4, seed=5),
    lambda: StarL1SamplingProtocol(seed=5),
    lambda: StarTwoPlusEpsilonLinfProtocol(0.4, seed=5),
    lambda: StarKappaApproxLinfProtocol(6, seed=5),
    lambda: StarBinaryHeavyHittersProtocol(0.1, 0.05, seed=5),
]


def _assert_log_invariants(total_bits, rounds, per_round, by_label):
    assert sum(per_round.values()) == total_bits
    assert sum(by_label.values()) == total_bits
    assert set(per_round) == set(range(1, rounds + 1))
    assert all(bits >= 0 for bits in per_round.values())


class TestChannelInvariantsUnderEngine:
    @pytest.mark.parametrize("factory", ENGINE_PROTOCOLS)
    def test_two_party_view(self, workload, factory):
        a, b = workload
        result = factory().run_two_party(a, b)
        cost = result.cost
        assert sum(cost.breakdown.values()) == cost.total_bits
        assert cost.alice_bits + cost.bob_bits == cost.total_bits
        assert cost.rounds >= 1

    def test_channel_per_round_partition(self, workload):
        """Drive a raw Channel and check bits_per_round / bits_by_label."""
        channel = Channel()
        channel.send("alice", "bob", 1, bits=10, label="x")
        channel.send("alice", "bob", 1, bits=5, label="y")
        channel.send("bob", "alice", 1, bits=7, label="x")
        channel.send("alice", "bob", 1, bits=3, label="z")
        _assert_log_invariants(
            channel.total_bits,
            channel.rounds,
            channel.bits_per_round(),
            channel.bits_by_label(),
        )
        assert channel.bits_per_round() == {1: 15, 2: 7, 3: 3}
        assert channel.bits_by_label() == {"x": 17, "y": 5, "z": 3}

    def test_channel_reset_clears_everything(self):
        channel = Channel()
        channel.send("alice", "bob", 1, bits=4)
        channel.reset()
        assert channel.total_bits == 0
        assert channel.rounds == 0
        assert channel.bits_per_round() == {}
        assert channel.bits_by_label() == {}


class TestNetworkInvariantsUnderEngine:
    @pytest.mark.parametrize("factory", ENGINE_PROTOCOLS)
    @pytest.mark.parametrize("k", [1, 3])
    def test_star_partitions(self, workload, factory, k):
        a, b = workload
        shards = np.array_split(a, k, axis=0)
        result = factory().run(shards, b)
        cost = result.cost
        _assert_log_invariants(
            cost.total_bits, cost.rounds, cost.per_round, cost.breakdown
        )
        # Per-link meters partition the aggregate.
        assert sum(cost.link_bits.values()) == cost.total_bits
        assert cost.max_link_bits == max(cost.link_bits.values())
        # Per-sender bits partition the aggregate.
        assert cost.coordinator_bits + sum(cost.site_bits.values()) == cost.total_bits

    def test_channel_and_one_site_network_agree(self, workload):
        """The Channel is literally a one-leaf star: identical meters."""
        channel = Channel()
        network = Network(["alice"], coordinator_name="bob")
        for sender, receiver, bits, label in [
            ("alice", "bob", 11, "up"),
            ("bob", "alice", 13, "down"),
            ("bob", "alice", 2, "down"),
            ("alice", "bob", 7, "up"),
        ]:
            channel.send(sender, receiver, None, bits=bits, label=label)
            network.send(sender, receiver, None, bits=bits, label=label)
        assert channel.total_bits == network.total_bits
        assert channel.rounds == network.rounds
        assert channel.bits_per_round() == network.bits_per_round()
        assert channel.bits_by_label() == network.bits_by_label()
        assert channel.bits_sent_by("alice") == network.bits_sent_by("alice")
