"""Tests for the shared MessageLog accounting base."""

from __future__ import annotations

import pytest

from repro.comm.accounting import MessageLog
from repro.comm.channel import Channel


class TestMessageLog:
    def test_round_flips_on_sender_by_default(self):
        log = MessageLog()
        log.record("a", "b", None, bits=1)
        log.record("a", "b", None, bits=2)
        log.record("b", "a", None, bits=4)
        log.record("a", "b", None, bits=8)
        assert log.rounds == 3
        assert log.total_bits == 15

    def test_direction_key_overrides_sender(self):
        log = MessageLog()
        log.record("s0", "coord", None, bits=1, direction_key="up")
        log.record("s1", "coord", None, bits=1, direction_key="up")
        log.record("coord", "s0", None, bits=1, direction_key="down")
        assert log.rounds == 2

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MessageLog().record("a", "b", None, bits=-1)

    def test_bits_per_round(self):
        log = MessageLog()
        log.record("a", "b", None, bits=3)
        log.record("a", "b", None, bits=5)
        log.record("b", "a", None, bits=7)
        assert log.bits_per_round() == {1: 8, 2: 7}
        assert sum(log.bits_per_round().values()) == log.total_bits

    def test_bits_per_round_keys_ascending(self):
        log = MessageLog()
        for sender in ["a", "b", "a", "b", "a"]:
            log.record(sender, "x" if sender != "x" else "y", None, bits=1)
        assert list(log.bits_per_round()) == sorted(log.bits_per_round())

    def test_bits_by_label_accumulates(self):
        log = MessageLog()
        log.record("a", "b", None, label="x", bits=1)
        log.record("b", "a", None, label="y", bits=2)
        log.record("a", "b", None, label="x", bits=4)
        assert log.bits_by_label() == {"x": 5, "y": 2}

    def test_reset(self):
        log = MessageLog()
        log.record("a", "b", None, bits=1)
        log.reset()
        assert log.rounds == 0
        assert log.total_bits == 0
        assert log.messages == []
        # After a reset the first message opens round 1 again.
        log.record("b", "a", None, bits=1)
        assert log.rounds == 1


class TestChannelInheritsAccounting:
    def test_channel_bits_per_round(self):
        channel = Channel()
        channel.send("alice", "bob", 1, bits=10, label="r1")
        channel.send("bob", "alice", 1, bits=20, label="r2")
        channel.send("bob", "alice", 1, bits=30, label="r2")
        assert channel.bits_per_round() == {1: 10, 2: 50}
        assert channel.bits_by_label() == {"r1": 10, "r2": 50}
