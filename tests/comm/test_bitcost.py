"""Unit tests for the bit-cost accounting rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import bitcost


class TestBitsForIndex:
    def test_universe_of_one_costs_one_bit(self):
        assert bitcost.bits_for_index(1) == 1

    def test_power_of_two_universe(self):
        assert bitcost.bits_for_index(256) == 8

    def test_non_power_of_two_rounds_up(self):
        assert bitcost.bits_for_index(100) == 7

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            bitcost.bits_for_index(0)


class TestBitsForInt:
    def test_zero_costs_two_bits(self):
        assert bitcost.bits_for_int(0) == 2

    def test_sign_is_charged(self):
        assert bitcost.bits_for_int(-5) == bitcost.bits_for_int(5)

    def test_grows_logarithmically(self):
        assert bitcost.bits_for_int(1023) == 11
        assert bitcost.bits_for_int(1024) == 12


class TestBitsForCollections:
    def test_index_list_scales_with_length(self):
        short = bitcost.bits_for_index_list([1, 2], 256)
        long = bitcost.bits_for_index_list(list(range(10)), 256)
        assert long > short
        assert long - bitcost.bits_for_int(10) == 10 * 8

    def test_float_vector_charged_64_bits_per_entry(self):
        vector = np.zeros(10, dtype=float)
        assert bitcost.bits_for_vector(vector) == 10 * bitcost.FLOAT_BITS

    def test_int_vector_charged_int_entry_bits(self):
        vector = np.zeros(10, dtype=np.int64)
        assert bitcost.bits_for_vector(vector) == 10 * bitcost.INT_ENTRY_BITS

    def test_matrix_cost_equals_flattened_vector_cost(self):
        matrix = np.ones((4, 5))
        assert bitcost.bits_for_matrix(matrix) == bitcost.bits_for_vector(matrix.reshape(-1))

    def test_per_entry_override(self):
        matrix = np.ones((4, 5), dtype=np.int64)
        assert bitcost.bits_for_matrix(matrix, per_entry=1) == 20


class TestBitsForPayload:
    def test_none_is_free(self):
        assert bitcost.bits_for_payload(None) == 0

    def test_bool_costs_one_bit(self):
        assert bitcost.bits_for_payload(True) == 1

    def test_int_and_float(self):
        assert bitcost.bits_for_payload(7) == bitcost.bits_for_int(7)
        assert bitcost.bits_for_payload(3.14) == bitcost.FLOAT_BITS

    def test_ndarray(self):
        array = np.arange(6, dtype=float)
        assert bitcost.bits_for_payload(array) == 6 * bitcost.FLOAT_BITS

    def test_index_list_with_universe(self):
        assert bitcost.bits_for_payload([1, 2, 3], universe=16) == bitcost.bits_for_index_list(
            [1, 2, 3], 16
        )

    def test_dict_sums_keys_and_values(self):
        payload = {1: np.zeros(2), 2: np.zeros(3)}
        cost = bitcost.bits_for_payload(payload)
        assert cost > 5 * bitcost.INT_ENTRY_BITS or cost > 0

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            bitcost.bits_for_payload(object())

    def test_sparse_rows_helper(self):
        cost = bitcost.bits_for_sparse_rows([0, 3, 5], n_cols=64, n_rows=128)
        assert cost == 3 * (64 + 7)
