"""Link models, network conditions and the simulated makespan.

The makespan model prices a recorded transcript — it must never perturb the
transcript itself, must be deterministic for a fixed conditions object
(jitter included), and must respect the structural lower bound the
accounting layer documents: no schedule can beat the busiest link's
serialization delay plus one latency.  The latter is property-tested over
arbitrary message schedules and arbitrary uniform link models.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import LinkModel, Network, NetworkConditions
from repro.comm.channel import Channel
from repro.comm.conditions import IDEAL_LINK, simulate_makespan


class TestLinkModel:
    def test_ideal_is_free(self):
        assert IDEAL_LINK.transfer_seconds(10**9) == 0.0

    def test_latency_plus_serialization(self):
        model = LinkModel(latency=0.5, bandwidth=100.0)
        assert model.transfer_seconds(200) == pytest.approx(0.5 + 2.0)

    def test_infinite_bandwidth_charges_latency_only(self):
        assert LinkModel(latency=0.25).transfer_seconds(10**12) == 0.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency": -1.0},
            {"bandwidth": 0.0},
            {"bandwidth": -5.0},
            {"jitter": -0.1},
            {"latency": math.nan},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LinkModel(**kwargs)


class TestNetworkConditions:
    def test_override_takes_precedence(self):
        slow = LinkModel(latency=9.0)
        conditions = NetworkConditions(LinkModel(), overrides={"site-1": slow})
        assert conditions.link("site-0") is conditions.default
        assert conditions.link("site-1") is slow

    def test_ideal_detection(self):
        assert NetworkConditions().is_ideal()
        assert not NetworkConditions(LinkModel(latency=1.0)).is_ideal()
        assert not NetworkConditions(overrides={"x": LinkModel(latency=1.0)}).is_ideal()

    def test_dropped_sites_are_carried(self):
        conditions = NetworkConditions(dropped={"site-2"})
        assert conditions.dropped == frozenset({"site-2"})

    def test_unknown_override_keys_are_rejected_by_the_network(self):
        """A typo'd straggler override must not silently price as default."""
        conditions = NetworkConditions(overrides={"site-0": LinkModel(latency=5.0)})
        with pytest.raises(ValueError, match="site-0"):
            Network(["alice"], "bob", conditions=conditions)
        # Valid keys construct fine; so do overrides for sites the
        # conditions themselves declare dropped (the driver excludes them
        # from the star before wiring it).
        Network(["alice"], "bob", conditions=NetworkConditions(
            overrides={"alice": LinkModel(latency=5.0)}
        ))
        Network(["site-0"], conditions=NetworkConditions(
            overrides={"site-1": LinkModel(latency=5.0)}, dropped={"site-1"}
        ))

    def test_jitter_is_deterministic_per_conditions(self):
        conditions = NetworkConditions(LinkModel(jitter=0.5), jitter_seed=7)
        first = conditions.link_seconds("site-0", 1, 100)
        assert conditions.link_seconds("site-0", 1, 100) == first
        assert 0.0 <= first <= 0.5

    def test_jitter_varies_with_seed_site_and_round(self):
        base = NetworkConditions(LinkModel(jitter=0.5), jitter_seed=7)
        other_seed = NetworkConditions(LinkModel(jitter=0.5), jitter_seed=8)
        draws = {
            base.link_seconds("site-0", 1, 0),
            base.link_seconds("site-0", 2, 0),
            base.link_seconds("site-1", 1, 0),
            other_seed.link_seconds("site-0", 1, 0),
        }
        assert len(draws) == 4  # all distinct with overwhelming probability


class TestNetworkMakespan:
    def scripted_network(self, conditions=None) -> Network:
        network = Network(["a", "b"], "hub", conditions=conditions)
        network.send("a", "hub", None, bits=40)   # round 1 (up), link a
        network.send("b", "hub", None, bits=20)   # round 1 (up), link b
        network.send("hub", "a", None, bits=10)   # round 2 (down), link a
        return network

    def test_ideal_conditions_price_zero(self):
        network = self.scripted_network()
        assert network.makespan() == 0.0
        assert network.makespan_per_round() == {1: 0.0, 2: 0.0}

    def test_critical_path_over_rounds(self):
        conditions = NetworkConditions(LinkModel(latency=1.0, bandwidth=10.0))
        network = self.scripted_network(conditions)
        # Round 1: links transfer in parallel -> max(1 + 4, 1 + 2) = 5.
        # Round 2: only link a active -> 1 + 1 = 2.
        assert network.makespan_per_round() == {1: pytest.approx(5.0), 2: pytest.approx(2.0)}
        assert network.makespan() == pytest.approx(7.0)

    def test_straggler_override_dominates(self):
        conditions = NetworkConditions(
            LinkModel(latency=0.0, bandwidth=1e9),
            overrides={"b": LinkModel(latency=60.0)},
        )
        network = self.scripted_network(conditions)
        per_round = network.makespan_per_round()
        assert per_round[1] >= 60.0          # b's latency gates round 1
        assert per_round[2] < 1.0            # b idle in round 2
        assert network.makespan() == pytest.approx(sum(per_round.values()))

    def test_makespan_keys_align_with_bits_per_round(self):
        conditions = NetworkConditions(LinkModel(latency=1.0))
        network = self.scripted_network(conditions)
        assert network.makespan_per_round().keys() == network.bits_per_round().keys()

    def test_same_link_same_round_shares_one_latency(self):
        conditions = NetworkConditions(LinkModel(latency=1.0, bandwidth=math.inf))
        network = Network(["a"], "hub", conditions=conditions)
        network.send("a", "hub", None, bits=5)
        network.send("a", "hub", None, bits=5)  # same round, same burst
        assert network.makespan() == pytest.approx(1.0)

    def test_channel_view_prices_the_same(self):
        conditions = NetworkConditions(LinkModel(latency=2.0, bandwidth=8.0))
        channel = Channel(conditions=conditions)
        channel.send("alice", "bob", None, bits=16)
        channel.send("bob", "alice", None, bits=8)
        assert channel.makespan() == pytest.approx((2.0 + 2.0) + (2.0 + 1.0))


# --------------------------------------------------------------------------
# Satellite property: for ANY LinkModel and ANY schedule, the simulated
# makespan is at least max(link bits) / bandwidth + latency — the busiest
# link must fully serialize, and at least one round pays the latency.
# --------------------------------------------------------------------------

schedules = st.lists(
    st.tuples(
        st.integers(0, 3),                 # site index
        st.booleans(),                     # upstream?
        st.integers(0, 10_000),            # bits
    ),
    min_size=1,
    max_size=40,
)
link_models = st.builds(
    LinkModel,
    latency=st.floats(0.0, 5.0, allow_nan=False),
    bandwidth=st.floats(0.5, 1e6, allow_nan=False, exclude_min=False),
    jitter=st.floats(0.0, 1.0, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(schedule=schedules, model=link_models, jitter_seed=st.integers(0, 2**16))
def test_makespan_dominates_busiest_link(schedule, model, jitter_seed):
    conditions = NetworkConditions(model, jitter_seed=jitter_seed)
    network = Network([f"site-{i}" for i in range(4)], conditions=conditions)
    for site, upstream, bits in schedule:
        name = f"site-{site}"
        sender, receiver = (name, "coordinator") if upstream else ("coordinator", name)
        network.send(sender, receiver, None, bits=bits)

    makespan = network.makespan()
    lower_bound = network.max_link_bits / model.bandwidth + model.latency
    assert makespan >= lower_bound - 1e-9
    # ... and every round pays at least one latency on its slowest link.
    assert makespan >= network.rounds * model.latency - 1e-9
    # Deterministic re-pricing, jitter included.
    assert network.makespan() == makespan
    # The simulation is a pure function of (round grouping, conditions).
    total, per_round = simulate_makespan(
        network.log.per_round(), conditions, network.coordinator_name
    )
    assert total == makespan
    assert sum(per_round.values()) == pytest.approx(total)
