"""TreeSpec shapes and the metered TreeNetwork overlay.

The contract split: :class:`~repro.comm.tree.TreeSpec` is a pure shape
(constructors, validation, restriction), :class:`~repro.comm.network
.TreeNetwork` is the metered routing overlay on top of it — upstream
payloads stage at their parent aggregator and drain bottom-up as ONE
forwarded message per sibling group (merged bits = the largest child
burst when the group is exact-mergeable, summed bits when it must travel
as a batch), so the root's ingress is ``fan_out`` bursts per round
instead of k.  That last sentence is the whole point of the tree, and
``root_link_bits`` / ``max_root_link_bits`` are where it is observable.
"""

import math

import numpy as np
import pytest

from repro.comm.conditions import LinkModel, NetworkConditions
from repro.comm.network import DOWNSTREAM, UPSTREAM, Network, TreeNetwork
from repro.comm.tree import TreeSpec


def _sites(k):
    return [f"site-{i}" for i in range(k)]


class TestTreeSpecConstructors:
    def test_flat_is_the_depth_one_star(self):
        tree = TreeSpec.flat(_sites(5))
        assert tree.is_flat
        assert tree.depth == 1
        assert tree.fan_out == 5
        assert tree.aggregators == []
        assert tree.site_names == _sites(5)
        assert tree.describe() == {
            "depth": 1,
            "fan_out": 5,
            "aggregators": 0,
            "sites": 5,
            "flat": True,
        }

    def test_regular_groups_contiguous_runs(self):
        tree = TreeSpec.regular(_sites(8), 2)
        assert not tree.is_flat
        assert tree.depth == 3  # two aggregator levels (8 -> 4 -> 2) + leaf hop
        assert tree.fan_out == 2
        assert tree.site_names == _sites(8)
        # Level-0 aggregators front contiguous pairs of sites.
        assert tree.children["agg-0-0"] == ("site-0", "site-1")
        assert tree.children["agg-0-3"] == ("site-6", "site-7")
        # The parent chain composes into root-to-leaf path edges.
        assert tree.path_edges("site-5") == ["agg-1-1", "agg-0-2", "site-5"]
        assert tree.ancestors("site-5") == ["agg-0-2", "agg-1-1"]

    def test_regular_with_large_fan_out_degenerates_to_flat(self):
        tree = TreeSpec.regular(_sites(4), 8)
        assert tree.is_flat
        assert tree.children[tree.root] == tuple(_sites(4))

    def test_regular_rejects_fan_out_below_two(self):
        with pytest.raises(ValueError, match="fan_out"):
            TreeSpec.regular(_sites(4), 1)

    def test_from_grouping_builds_arbitrary_shapes(self):
        tree = TreeSpec.from_grouping(_sites(6), [[0, 1], [2, [3, 4]], 5])
        # Sub-lists became path-named aggregators; site 5 stayed a root child.
        assert tree.children[tree.root] == ("agg-0", "agg-1", "site-5")
        assert tree.children["agg-1"] == ("site-2", "agg-1.1")
        assert tree.children["agg-1.1"] == ("site-3", "site-4")
        assert tree.depth == 3
        assert tree.node_depth("site-4") == 3
        assert tree.node_depth("site-5") == 1
        assert tree.subtree_sites("agg-1") == ["site-2", "site-3", "site-4"]

    def test_from_grouping_rejects_duplicate_and_missing_indices(self):
        with pytest.raises(ValueError, match="exactly"):
            TreeSpec.from_grouping(_sites(3), [[0, 1], 1])
        with pytest.raises(ValueError, match="missing"):
            TreeSpec.from_grouping(_sites(3), [[0, 1]])

    def test_site_names_reorder_but_cannot_rename(self):
        tree = TreeSpec(
            {"coordinator": ["b", "a"]}, site_names=["a", "b"]
        )
        assert tree.site_names == ["a", "b"]
        with pytest.raises(ValueError, match="leaves"):
            TreeSpec({"coordinator": ["b", "a"]}, site_names=["a", "c"])

    def test_rename_sites_keeps_the_shape(self):
        tree = TreeSpec.from_grouping(["x", "y", "z"], [[0, 1], 2])
        renamed = tree.rename_sites({"x": "site-0", "y": "site-1", "z": "site-2"})
        assert renamed.site_names == _sites(3)
        assert renamed.children["agg-0"] == ("site-0", "site-1")
        assert renamed.describe() == tree.describe()


class TestTreeSpecValidation:
    def test_two_parents_rejected(self):
        with pytest.raises(ValueError, match="two parents"):
            TreeSpec({"coordinator": ["agg", "s0"], "agg": ["s0"]})

    def test_root_as_child_rejected(self):
        with pytest.raises(ValueError, match="root cannot be a child"):
            TreeSpec({"coordinator": ["agg"], "agg": ["coordinator"]})

    def test_orphan_aggregator_rejected(self):
        with pytest.raises(ValueError, match="unreachable"):
            TreeSpec({"coordinator": ["s0"], "agg": ["s1"]})

    def test_childless_node_rejected(self):
        with pytest.raises(ValueError, match="no children"):
            TreeSpec({"coordinator": ["agg"], "agg": []})

    def test_missing_root_rejected(self):
        with pytest.raises(ValueError, match="no children entry"):
            TreeSpec({"agg": ["s0"]})


class TestTreeSpecRestrict:
    def test_empty_aggregators_disappear(self):
        tree = TreeSpec.regular(_sites(8), 2)
        kept = tree.restrict(["site-0", "site-1", "site-2"])
        assert kept.site_names == ["site-0", "site-1", "site-2"]
        # agg-0-2 / agg-0-3 lost every leaf and are gone entirely.
        assert "agg-0-3" not in kept.children
        assert "agg-1-1" not in kept.children
        # agg-0-1 keeps its hop with the single survivor site-2.
        assert kept.children["agg-0-1"] == ("site-2",)

    def test_restrict_errors(self):
        tree = TreeSpec.flat(_sites(3))
        with pytest.raises(ValueError, match="unknown sites"):
            tree.restrict(["site-9"])
        with pytest.raises(ValueError, match="zero sites"):
            tree.restrict([])


def _upload_all(net, payloads, label="up"):
    for name, payload in zip(net.tree.site_names, payloads):
        net.send(name, net.coordinator_name, payload, label=label)


class TestTreeNetworkUpstream:
    def test_mergeable_group_forwards_one_summary_at_max_child_bits(self):
        tree = TreeSpec.regular(_sites(4), 2)
        net = TreeNetwork(tree)
        payloads = [np.full(8, i, dtype=np.int64) for i in range(4)]
        _upload_all(net, payloads)
        bits = net.link_bits()  # triggers the drain
        leaf_bits = bits["site-0"]
        assert leaf_bits > 0
        # Aggregator edges carry ONE merged summary: bits = max child burst,
        # not the sum — the merge is real, not an accounting fiction.
        assert bits["agg-0-0"] == leaf_bits
        assert bits["agg-0-1"] == leaf_bits
        # And the forwarded payload IS the exact entrywise sum.
        merged = [
            m for m in net.log.messages if m.sender == "agg-0-0"
        ]
        assert len(merged) == 1
        np.testing.assert_array_equal(merged[0].payload, payloads[0] + payloads[1])

    def test_root_ingress_grows_with_fan_out_not_k(self):
        for k in (4, 8, 16):
            tree = TreeSpec.regular(_sites(k), 2)
            net = TreeNetwork(tree)
            _upload_all(net, [np.ones(8, dtype=np.int64)] * k)
            root = net.root_link_bits()
            assert len(root) == 2  # fan-in is the fan-out, whatever k is
            assert net.max_root_link_bits == net.link_bits()["site-0"]

    def test_unmergeable_group_batches_at_summed_bits(self):
        tree = TreeSpec.regular(_sites(4), 2)
        net = TreeNetwork(tree)
        # float payloads are never merged (lossy); they batch-forward.
        payloads = [np.linspace(0, 1, 8) for _ in range(4)]
        _upload_all(net, payloads)
        bits = net.link_bits()
        assert bits["agg-0-0"] == bits["site-0"] + bits["site-1"]
        batched = [m for m in net.log.messages if m.sender == "agg-0-0"]
        assert isinstance(batched[0].payload, list)
        assert len(batched[0].payload) == 2

    def test_multi_level_drain_cascades_bottom_up(self):
        tree = TreeSpec.from_grouping(_sites(4), [[0, [1, 2]], 3])
        net = TreeNetwork(tree)
        _upload_all(net, [np.arange(6) for _ in range(4)])
        assert net.total_bits > 0
        # agg-0.1 (depth 2) forwarded before agg-0 (depth 1) forwarded.
        senders = [m.sender for m in net.log.messages if m.sender.startswith("agg")]
        assert senders == ["agg-0.1", "agg-0"]
        # Two levels of merging happened.
        assert net.merges == 2

    def test_send_rejects_non_coordinator_endpoints_and_unknown_sites(self):
        net = TreeNetwork(TreeSpec.regular(_sites(4), 2))
        with pytest.raises(ValueError, match="one endpoint"):
            net.send("site-0", "site-1", b"x")
        with pytest.raises(ValueError, match="unknown site"):
            net.send("agg-0-0", "coordinator", b"x")

    def test_upstream_hop_records_one_edge_without_staging(self):
        net = TreeNetwork(TreeSpec.regular(_sites(4), 2))
        net.upstream_hop("agg-0-0", b"\x00" * 4, label="delta", bits=32)
        assert net.link_bits() == {
            "site-0": 0, "site-1": 0, "site-2": 0, "site-3": 0,
            "agg-0-0": 32, "agg-0-1": 0,
        }
        with pytest.raises(ValueError, match="unknown tree edge"):
            net.upstream_hop("nope", b"", bits=1)


class TestTreeNetworkDownstream:
    def test_downstream_send_pays_every_path_edge(self):
        tree = TreeSpec.regular(_sites(8), 2)
        net = TreeNetwork(tree)
        net.send("coordinator", "site-5", b"x" * 4, label="down", bits=32)
        bits = net.link_bits()
        for child in tree.path_edges("site-5"):  # agg-1-1, agg-0-2, site-5
            assert bits[child] == 32
        assert net.total_bits == 32 * 3

    def test_broadcast_pays_each_edge_once(self):
        tree = TreeSpec.regular(_sites(8), 2)
        net = TreeNetwork(tree)
        net.broadcast(b"x", label="bc", bits=64)
        bits = net.link_bits()
        assert all(v == 64 for v in bits.values())
        # 8 leaf edges + 6 aggregator edges, one copy each; the flat star
        # pays k copies on k links but its ROOT ingress edges number k.
        assert net.total_bits == 64 * (8 + 6)
        flat = Network(_sites(8))
        flat.broadcast(b"x", label="bc", bits=64)
        assert flat.total_bits == 64 * 8
        assert len(net.root_link_bits()) == 2 < len(flat.link_bits())

    def test_targeted_broadcast_covers_only_needed_paths(self):
        tree = TreeSpec.regular(_sites(8), 2)
        net = TreeNetwork(tree)
        net.broadcast(b"x", bits=8, sites=["site-0", "site-1"])
        bits = net.link_bits()
        touched = {edge for edge, v in bits.items() if v}
        assert touched == {"agg-1-0", "agg-0-0", "site-0", "site-1"}


class TestTreeNetworkLifecycle:
    def test_reset_clears_staged_uploads_and_meters(self):
        net = TreeNetwork(TreeSpec.regular(_sites(4), 2))
        _upload_all(net, [np.ones(4, dtype=np.int64)] * 4)
        assert net.total_bits > 0
        _upload_all(net, [np.ones(4, dtype=np.int64)] * 4)  # leave staged state
        net.reset()
        assert net.total_bits == 0
        assert net.merge_seconds == 0.0
        assert net.merges == 0
        assert all(not staged for staged in net._staged.values())

    def test_rounds_flip_on_direction_change(self):
        net = TreeNetwork(TreeSpec.regular(_sites(4), 2))
        net.broadcast(b"q", bits=8)
        _upload_all(net, [np.ones(4, dtype=np.int64)] * 4)
        net.broadcast(b"q", bits=8)
        _upload_all(net, [np.ones(4, dtype=np.int64)] * 4)
        # Same round semantics as the star: every direction flip opens a
        # new round, so down/up/down/up is four.
        assert net.rounds == 4

    def test_conditions_validate_against_tree_edges(self):
        tree = TreeSpec.regular(_sites(4), 2)
        slow = LinkModel(latency=1.0)
        # Aggregator edges are legal override targets; unknown names are not.
        TreeNetwork(tree, conditions=NetworkConditions(overrides={"agg-0-0": slow}))
        with pytest.raises(ValueError, match="match no edge"):
            TreeNetwork(tree, conditions=NetworkConditions(overrides={"nope": slow}))
        # Regions must name aggregators (a subtree), never leaves.
        TreeNetwork(tree, conditions=NetworkConditions(regions={"agg-0-1": slow}))
        with pytest.raises(ValueError, match="no aggregator"):
            TreeNetwork(tree, conditions=NetworkConditions(regions={"site-0": slow}))


class TestTreeMakespan:
    def test_ideal_conditions_price_to_zero(self):
        net = TreeNetwork(TreeSpec.regular(_sites(4), 2))
        _upload_all(net, [np.ones(4, dtype=np.int64)] * 4)
        makespan, per_round = net.simulate()
        assert makespan == 0.0
        assert per_round and all(v == 0.0 for v in per_round.values())

    def test_serialized_fan_in_beats_the_flat_star_when_transfer_dominates(self):
        """The model the bench charts: a depth-1 tree drains k bursts back to
        back into the root; a fan-out-F tree drains F per level."""
        k, bits = 16, 10_000
        conditions = NetworkConditions(LinkModel(latency=0.0, bandwidth=1000.0))
        flat = TreeNetwork(TreeSpec.flat(_sites(k)), conditions=conditions)
        tree = TreeNetwork(TreeSpec.regular(_sites(k), 4), conditions=conditions)
        for net in (flat, tree):
            for name in net.tree.site_names:
                net.send(name, "coordinator", np.ones(4, dtype=np.int64), bits=bits)
        flat_makespan = flat.makespan()
        tree_makespan = tree.makespan()
        # Flat: 16 serialized bursts.  Tree: 2 levels x fan-in 4 (and the
        # upper level moves merged summaries at max-child bits).
        assert flat_makespan == pytest.approx(k * bits / 1000.0)
        assert tree_makespan == pytest.approx(2 * 4 * bits / 1000.0)
        assert tree_makespan < flat_makespan

    def test_latency_dominated_trees_pay_per_level(self):
        """Depth costs latency: with free bandwidth the tree pays one
        latency per level while the flat star pays it once."""
        conditions = NetworkConditions(LinkModel(latency=0.5, bandwidth=math.inf))
        flat = TreeNetwork(TreeSpec.flat(_sites(8)), conditions=conditions)
        tree = TreeNetwork(TreeSpec.regular(_sites(8), 2), conditions=conditions)
        for net in (flat, tree):
            for name in net.tree.site_names:
                net.send(name, "coordinator", np.ones(2, dtype=np.int64), bits=64)
        assert flat.makespan() == pytest.approx(0.5)
        assert tree.makespan() == pytest.approx(0.5 * tree.tree.depth)
