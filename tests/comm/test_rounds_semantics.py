"""Round-counting semantics across the actual protocols.

The paper's round bounds are central claims (2 rounds for Theorem 3.1,
1 round for Remarks 2/3 and Theorems 3.2/4.8, 3 rounds for Theorem 4.1,
O(1) elsewhere).  These tests pin the measured round counts of every
protocol on a common workload so regressions in message scheduling are
caught immediately.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive import NaiveLinfProtocol
from repro.baselines.one_round import OneRoundLpNormProtocol
from repro.core.heavy_hitters_binary import BinaryHeavyHittersProtocol
from repro.core.heavy_hitters_general import GeneralHeavyHittersProtocol
from repro.core.l0_sampling import L0SamplingProtocol
from repro.core.l1_exact import ExactL1Protocol, L1SamplingProtocol
from repro.core.linf_binary import KappaApproxLinfProtocol, TwoPlusEpsilonLinfProtocol
from repro.core.linf_general import GeneralMatrixLinfProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.matrices import random_binary_pair


@pytest.fixture(scope="module")
def workload():
    return random_binary_pair(56, density=0.12, seed=99)


@pytest.mark.parametrize(
    "protocol_factory, max_rounds, paper_rounds",
    [
        (lambda: LpNormProtocol(0.0, 0.4, seed=1), 2, "2 (Thm 3.1)"),
        (lambda: LpNormProtocol(2.0, 0.4, seed=1), 2, "2 (Thm 3.1)"),
        (lambda: OneRoundLpNormProtocol(0.0, 0.4, seed=1), 1, "1 ([16] baseline)"),
        (lambda: ExactL1Protocol(seed=1), 1, "1 (Remark 2)"),
        (lambda: L1SamplingProtocol(seed=1), 1, "1 (Remark 3)"),
        (lambda: L0SamplingProtocol(0.4, seed=1), 1, "1 (Thm 3.2)"),
        (lambda: TwoPlusEpsilonLinfProtocol(0.3, seed=1), 4, "3 (Thm 4.1)"),
        (lambda: KappaApproxLinfProtocol(8, seed=1), 5, "O(1) (Thm 4.3)"),
        (lambda: GeneralMatrixLinfProtocol(4, seed=1), 1, "1 (Thm 4.8)"),
        (lambda: GeneralHeavyHittersProtocol(0.1, 0.05, seed=1), 6, "O(1) (Thm 5.1)"),
        (lambda: BinaryHeavyHittersProtocol(0.1, 0.05, seed=1), 8, "O(1) (Thm 5.3)"),
    ],
)
def test_round_budgets(workload, protocol_factory, max_rounds, paper_rounds):
    a, b = workload
    result = protocol_factory().run(a, b)
    assert result.cost.rounds <= max_rounds, (
        f"protocol exceeded its round budget ({paper_rounds}): "
        f"{result.cost.rounds} > {max_rounds}"
    )


def test_exact_round_counts_for_fixed_round_protocols(workload):
    a, b = workload
    assert LpNormProtocol(0.0, 0.4, seed=2).run(a, b).cost.rounds == 2
    assert ExactL1Protocol(seed=2).run(a, b).cost.rounds == 1
    assert L0SamplingProtocol(0.4, seed=2).run(a, b).cost.rounds == 1
    assert GeneralMatrixLinfProtocol(4, seed=2).run(a, b).cost.rounds == 1
    assert NaiveLinfProtocol(seed=2).run(a, b).cost.rounds == 1
