"""Unit tests for the Protocol driver, Party, and cost reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.party import Party
from repro.comm.channel import Channel
from repro.comm.protocol import CostReport, Protocol


class EchoProtocol(Protocol):
    """Toy protocol: Alice sends her number, Bob replies with the sum."""

    name = "echo"

    def _execute(self, alice: Party, bob: Party):
        alice.send(bob, alice.data, label="forward", bits=8)
        total = alice.data + bob.data
        bob.send(alice, total, label="reply", bits=8)
        return total, {"note": "done"}


class PlainReturnProtocol(Protocol):
    """Protocol returning a bare value (no details dict)."""

    def _execute(self, alice: Party, bob: Party):
        alice.send(bob, alice.data, bits=4)
        return alice.data * 2


class TestProtocolRun:
    def test_value_and_details(self):
        result = EchoProtocol(seed=0).run(3, 4)
        assert result.value == 7
        assert result.details == {"note": "done"}

    def test_cost_report(self):
        result = EchoProtocol(seed=0).run(3, 4)
        assert result.cost.total_bits == 16
        assert result.cost.rounds == 2
        assert result.cost.alice_bits == 8
        assert result.cost.bob_bits == 8
        assert result.cost.breakdown == {"forward": 8, "reply": 8}

    def test_bare_return_value(self):
        result = PlainReturnProtocol(seed=1).run(5, 0)
        assert result.value == 10
        assert result.details == {}

    def test_seed_reproducibility(self):
        class RandomProtocol(Protocol):
            def _execute(self, alice, bob):
                alice.send(bob, 0, bits=1)
                return float(self.shared_rng.uniform()) + float(alice.rng.uniform())

        first = RandomProtocol(seed=7).run(None, None).value
        second = RandomProtocol(seed=7).run(None, None).value
        third = RandomProtocol(seed=8).run(None, None).value
        assert first == second
        assert first != third

    def test_base_class_requires_execute(self):
        with pytest.raises(NotImplementedError):
            Protocol(seed=0).run(1, 2)


class TestParty:
    def test_party_tracks_bits_sent(self):
        channel = Channel()
        alice = Party("alice", None, channel)
        bob = Party("bob", None, channel)
        alice.send(bob, 1, bits=12)
        assert alice.bits_sent == 12
        assert bob.bits_sent == 0

    def test_party_has_private_rng(self):
        channel = Channel()
        alice = Party("alice", None, channel, rng=np.random.default_rng(0))
        value = alice.rng.uniform()
        assert 0.0 <= value <= 1.0


class TestCostReport:
    def test_from_channel(self):
        channel = Channel()
        channel.send("alice", "bob", 1, bits=3, label="a")
        channel.send("bob", "alice", 1, bits=5, label="b")
        report = CostReport.from_channel(channel)
        assert report.total_bits == 8
        assert report.rounds == 2
        assert report.breakdown == {"a": 3, "b": 5}
