"""Unit tests for the metered channel and round counting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.channel import Channel


@pytest.fixture
def channel() -> Channel:
    return Channel()


class TestRoundCounting:
    def test_no_messages_means_zero_rounds(self, channel):
        assert channel.rounds == 0
        assert channel.total_bits == 0

    def test_single_message_is_one_round(self, channel):
        channel.send("alice", "bob", 1, bits=10)
        assert channel.rounds == 1

    def test_consecutive_same_direction_messages_share_a_round(self, channel):
        channel.send("alice", "bob", 1, bits=10)
        channel.send("alice", "bob", 2, bits=10)
        assert channel.rounds == 1

    def test_direction_flip_increments_round(self, channel):
        channel.send("alice", "bob", 1, bits=10)
        channel.send("bob", "alice", 2, bits=10)
        channel.send("alice", "bob", 3, bits=10)
        assert channel.rounds == 3

    def test_round_index_recorded_on_messages(self, channel):
        channel.send("alice", "bob", 1, bits=1)
        channel.send("bob", "alice", 2, bits=1)
        assert [m.round_index for m in channel.messages] == [1, 2]


class TestBitAccounting:
    def test_total_bits_sums_messages(self, channel):
        channel.send("alice", "bob", 1, bits=10)
        channel.send("bob", "alice", 1, bits=32)
        assert channel.total_bits == 42

    def test_per_party_accounting(self, channel):
        channel.send("alice", "bob", 1, bits=10)
        channel.send("bob", "alice", 1, bits=32)
        assert channel.bits_sent_by("alice") == 10
        assert channel.bits_sent_by("bob") == 32

    def test_auto_cost_from_payload(self, channel):
        payload = np.zeros(4, dtype=float)
        channel.send("alice", "bob", payload)
        assert channel.total_bits == 4 * 64

    def test_breakdown_by_label(self, channel):
        channel.send("alice", "bob", 1, bits=10, label="sketch")
        channel.send("alice", "bob", 1, bits=5, label="sketch")
        channel.send("bob", "alice", 1, bits=7, label="rows")
        assert channel.bits_by_label() == {"sketch": 15, "rows": 7}

    def test_negative_bits_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.send("alice", "bob", 1, bits=-1)


class TestValidation:
    def test_self_send_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.send("alice", "alice", 1, bits=1)

    def test_unknown_party_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.send("alice", "carol", 1, bits=1)

    def test_payload_returned_unchanged(self, channel):
        payload = {"x": 1}
        assert channel.send("alice", "bob", payload, bits=1) is payload

    def test_reset_clears_state(self, channel):
        channel.send("alice", "bob", 1, bits=10)
        channel.reset()
        assert channel.total_bits == 0
        assert channel.rounds == 0
        assert channel.messages == []
