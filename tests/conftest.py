"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_binary_pair(rng) -> tuple[np.ndarray, np.ndarray]:
    """A small sparse binary matrix pair with a non-trivial product."""
    n = 48
    a = (rng.uniform(size=(n, n)) < 0.12).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < 0.12).astype(np.int64)
    return a, b


@pytest.fixture
def small_integer_pair(rng) -> tuple[np.ndarray, np.ndarray]:
    """A small non-negative integer matrix pair."""
    n = 32
    a = rng.integers(0, 4, size=(n, n)).astype(np.int64)
    b = rng.integers(0, 4, size=(n, n)).astype(np.int64)
    return a, b
