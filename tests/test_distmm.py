"""Tests for the distributed sparse matrix product (Lemma 2.5 substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distmm.sparse_product import SparseProductProtocol, sparse_product_shares
from repro.matrices import random_binary_pair


class TestSparseProductShares:
    def test_shares_sum_to_product(self, rng):
        a = rng.integers(0, 3, size=(12, 20))
        b = rng.integers(0, 3, size=(20, 15))
        owner = rng.uniform(size=20) < 0.5
        c_alice, c_bob = sparse_product_shares(a, b, owner_is_bob=owner)
        assert np.array_equal(c_alice + c_bob, a @ b)

    def test_all_items_to_one_party(self, rng):
        a = rng.integers(0, 2, size=(8, 10))
        b = rng.integers(0, 2, size=(10, 8))
        c_alice, c_bob = sparse_product_shares(a, b, owner_is_bob=np.ones(10, dtype=bool))
        assert c_alice.sum() == 0
        assert np.array_equal(c_bob, a @ b)

    def test_wrong_mask_length_rejected(self, rng):
        with pytest.raises(ValueError):
            sparse_product_shares(np.ones((3, 4)), np.ones((4, 3)), owner_is_bob=np.ones(3, dtype=bool))


class TestSparseProductProtocol:
    def test_exact_recovery_binary(self):
        a, b = random_binary_pair(48, density=0.1, seed=90)
        result = SparseProductProtocol(seed=0).run(a, b)
        c_alice, c_bob = result.value
        assert np.array_equal(c_alice + c_bob, a @ b)

    def test_exact_recovery_integer(self, rng):
        a = rng.integers(0, 4, size=(24, 24))
        b = rng.integers(0, 4, size=(24, 24))
        result = SparseProductProtocol(seed=0).run(a, b)
        c_alice, c_bob = result.value
        assert np.array_equal(c_alice + c_bob, a @ b)

    def test_empty_product(self):
        a = np.zeros((8, 8), dtype=np.int64)
        b = np.zeros((8, 8), dtype=np.int64)
        result = SparseProductProtocol(seed=0).run(a, b)
        c_alice, c_bob = result.value
        assert c_alice.sum() == 0 and c_bob.sum() == 0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SparseProductProtocol(seed=0).run(np.ones((2, 3)), np.ones((2, 2)))

    def test_three_rounds(self):
        a, b = random_binary_pair(32, density=0.1, seed=91)
        result = SparseProductProtocol(seed=0).run(a, b)
        assert result.cost.rounds == 3

    def test_cost_scales_with_sparsity_not_n_squared(self):
        sparse_a, sparse_b = random_binary_pair(96, density=0.02, seed=92)
        dense_a, dense_b = random_binary_pair(96, density=0.4, seed=92)
        sparse_cost = SparseProductProtocol(seed=0).run(sparse_a, sparse_b).cost.total_bits
        dense_cost = SparseProductProtocol(seed=0).run(dense_a, dense_b).cost.total_bits
        assert sparse_cost < dense_cost / 3

    def test_exchanged_pairs_matches_min_side(self):
        a, b = random_binary_pair(40, density=0.15, seed=93)
        result = SparseProductProtocol(seed=0).run(a, b)
        u = np.count_nonzero(a, axis=0)
        v = np.count_nonzero(b, axis=1)
        active = (u > 0) & (v > 0)
        assert result.details["exchanged_pairs"] == int(np.minimum(u, v)[active].sum())

    def test_rectangular_inputs(self, rng):
        a = (rng.uniform(size=(20, 30)) < 0.15).astype(np.int64)
        b = (rng.uniform(size=(30, 12)) < 0.15).astype(np.int64)
        result = SparseProductProtocol(seed=0).run(a, b)
        c_alice, c_bob = result.value
        assert np.array_equal(c_alice + c_bob, a @ b)
