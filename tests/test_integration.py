"""Integration tests: full pipelines across modules, mirroring the examples."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MatrixProductEstimator
from repro.baselines.naive import NaiveExactProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.joins import DistributedJoinEstimator, Relation, composition_size
from repro.matrices import (
    exact_heavy_hitters,
    exact_linf,
    exact_lp_pp,
    planted_heavy_hitters_pair,
    product,
    stats,
    zipfian_sets_pair,
)


class TestQueryOptimizerScenario:
    """Join-size estimation for query planning: estimate, then compare plans."""

    def test_estimates_rank_join_orders_correctly(self):
        # Two candidate join plans; the optimiser should pick the smaller one.
        small_left = Relation.random(64, 64, density=0.03, seed=1)
        small_right = Relation.random(64, 64, density=0.03, seed=2)
        big_left = Relation.random(64, 64, density=0.25, seed=3)
        big_right = Relation.random(64, 64, density=0.25, seed=4)

        small_est = DistributedJoinEstimator(small_left, small_right, seed=5)
        big_est = DistributedJoinEstimator(big_left, big_right, seed=6)
        small_size = small_est.composition_size(epsilon=0.3).value
        big_size = big_est.composition_size(epsilon=0.3).value

        assert small_size < big_size
        assert composition_size(small_left, small_right) < composition_size(
            big_left, big_right
        )

    def test_communication_budget_far_below_shipping_the_relation(self):
        left = Relation.random(128, 128, density=0.05, seed=7)
        right = Relation.random(128, 128, density=0.05, seed=8)
        estimator = DistributedJoinEstimator(left, right, seed=9)
        result = estimator.natural_join_size()
        assert result.value == estimator.exact_sizes()["natural_join"]
        assert result.cost.total_bits < 128 * 128 / 4


class TestSimilaritySearchScenario:
    """Heavy hitters = pairs of sets with large overlap (inner-product join)."""

    def test_planted_similar_pairs_found_end_to_end(self):
        a, b, planted = planted_heavy_hitters_pair(
            96, num_heavy=2, heavy_overlap=48, background_density=0.02, seed=10
        )
        c = product(a, b)
        estimator = MatrixProductEstimator(a, b, seed=11)
        phi = 0.05
        result = estimator.heavy_hitters(phi=phi, epsilon=0.02)
        truly_heavy = exact_heavy_hitters(c, phi, p=1)
        assert truly_heavy, "workload should contain true heavy hitters"
        assert truly_heavy.issubset(result.value.pairs)
        # The planted pairs are the heavy ones.
        for pair in planted:
            if pair in truly_heavy:
                assert pair in result.value.pairs

    def test_linf_agrees_with_heavy_hitters(self):
        a, b, _ = planted_heavy_hitters_pair(
            96, num_heavy=1, heavy_overlap=40, background_density=0.02, seed=12
        )
        c = product(a, b)
        estimator = MatrixProductEstimator(a, b, seed=13)
        linf = estimator.linf(epsilon=0.25).value
        assert linf >= exact_linf(c) / 2.5


class TestSkewedWorkloads:
    def test_all_statistics_on_zipfian_sets(self):
        a, b = zipfian_sets_pair(80, seed=14)
        c = product(a, b)
        estimator = MatrixProductEstimator(a, b, seed=15)

        l0 = estimator.join_size(epsilon=0.3)
        assert l0.value == pytest.approx(exact_lp_pp(c, 0), rel=0.4)

        l1 = estimator.natural_join_size()
        assert l1.value == exact_lp_pp(c, 1)

        sample = estimator.l0_sample(epsilon=0.3).value
        if sample.success:
            assert c[sample.row, sample.col] != 0


class TestProtocolVsOracleAgreement:
    """The metered protocols agree with the naive ship-everything oracle."""

    @pytest.mark.parametrize("p", [0.0, 2.0])
    def test_lp_protocol_vs_oracle(self, p, small_binary_pair):
        a, b = small_binary_pair
        oracle = NaiveExactProtocol(lambda c: stats.exact_lp_pp(c, p), seed=0).run(a, b)
        ours = LpNormProtocol(p, 0.3, seed=1).run(a, b)
        assert ours.value == pytest.approx(oracle.value, rel=0.4)

    def test_cost_reports_are_complete(self, small_binary_pair):
        a, b = small_binary_pair
        result = LpNormProtocol(0.0, 0.3, seed=2).run(a, b)
        assert result.cost.total_bits == result.cost.alice_bits + result.cost.bob_bits
        assert sum(result.cost.breakdown.values()) == result.cost.total_bits


class TestRectangularEndToEnd:
    def test_rectangular_pipeline(self):
        rng = np.random.default_rng(16)
        a = (rng.uniform(size=(120, 60)) < 0.08).astype(np.int64)
        b = (rng.uniform(size=(60, 120)) < 0.08).astype(np.int64)
        c = product(a, b)
        estimator = MatrixProductEstimator(a, b, seed=17)
        assert estimator.natural_join_size().value == exact_lp_pp(c, 1)
        assert estimator.join_size(epsilon=0.35).value == pytest.approx(
            exact_lp_pp(c, 0), rel=0.4
        )
        linf = estimator.linf(epsilon=0.5).value
        assert linf >= exact_linf(c) / 3
