"""Unit tests for p-stable sampling and the median scale factor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.stable import sample_standard_stable, stable_scale_factor


class TestSampling:
    def test_invalid_p_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_standard_stable(0.0, 10, rng)
        with pytest.raises(ValueError):
            sample_standard_stable(2.5, 10, rng)

    def test_shapes(self, rng):
        assert sample_standard_stable(1.0, 7, rng).shape == (7,)
        assert sample_standard_stable(1.5, (3, 4), rng).shape == (3, 4)

    def test_gaussian_case_matches_normal_moments(self, rng):
        samples = sample_standard_stable(2.0, 20000, rng)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)
        assert np.std(samples) == pytest.approx(1.0, rel=0.05)

    def test_cauchy_case_has_heavy_tails(self, rng):
        samples = sample_standard_stable(1.0, 20000, rng)
        # Cauchy has no finite variance; the sample max should dwarf the IQR.
        assert np.max(np.abs(samples)) > 50 * np.subtract(*np.percentile(samples, [75, 25]))

    def test_general_p_median_close_to_scale_factor(self, rng):
        p = 0.7
        samples = np.abs(sample_standard_stable(p, 60000, rng))
        assert np.median(samples) == pytest.approx(stable_scale_factor(p), rel=0.1)


class TestScaleFactor:
    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            stable_scale_factor(0.0)

    def test_gaussian_value(self):
        # Median of |N(0,1)| is the 0.75 normal quantile ~ 0.6745.
        assert stable_scale_factor(2.0) == pytest.approx(0.6745, abs=0.001)

    def test_cauchy_value(self):
        # Median of |Cauchy| = tan(pi/4) = 1.
        assert stable_scale_factor(1.0) == pytest.approx(1.0, abs=1e-6)

    def test_cached(self):
        assert stable_scale_factor(1.3) == stable_scale_factor(1.3)
