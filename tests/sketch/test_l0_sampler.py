"""Unit tests for the l_0-sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.l0_sampler import L0Sampler


class TestConstruction:
    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            L0Sampler(0, rng)
        with pytest.raises(ValueError):
            L0Sampler(10, rng, repetitions=0)

    def test_matrix_shape(self, rng):
        sampler = L0Sampler(50, rng, repetitions=4)
        assert sampler.matrix.shape == (sampler.num_rows, 50)
        assert sampler.num_rows == 4 * sampler.levels * 3


class TestSampling:
    def test_zero_vector_fails_gracefully(self, rng):
        sampler = L0Sampler(32, rng)
        outcome = sampler.sample(sampler.apply(np.zeros(32, dtype=np.int64)))
        assert not outcome.success
        assert outcome.index is None

    def test_singleton_recovered_exactly(self, rng):
        sampler = L0Sampler(64, rng)
        x = np.zeros(64, dtype=np.int64)
        x[42] = 7
        outcome = sampler.sample(sampler.apply(x))
        assert outcome.success
        assert outcome.index == 42
        assert outcome.value == 7

    def test_singleton_at_position_zero(self, rng):
        sampler = L0Sampler(16, rng)
        x = np.zeros(16, dtype=np.int64)
        x[0] = 3
        outcome = sampler.sample(sampler.apply(x))
        assert outcome.success
        assert outcome.index == 0

    def test_sample_lands_in_support(self, rng):
        n = 128
        sampler = L0Sampler(n, rng, repetitions=8)
        x = np.zeros(n, dtype=np.int64)
        support = rng.choice(n, size=25, replace=False)
        x[support] = rng.integers(1, 5, size=25)
        outcome = sampler.sample(sampler.apply(x))
        assert outcome.success
        assert x[outcome.index] != 0
        assert outcome.value == x[outcome.index]

    def test_wrong_sketch_length_rejected(self, rng):
        sampler = L0Sampler(32, rng)
        with pytest.raises(ValueError):
            sampler.sample(np.zeros(5))

    def test_roughly_uniform_over_small_support(self, rng):
        n = 64
        x = np.zeros(n, dtype=np.int64)
        support = [3, 17, 40, 55]
        x[support] = 1
        counts = {index: 0 for index in support}
        trials = 200
        failures = 0
        for seed in range(trials):
            sampler = L0Sampler(n, np.random.default_rng(seed), repetitions=6)
            outcome = sampler.sample(sampler.apply(x))
            if outcome.success:
                counts[outcome.index] += 1
            else:
                failures += 1
        assert failures < trials * 0.2
        successes = trials - failures
        for index in support:
            assert counts[index] > successes / len(support) * 0.4
