"""Mergeable-sketch contract: batched updates, entrywise merge, algebra.

The issue's satellite property: ``merge()`` must be associative and
commutative for every sketch family, and merging per-shard summaries must
equal sketching the union — the linearity that powers the k-party runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch import (
    AmsSketch,
    CountSketch,
    L0Sampler,
    L0Sketch,
    MergeableSketch,
)


def make_sketch(family: str, n: int, rng: np.random.Generator):
    if family == "countsketch":
        return CountSketch(n, 32, 5, rng)
    if family == "ams":
        return AmsSketch(n, 24, rng)
    if family == "l0":
        return L0Sketch(n, 16, rng)
    if family == "sampler":
        return L0Sampler(n, rng, repetitions=4)
    raise ValueError(family)


def state_of(sketch):
    return sketch.table if isinstance(sketch, CountSketch) else sketch.state


FAMILIES = ["countsketch", "ams", "l0", "sampler"]


@pytest.mark.parametrize("family", FAMILIES)
class TestMergeableContract:
    def test_satisfies_protocol(self, family, rng):
        assert isinstance(make_sketch(family, 50, rng), MergeableSketch)

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_of_shards_equals_sketch_of_union(self, family, seed, rng):
        data_rng = np.random.default_rng(seed)
        n = 60
        template = make_sketch(family, n, rng)
        x = data_rng.integers(-3, 4, size=n)
        if family == "countsketch":
            x = x.astype(float)

        whole = template.empty_copy()
        whole.update_many(np.arange(n), x)

        cut = int(data_rng.integers(1, n - 1))
        left, right = template.empty_copy(), template.empty_copy()
        left.update_many(np.arange(cut), x[:cut])
        right.update_many(np.arange(cut, n), x[cut:])
        merged = template.empty_copy().merge(left).merge(right)
        np.testing.assert_allclose(state_of(merged), state_of(whole))

    def test_merge_commutative(self, family, rng):
        data_rng = np.random.default_rng(7)
        n = 40
        template = make_sketch(family, n, rng)
        parts = []
        for lo, hi in [(0, 15), (15, 30), (30, 40)]:
            part = template.empty_copy()
            part.update_many(
                np.arange(lo, hi), data_rng.integers(1, 5, size=hi - lo).astype(float)
            )
            parts.append(part)

        forward = template.empty_copy()
        for part in parts:
            forward.merge(part)
        backward = template.empty_copy()
        for part in reversed(parts):
            backward.merge(part)
        np.testing.assert_allclose(state_of(forward), state_of(backward))

    def test_merge_associative(self, family, rng):
        n = 40
        template = make_sketch(family, n, rng)

        def fresh_parts():
            parts = []
            part_rng = np.random.default_rng(11)
            for lo, hi in [(0, 15), (15, 30), (30, 40)]:
                part = template.empty_copy()
                part.update_many(
                    np.arange(lo, hi), part_rng.integers(1, 5, size=hi - lo).astype(float)
                )
                parts.append(part)
            return parts

        a, b, c = fresh_parts()
        left_grouped = a.merge(b).merge(c)  # (a + b) + c
        a2, b2, c2 = fresh_parts()
        right_grouped = a2.merge(b2.merge(c2))  # a + (b + c)
        np.testing.assert_allclose(state_of(left_grouped), state_of(right_grouped))

    def test_merge_rejects_other_family(self, family, rng):
        sketch = make_sketch(family, 30, rng)
        other_family = FAMILIES[(FAMILIES.index(family) + 1) % len(FAMILIES)]
        other = make_sketch(other_family, 30, rng)
        with pytest.raises(TypeError, match="cannot merge"):
            sketch.merge(other)

    def test_merge_rejects_other_universe(self, family, rng):
        sketch = make_sketch(family, 30, rng)
        other = make_sketch(family, 31, rng)
        with pytest.raises(ValueError, match="universe"):
            sketch.merge(other)

    def test_update_many_checks_lengths(self, family, rng):
        sketch = make_sketch(family, 30, rng).empty_copy()
        with pytest.raises(ValueError):
            sketch.update_many(np.arange(5), np.ones(4))

    def test_merge_rejects_different_randomness(self, family):
        mine = make_sketch(family, 30, np.random.default_rng(1))
        theirs = make_sketch(family, 30, np.random.default_rng(2))
        with pytest.raises(ValueError, match="randomness"):
            mine.merge(theirs)

    def test_merge_accepts_equal_valued_randomness(self, family):
        """Endpoints constructing the sketch from the same broadcast seed."""
        mine = make_sketch(family, 30, np.random.default_rng(5))
        theirs = make_sketch(family, 30, np.random.default_rng(5))
        theirs_part = theirs.empty_copy()
        theirs_part.update_many(np.arange(30), np.ones(30))
        merged = mine.empty_copy().merge(theirs_part)
        np.testing.assert_allclose(state_of(merged), state_of(theirs_part))


class TestFamilySpecifics:
    def test_countsketch_update_many_matches_sequential_updates(self, rng):
        cs = CountSketch(80, 16, 3, rng)
        indices = np.array([3, 9, 9, 40, 77])
        deltas = np.array([1.0, -2.0, 4.0, 0.5, 3.0])
        for i, d in zip(indices, deltas):
            cs.update(int(i), float(d))
        batched = cs.empty_copy()
        batched.update_many(indices, deltas)
        np.testing.assert_allclose(batched.table, cs.table)

    def test_countsketch_update_many_defaults_to_increments(self, rng):
        cs = CountSketch(20, 8, 3, rng)
        cs.update_many(np.array([4, 4, 7]))
        reference = cs.empty_copy()
        reference.update_many(np.array([4, 4, 7]), np.ones(3))
        np.testing.assert_allclose(cs.table, reference.table)

    def test_linear_sketch_state_matches_apply(self, rng):
        for family, dtype in [("ams", float), ("l0", np.int64), ("sampler", np.int64)]:
            sketch = make_sketch(family, 50, rng)
            x = np.random.default_rng(3).integers(0, 4, size=50).astype(dtype)
            accumulated = sketch.empty_copy()
            accumulated.update_many(np.arange(50), x)
            np.testing.assert_allclose(accumulated.state, sketch.apply(x))

    def test_matrix_shaped_updates(self, rng):
        """A site sketching a whole shard in one call (used by l0-sampling)."""
        sketch = L0Sketch(40, 8, rng)
        shard = np.random.default_rng(4).integers(0, 3, size=(40, 12))
        accumulated = sketch.empty_copy()
        accumulated.update_many(np.arange(40), shard)
        np.testing.assert_array_equal(accumulated.state, sketch.apply(shard))
        mismatched = sketch.empty_copy()
        mismatched.update_many(np.arange(40), shard)
        bad = sketch.empty_copy()
        bad.update_many(np.arange(40), shard[:, :5])
        with pytest.raises(ValueError, match="shape"):
            mismatched.merge(bad)

    def test_estimate_state_helpers(self, rng):
        ams = AmsSketch(50, 64, rng)
        assert ams.empty_copy().estimate_state_f2() == 0.0
        l0 = L0Sketch(50, 32, rng)
        assert l0.empty_copy().estimate_state_l0() == 0.0
        x = np.zeros(50)
        x[:20] = np.arange(1, 21)
        filled = l0.empty_copy()
        filled.update_many(np.arange(50), x.astype(np.int64))
        assert filled.estimate_state_l0() == pytest.approx(20, rel=0.5)
        filled_ams = ams.empty_copy()
        filled_ams.update_many(np.arange(50), x)
        assert filled_ams.estimate_state_f2() == pytest.approx(float(x @ x), rel=0.5)

    def test_estimate_state_helpers_reject_matrix_state(self, rng):
        """Matrix-shaped states need the per-column estimators instead."""
        shard = np.ones((50, 4))
        ams = AmsSketch(50, 16, rng).empty_copy()
        ams.update_many(np.arange(50), shard)
        with pytest.raises(ValueError, match="estimate_f2_columns"):
            ams.estimate_state_f2()
        l0 = L0Sketch(50, 8, rng).empty_copy()
        l0.update_many(np.arange(50), shard.astype(np.int64))
        with pytest.raises(ValueError, match="estimate_rows_pp"):
            l0.estimate_state_l0()

    def test_merge_into_empty_copies_state(self, rng):
        sketch = AmsSketch(30, 16, rng)
        part = sketch.empty_copy()
        part.update_many(np.arange(30), np.ones(30))
        merged = sketch.empty_copy().merge(part)
        assert merged.state is not part.state
        np.testing.assert_allclose(merged.state, part.state)
        # Merging an empty sketch is a no-op.
        np.testing.assert_allclose(
            state_of(merged.merge(sketch.empty_copy())), part.state
        )
