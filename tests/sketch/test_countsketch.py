"""Unit tests for CountSketch and Count-Min."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch


class TestCountSketch:
    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            CountSketch(0, 8, 3, rng)
        with pytest.raises(ValueError):
            CountSketch(8, 0, 3, rng)

    def test_point_query_on_sparse_vector(self, rng):
        n = 256
        x = np.zeros(n)
        x[7] = 100.0
        x[80] = 60.0
        sketch = CountSketch(n, width=64, depth=5, rng=rng)
        sketch.build_from_vector(x)
        assert sketch.query(7) == pytest.approx(100.0, abs=15.0)
        assert sketch.query(80) == pytest.approx(60.0, abs=15.0)
        assert abs(sketch.query(5)) < 15.0

    def test_update_matches_build(self, rng):
        n = 64
        first = CountSketch(n, 32, 3, np.random.default_rng(0))
        second = CountSketch(n, 32, 3, np.random.default_rng(0))
        x = np.zeros(n)
        x[3] = 2.0
        x[9] = -1.0
        first.build_from_vector(x)
        second.update(3, 2.0)
        second.update(9, -1.0)
        assert np.allclose(first.table, second.table)

    def test_build_rejects_wrong_length(self, rng):
        sketch = CountSketch(16, 8, 2, rng)
        with pytest.raises(ValueError):
            sketch.build_from_vector(np.zeros(10))

    def test_query_all_matches_pointwise(self, rng):
        n = 50
        x = rng.normal(size=n) * 10
        sketch = CountSketch(n, 32, 3, rng)
        sketch.build_from_vector(x)
        all_estimates = sketch.query_all()
        for index in (0, 10, 49):
            assert all_estimates[index] == pytest.approx(sketch.query(index))

    def test_heavy_hitters_found(self, rng):
        n = 200
        x = np.ones(n)
        x[17] = 500.0
        sketch = CountSketch(n, 64, 5, rng)
        sketch.build_from_vector(x)
        hits = dict(sketch.heavy_hitters(threshold=250.0))
        assert 17 in hits


class TestVectorCountSketch:
    """Vector-valued counters: CountSketch over the rows of a matrix."""

    def test_query_rows_recovers_heavy_rows(self, rng):
        n, m = 80, 12
        a = np.zeros((n, m), dtype=np.int64)
        a[7] = 300
        a[41, 3] = -200
        sketch = CountSketch(n, 32, 5, rng)
        sketch.update_many(np.arange(n), a)
        estimates = sketch.query_rows()
        assert estimates.shape == (n, m)
        assert np.allclose(estimates[7], a[7], atol=40)
        assert estimates[41, 3] == pytest.approx(-200, abs=40)

    def test_vector_updates_are_linear_in_chunks(self, rng):
        n, m = 40, 6
        a = np.random.default_rng(3).integers(-4, 5, size=(n, m))
        whole = CountSketch(n, 16, 3, rng)
        whole.update_many(np.arange(n), a)
        chunked = whole.empty_copy()
        chunked.update_many(np.arange(25), a[:25])
        chunked.update_many(np.arange(25, n), a[25:])
        np.testing.assert_array_equal(whole.table, chunked.table)

    def test_merge_adopts_vector_table_from_empty(self, rng):
        sketch = CountSketch(30, 8, 3, rng)
        part = sketch.empty_copy()
        part.update_many(np.arange(10), np.ones((10, 4), dtype=np.int64))
        merged = sketch.empty_copy().merge(part)
        np.testing.assert_array_equal(merged.table, part.table)
        # The mirror case: merging an untouched scalar clone is a no-op.
        np.testing.assert_array_equal(
            merged.merge(sketch.empty_copy()).table, part.table
        )

    def test_scalar_and_vector_updates_cannot_mix(self, rng):
        sketch = CountSketch(20, 8, 2, rng).empty_copy()
        sketch.update_many(np.array([3]), np.array([2.0]))
        with pytest.raises(ValueError, match="scalar"):
            sketch.update_many(np.array([3]), np.ones((1, 4)))
        widened = CountSketch(20, 8, 2, rng).empty_copy()
        widened.update_many(np.array([3]), np.ones((1, 4), dtype=np.int64))
        with pytest.raises(ValueError, match="vector-valued"):
            widened.update_many(np.array([3]), np.array([2.0]))
        with pytest.raises(ValueError, match="dimension"):
            widened.update_many(np.array([3]), np.ones((1, 5), dtype=np.int64))

    def test_scalar_delta_pairs_with_single_index(self, rng):
        sketch = CountSketch(20, 8, 2, rng).empty_copy()
        sketch.update_many(np.array([3]), 2.0)  # 0-d delta, historical form
        assert sketch.query(3) == pytest.approx(2.0)

    def test_empty_batch_does_not_switch_counter_shape(self, rng):
        sketch = CountSketch(20, 8, 2, rng).empty_copy()
        sketch.update_many(np.empty(0, dtype=np.int64), np.empty((0, 4)))
        assert sketch.table.ndim == 2  # still scalar counters
        sketch.update(3, 2.0)  # scalar use keeps working
        assert sketch.query(3) == pytest.approx(2.0)

    def test_scalar_queries_reject_vector_tables(self, rng):
        sketch = CountSketch(20, 8, 2, rng).empty_copy()
        sketch.update_many(np.array([3]), np.ones((1, 4), dtype=np.int64))
        with pytest.raises(ValueError, match="query_rows"):
            sketch.query(3)
        with pytest.raises(ValueError, match="query_rows"):
            sketch.query_all()
        scalar = CountSketch(20, 8, 2, rng)
        with pytest.raises(ValueError, match="query_all"):
            scalar.query_rows()


class TestCountMin:
    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            CountMinSketch(0, 8, 3, rng)
        with pytest.raises(ValueError):
            CountMinSketch(8, 8, 0, rng)

    def test_rejects_negative_frequencies(self, rng):
        sketch = CountMinSketch(16, 8, 2, rng)
        with pytest.raises(ValueError):
            sketch.build_from_vector(np.array([-1.0] + [0.0] * 15))

    def test_query_never_underestimates(self, rng):
        n = 128
        x = np.abs(rng.normal(size=n)) * 5
        sketch = CountMinSketch(n, 32, 4, rng)
        sketch.build_from_vector(x)
        estimates = sketch.query_all()
        assert np.all(estimates >= x - 1e-9)

    def test_point_query_close_for_heavy_item(self, rng):
        n = 256
        x = np.zeros(n)
        x[100] = 1000.0
        sketch = CountMinSketch(n, 64, 4, rng)
        sketch.build_from_vector(x)
        assert sketch.query(100) == pytest.approx(1000.0, rel=0.05)

    def test_update_accumulates(self, rng):
        sketch = CountMinSketch(16, 16, 3, rng)
        sketch.update(4, 2.0)
        sketch.update(4, 3.0)
        assert sketch.query(4) >= 5.0
