"""Unit tests for CountSketch and Count-Min."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch


class TestCountSketch:
    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            CountSketch(0, 8, 3, rng)
        with pytest.raises(ValueError):
            CountSketch(8, 0, 3, rng)

    def test_point_query_on_sparse_vector(self, rng):
        n = 256
        x = np.zeros(n)
        x[7] = 100.0
        x[80] = 60.0
        sketch = CountSketch(n, width=64, depth=5, rng=rng)
        sketch.build_from_vector(x)
        assert sketch.query(7) == pytest.approx(100.0, abs=15.0)
        assert sketch.query(80) == pytest.approx(60.0, abs=15.0)
        assert abs(sketch.query(5)) < 15.0

    def test_update_matches_build(self, rng):
        n = 64
        first = CountSketch(n, 32, 3, np.random.default_rng(0))
        second = CountSketch(n, 32, 3, np.random.default_rng(0))
        x = np.zeros(n)
        x[3] = 2.0
        x[9] = -1.0
        first.build_from_vector(x)
        second.update(3, 2.0)
        second.update(9, -1.0)
        assert np.allclose(first.table, second.table)

    def test_build_rejects_wrong_length(self, rng):
        sketch = CountSketch(16, 8, 2, rng)
        with pytest.raises(ValueError):
            sketch.build_from_vector(np.zeros(10))

    def test_query_all_matches_pointwise(self, rng):
        n = 50
        x = rng.normal(size=n) * 10
        sketch = CountSketch(n, 32, 3, rng)
        sketch.build_from_vector(x)
        all_estimates = sketch.query_all()
        for index in (0, 10, 49):
            assert all_estimates[index] == pytest.approx(sketch.query(index))

    def test_heavy_hitters_found(self, rng):
        n = 200
        x = np.ones(n)
        x[17] = 500.0
        sketch = CountSketch(n, 64, 5, rng)
        sketch.build_from_vector(x)
        hits = dict(sketch.heavy_hitters(threshold=250.0))
        assert 17 in hits


class TestCountMin:
    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            CountMinSketch(0, 8, 3, rng)
        with pytest.raises(ValueError):
            CountMinSketch(8, 8, 0, rng)

    def test_rejects_negative_frequencies(self, rng):
        sketch = CountMinSketch(16, 8, 2, rng)
        with pytest.raises(ValueError):
            sketch.build_from_vector(np.array([-1.0] + [0.0] * 15))

    def test_query_never_underestimates(self, rng):
        n = 128
        x = np.abs(rng.normal(size=n)) * 5
        sketch = CountMinSketch(n, 32, 4, rng)
        sketch.build_from_vector(x)
        estimates = sketch.query_all()
        assert np.all(estimates >= x - 1e-9)

    def test_point_query_close_for_heavy_item(self, rng):
        n = 256
        x = np.zeros(n)
        x[100] = 1000.0
        sketch = CountMinSketch(n, 64, 4, rng)
        sketch.build_from_vector(x)
        assert sketch.query(100) == pytest.approx(1000.0, rel=0.05)

    def test_update_accumulates(self, rng):
        sketch = CountMinSketch(16, 16, 3, rng)
        sketch.update(4, 2.0)
        sketch.update(4, 3.0)
        assert sketch.query(4) >= 5.0
