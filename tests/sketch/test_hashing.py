"""Unit tests for the k-wise independent hash families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.hashing import KWiseHash, PRIME_61


def _reference_horner(hash_fn: KWiseHash, keys: np.ndarray) -> np.ndarray:
    """Python-int Horner evaluation, the pre-vectorization reference."""
    out = np.empty(len(keys), dtype=np.uint64)
    for idx, key in enumerate(np.asarray(keys, dtype=np.int64).tolist()):
        acc = 0
        for coeff in hash_fn._coeffs:
            acc = (acc * key + coeff) % PRIME_61
        out[idx] = acc
    return out


class TestKWiseHash:
    def test_rejects_nonpositive_k(self, rng):
        with pytest.raises(ValueError):
            KWiseHash(0, rng)

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_vectorized_mulmod_matches_python_int_arithmetic(self, rng, k):
        """The Mersenne-61 split-multiply must be exact, not approximately so.

        Checked against arbitrary-precision Python integers on keys that
        stress every reduction path: 0, 1, values straddling the prime, and
        large 62-bit keys.
        """
        h = KWiseHash(k, rng)
        keys = np.concatenate(
            [
                rng.integers(0, 2**31, size=512),
                rng.integers(0, 2**62, size=512),
                np.array([0, 1, PRIME_61 - 1, PRIME_61, PRIME_61 + 7, 2**62 - 1]),
            ]
        )
        assert np.array_equal(h.values(keys), _reference_horner(h, keys))

    def test_values_preserve_input_shape(self, rng):
        h = KWiseHash(2, rng)
        assert h.values(np.arange(12).reshape(3, 4)).shape == (3, 4)
        assert h.values(np.array([], dtype=np.int64)).shape == (0,)

    def test_values_in_field(self, rng):
        h = KWiseHash(2, rng)
        values = h.values(np.arange(100))
        assert np.all(values < PRIME_61)

    def test_deterministic_given_coefficients(self, rng):
        h = KWiseHash(3, rng)
        keys = np.arange(50)
        assert np.array_equal(h.values(keys), h.values(keys))

    def test_different_instances_differ(self, rng):
        keys = np.arange(200)
        first = KWiseHash(2, rng).values(keys)
        second = KWiseHash(2, rng).values(keys)
        assert not np.array_equal(first, second)

    def test_buckets_in_range(self, rng):
        h = KWiseHash(2, rng)
        buckets = h.buckets(np.arange(500), 16)
        assert buckets.min() >= 0
        assert buckets.max() < 16

    def test_buckets_roughly_uniform(self, rng):
        h = KWiseHash(2, rng)
        buckets = h.buckets(np.arange(2000), 4)
        counts = np.bincount(buckets, minlength=4)
        assert counts.min() > 2000 / 4 * 0.7

    def test_bucket_count_validation(self, rng):
        with pytest.raises(ValueError):
            KWiseHash(2, rng).buckets(np.arange(4), 0)

    def test_signs_are_plus_minus_one(self, rng):
        signs = KWiseHash(4, rng).signs(np.arange(300))
        assert set(np.unique(signs)).issubset({-1, 1})

    def test_signs_roughly_balanced(self, rng):
        signs = KWiseHash(4, rng).signs(np.arange(2000))
        assert abs(int(signs.sum())) < 300

    def test_shape_preserved(self, rng):
        h = KWiseHash(2, rng)
        keys = np.arange(12).reshape(3, 4)
        assert h.values(keys).shape == (3, 4)
