"""Unit tests for the shared sketch kernel layer.

The kernels promise three things: lazy stacked hashing is *bit-identical*
to the per-row ``KWiseHash`` members it replaced, fused scatters equal
their naive per-row references, and the level-expansion machinery inverts
the layered-subsampling membership exactly.  The vectorized ``L0Sampler``
recovery and the reshape-based AMS estimators are checked against
faithful reimplementations of the historical Python loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch import AmsSketch, L0Sampler
from repro.sketch.hashing import KWiseHash, PRIME_61
from repro.sketch.kernels import (
    BitSignHash,
    StackedKWiseHash,
    bincount_rows,
    count_alive_levels,
    expand_levels,
    scatter_add_scalar,
    scatter_add_vector,
)


class TestStackedKWiseHash:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_bit_identical_to_per_row_members(self, k):
        """Same rng stream, same values — the lazy rewrite's contract."""
        keys = np.concatenate(
            [
                np.arange(100),
                np.array([0, 1, PRIME_61 - 1, PRIME_61, PRIME_61 + 7, 2**62 - 1]),
            ]
        )
        stacked = StackedKWiseHash(k, 5, np.random.default_rng(33))
        rng = np.random.default_rng(33)
        members = [KWiseHash(k, rng) for _ in range(5)]
        expected = np.stack([m.values(keys) for m in members])
        assert np.array_equal(stacked.values(keys), expected)
        assert np.array_equal(
            stacked.buckets(keys, 37), np.stack([m.buckets(keys, 37) for m in members])
        )
        assert np.array_equal(
            stacked.signs(keys), np.stack([m.signs(keys) for m in members])
        )

    def test_small_and_large_key_paths_agree(self):
        """The < 2^32 fast multiply must be exact, not approximately so."""
        stacked = StackedKWiseHash(4, 3, np.random.default_rng(5))
        small_keys = np.arange(64)
        large = stacked.values(np.concatenate([small_keys, [2**62 - 1]]))
        small = stacked.values(small_keys)
        assert np.array_equal(large[:, :64], small)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StackedKWiseHash(2, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            StackedKWiseHash(2, 3, np.random.default_rng(0)).buckets(np.arange(4), 0)

    def test_empty_batch(self):
        stacked = StackedKWiseHash(2, 3, np.random.default_rng(1))
        assert stacked.values(np.empty(0, dtype=np.int64)).shape == (3, 0)


class TestBitSignHash:
    def test_signs_are_plus_minus_one_and_deterministic(self):
        hash_ = BitSignHash(130, np.random.default_rng(2))  # spans 3 hash members
        keys = np.arange(500)
        signs = hash_.signs(keys)
        assert signs.shape == (130, 500)
        assert set(np.unique(signs)) == {-1.0, 1.0}
        assert np.array_equal(signs, hash_.signs(keys))

    def test_rows_are_roughly_balanced_and_distinct(self):
        hash_ = BitSignHash(61, np.random.default_rng(3))
        signs = hash_.signs(np.arange(4000))
        assert np.all(np.abs(signs.sum(axis=1)) < 700)
        assert not np.array_equal(signs[0], signs[1])

    def test_row_bits_match_hash_values(self):
        """Row r is literally bit r of the 4-wise value — the construction."""
        hash_ = BitSignHash(8, np.random.default_rng(4))
        keys = np.arange(32)
        values = hash_._hashes.values(keys)[0]
        signs = hash_.signs(keys)
        for row in range(8):
            expected = (((values >> np.uint64(row)) & np.uint64(1)).astype(float)) * 2 - 1
            np.testing.assert_array_equal(signs[row], expected)


class TestScatterKernels:
    def test_scalar_scatter_matches_per_row_reference(self):
        rng = np.random.default_rng(6)
        depth, width, batch = 4, 16, 300
        buckets = rng.integers(0, width, size=(depth, batch))
        signs = rng.choice(np.array([-1, 1]), size=(depth, batch))
        deltas = rng.integers(-9, 10, size=batch).astype(float)
        table = rng.integers(-5, 6, size=(depth, width)).astype(float)
        reference = table.copy()
        for row in range(depth):
            np.add.at(reference[row], buckets[row], signs[row] * deltas)
        scatter_add_scalar(table, buckets, signs, deltas)
        np.testing.assert_array_equal(table, reference)

    def test_scalar_scatter_without_signs(self):
        buckets = np.array([[0, 0, 2], [1, 1, 1]])
        table = np.zeros((2, 3))
        scatter_add_scalar(table, buckets, None, np.array([1.0, 2.0, 4.0]))
        np.testing.assert_array_equal(table, [[3.0, 0.0, 4.0], [0.0, 7.0, 0.0]])

    def test_vector_scatter_matches_per_row_reference(self):
        rng = np.random.default_rng(7)
        depth, width, batch, m = 3, 8, 120, 5
        buckets = rng.integers(0, width, size=(depth, batch))
        signs = rng.choice(np.array([-1, 1]), size=(depth, batch))
        deltas = rng.integers(-4, 5, size=(batch, m)).astype(float)
        table = np.zeros((depth, width, m))
        reference = np.zeros_like(table)
        for row in range(depth):
            np.add.at(reference[row], buckets[row], signs[row][:, None] * deltas)
        scatter_add_vector(table, buckets, signs, deltas)
        np.testing.assert_array_equal(table, reference)

    def test_integer_weights_far_past_float53_stay_exact(self):
        """Regression: int64 accumulation, not float64-bincount-then-cast.

        The layered sketches' internal weights are coefficient * value
        (coefficient < 2^20), so legal 2^53-range deltas produce weights a
        float64 cannot hold; the dense int64 matmul was exact to 2^63 and
        the kernel must be too.
        """
        big = 2**52 + 1
        sampler = L0Sampler(1 << 10, np.random.default_rng(50), repetitions=2)
        target = (1 << 10) - 1
        acc = sampler.empty_copy()
        acc.update_many(np.array([target]), np.array([big], dtype=np.int64))
        np.testing.assert_array_equal(
            acc.state, sampler.matrix[:, [target]] @ np.array([big], dtype=np.int64)
        )
        outcome = sampler.sample(acc.state)
        assert outcome.success and outcome.index == target and outcome.value == big

    def test_bincount_rows_matches_matmul(self):
        rng = np.random.default_rng(8)
        rows = rng.integers(0, 11, size=50)
        weights = rng.integers(-6, 7, size=50)
        indicator = np.zeros((11, 50), dtype=np.int64)
        indicator[rows, np.arange(50)] = 1
        out = bincount_rows(rows, weights, 11, exact_int=True)
        np.testing.assert_array_equal(out, indicator @ weights)
        assert out.dtype == np.int64
        matrix_weights = rng.integers(-3, 4, size=(50, 4)).astype(float)
        out2 = bincount_rows(rows, matrix_weights, 11, exact_int=False)
        np.testing.assert_array_equal(out2, indicator @ matrix_weights)
        assert out2.dtype == np.float64


class TestLevelExpansion:
    def test_count_alive_levels_matches_naive_comparison(self):
        rng = np.random.default_rng(9)
        thresholds = 2.0 ** (-np.arange(12))
        priorities = np.concatenate(
            [rng.uniform(size=500), thresholds, np.array([0.0, 1.0 - 1e-16])]
        )
        naive = (priorities[:, None] < thresholds[None, :]).sum(axis=1)
        np.testing.assert_array_equal(
            count_alive_levels(priorities, thresholds), naive
        )

    def test_expand_levels_enumerates_each_coordinate_level_pair(self):
        take, level = expand_levels(np.array([2, 1, 3]))
        np.testing.assert_array_equal(take, [0, 0, 1, 2, 2, 2])
        np.testing.assert_array_equal(level, [0, 1, 0, 0, 1, 2])

    def test_expand_levels_empty(self):
        take, level = expand_levels(np.empty(0, dtype=np.int64))
        assert take.size == 0 and level.size == 0


def reference_sample(sampler: L0Sampler, sketched: np.ndarray):
    """The historical per-repetition / per-level recovery loop, verbatim."""
    per_rep = sketched.reshape(sampler.repetitions, sampler.levels, 3)
    coeffs = sampler._fingerprint_coeffs
    for rep in range(sampler.repetitions):
        for level in range(sampler.levels - 1, -1, -1):
            s0, s1, fingerprint = (int(v) for v in per_rep[rep, level])
            if s0 == 0:
                continue
            if s1 % s0 != 0:
                continue
            index = s1 // s0 - 1
            if not 0 <= index < sampler.n:
                continue
            if fingerprint != int(coeffs[rep, index]) * s0:
                continue
            return index, s0, level
    return None, None, None


class TestVectorizedRecovery:
    @pytest.mark.parametrize("seed", range(8))
    def test_sample_matches_reference_loop_on_random_states(self, seed):
        """Fuzzed raw states hit every rejection branch; outcomes must agree."""
        sampler = L0Sampler(24, np.random.default_rng(100), repetitions=3)
        rng = np.random.default_rng(seed)
        sketched = rng.integers(-6, 7, size=sampler.num_rows).astype(np.int64)
        # Sprinkle plausible 1-sparse cells so successes occur too.
        for cell in range(0, sampler.num_rows, 9):
            rep = cell // (3 * sampler.levels)
            j = int(rng.integers(0, 24))
            s0 = int(rng.integers(1, 4))
            sketched[cell + 0] = s0
            sketched[cell + 1] = (j + 1) * s0
            if rng.uniform() < 0.7:
                coeff = sampler._fingerprint_coeffs[rep, j]
                sketched[cell + 2] = int(coeff) * s0
        outcome = sampler.sample(sketched)
        expected = reference_sample(sampler, sketched)
        assert (outcome.index, outcome.value, outcome.level) == expected

    def test_sample_on_float_states_truncates_like_int(self):
        sampler = L0Sampler(16, np.random.default_rng(101), repetitions=2)
        x = np.zeros(16, dtype=np.int64)
        x[11] = 3
        sketched = sampler.apply(x).astype(float)
        outcome = sampler.sample(sketched)
        assert outcome.success and outcome.index == 11 and outcome.value == 3


class TestAmsEstimatorPipelines:
    def reference_estimate(self, sketched, num_groups):
        squares = np.asarray(sketched, dtype=float) ** 2
        groups = np.array_split(squares, num_groups)
        return float(np.median([np.mean(group) for group in groups]))

    def reference_columns(self, sketched, num_groups):
        squares = np.asarray(sketched, dtype=float) ** 2
        groups = np.array_split(squares, num_groups, axis=0)
        return np.median(np.stack([np.mean(g, axis=0) for g in groups]), axis=0)

    @pytest.mark.parametrize("num_rows, num_groups", [(24, 3), (25, 4), (16, 16)])
    def test_grouped_estimates_match_array_split_reference(self, num_rows, num_groups):
        """Even splits reshape, ragged splits reduceat — same numbers."""
        rng = np.random.default_rng(13)
        sketch = AmsSketch(32, num_rows, rng, num_groups=num_groups)
        sketched = rng.normal(size=num_rows)
        assert sketch.estimate_f2(sketched) == pytest.approx(
            self.reference_estimate(sketched, num_groups), rel=1e-12
        )
        sketched_cols = rng.normal(size=(num_rows, 5))
        np.testing.assert_allclose(
            sketch.estimate_f2_columns(sketched_cols),
            self.reference_columns(sketched_cols, num_groups),
            rtol=1e-12,
        )

    def test_hash_mode_estimates_f2(self):
        rng = np.random.default_rng(14)
        x = rng.integers(0, 5, size=256).astype(float)
        sketch = AmsSketch(256, 96, np.random.default_rng(15), mode="hash")
        acc = sketch.empty_copy()
        acc.update_many(np.arange(256), x)
        assert acc.estimate_state_f2() == pytest.approx(float(x @ x), rel=0.5)

    def test_mode_validation_and_cross_mode_merge_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            AmsSketch(8, 4, np.random.default_rng(0), mode="sparse")
        dense = AmsSketch(8, 4, np.random.default_rng(1))
        hashed = AmsSketch(8, 4, np.random.default_rng(1), mode="hash")
        with pytest.raises(ValueError):
            dense.merge(hashed)

    def test_hash_mode_apply_matches_materialized_matrix(self):
        sketch = AmsSketch(96, 16, np.random.default_rng(16), mode="hash")
        x = np.random.default_rng(17).normal(size=96)
        np.testing.assert_allclose(sketch.apply(x), sketch.dense_matrix @ x)
        matrix_input = np.random.default_rng(18).normal(size=(96, 3))
        np.testing.assert_allclose(
            sketch.apply(matrix_input), sketch.dense_matrix @ matrix_input
        )


class TestHugeUniverseGuards:
    """Dense materialization helpers refuse universe-sized allocations."""

    def test_countsketch_dense_properties_refuse_huge_universes(self):
        from repro.sketch.countsketch import CountSketch

        sketch = CountSketch(1 << 30, 16, 2, np.random.default_rng(20))
        with pytest.raises(ValueError, match="dense hash tables"):
            sketch.bucket_of
        with pytest.raises(ValueError, match="dense hash tables"):
            sketch.sign_of

    def test_linear_families_refuse_huge_dense_matrices(self):
        from repro.sketch import L0Sketch, L0Sampler

        with pytest.raises(ValueError, match="materialize"):
            L0Sketch(1 << 30, 16, np.random.default_rng(21), mode="hash").matrix
        with pytest.raises(ValueError, match="materialize"):
            L0Sampler(1 << 30, np.random.default_rng(22), mode="hash").matrix
        with pytest.raises(ValueError, match="materialize"):
            AmsSketch(1 << 30, 4, np.random.default_rng(23), mode="hash").dense_matrix

    def test_out_of_range_coordinates_raise_in_every_mode(self):
        """Lazy hashing must not silently sketch phantom coordinates.

        The dense tables raised IndexError for free; the kernels enforce
        the universe bound explicitly, hash modes included.
        """
        from repro.sketch import CountMinSketch, CountSketch, L0Sketch

        cs = CountSketch(16, 8, 3, np.random.default_rng(30))
        with pytest.raises(IndexError, match="out of range"):
            cs.update(500)
        with pytest.raises(IndexError, match="out of range"):
            cs.update_many(np.array([3, 16]), np.array([1.0, 1.0]))
        with pytest.raises(IndexError, match="out of range"):
            cs.query(-1)
        cm = CountMinSketch(16, 8, 3, np.random.default_rng(31))
        with pytest.raises(IndexError, match="out of range"):
            cm.update(16)
        with pytest.raises(IndexError, match="out of range"):
            cm.query(99)
        for mode in ("dense", "hash"):
            hashed = L0Sketch(16, 4, np.random.default_rng(32), mode=mode)
            with pytest.raises(IndexError, match="out of range"):
                hashed.empty_copy().update_many(np.array([16]), np.array([1]))
            ams = AmsSketch(16, 4, np.random.default_rng(33), mode=mode)
            with pytest.raises(IndexError, match="out of range"):
                ams.empty_copy().update_many(np.array([-2]), np.array([1]))

    def test_countmin_bucket_table_property(self):
        from repro.sketch import CountMinSketch

        sketch = CountMinSketch(32, 8, 3, np.random.default_rng(24))
        table = sketch.bucket_of
        assert table.shape == (3, 32)
        assert table.min() >= 0 and table.max() < 8
