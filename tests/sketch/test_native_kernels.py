"""Compiled kernel backends are exact rewrites of the NumPy kernels.

:mod:`repro.sketch._native` offers optional GIL-releasing fast paths
(numba- or cffi-compiled) for the hot kernels; the NumPy implementation is
the reference and the default.  Every backend available in the current
environment is driven through the *public* kernel entry points and its
output compared byte for byte against the NumPy path — including the
regimes that historically broke exactness rewrites: huge keys (``>= 2^32``,
where the split-multiply matters), empty batches, int64 wraparound
accumulation, and the batch-order float association of the scatters.

End to end, every sketch family is streamed under each backend and its
state bytes compared against the NumPy-path state, which
``test_golden_state.py`` pins to the pre-kernel dense era — so a passing
run here extends the golden pins to the compiled backends without
duplicating the hashes.

Backends that cannot initialize here (no numba wheel, no C compiler) are
skipped, not failed; CI matrixes them in.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.sketch import _native
from repro.sketch.kernels import (
    StackedKWiseHash,
    bincount_rows,
    scatter_add_scalar,
    scatter_add_vector,
)
from tests.sketch.test_golden_state import GOLDEN_PINS, run_stream, state_bytes

SEED = 778899

COMPILED = [name for name in _native.BACKENDS if name != "numpy"]
available = [name for name in COMPILED if _native._probe(name) is not None]


def _skip_reason(name: str) -> str:
    error = _native._probe_errors.get(name)
    return f"backend {name!r} unavailable here: {error!r}"


backends = pytest.mark.parametrize(
    "backend",
    [
        pytest.param(
            name,
            marks=()
            if name in available
            else pytest.mark.skip(reason=_skip_reason(name)),
        )
        for name in COMPILED
    ],
)


def rng():
    return np.random.default_rng(SEED)


KEY_BATCHES = [
    np.array([], dtype=np.int64),
    np.arange(257, dtype=np.int64),
    # Keys at and beyond 2^32: the full split-multiply regime.
    np.array([2**32 - 1, 2**32, 2**61 - 2, 2**62, 2**63 - 1], dtype=np.int64),
    rng().integers(0, 2**63 - 1, size=501, dtype=np.int64),
]


class TestHashKernels:
    @backends
    @pytest.mark.parametrize("batch", range(len(KEY_BATCHES)))
    def test_values_match_numpy(self, backend, batch):
        hashes = StackedKWiseHash(6, 5, rng())
        keys = KEY_BATCHES[batch]
        with _native.use_backend("numpy"):
            want = hashes.values(keys)
        with _native.use_backend(backend):
            got = hashes.values(keys)
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()

    @backends
    def test_values_grid_matches_numpy(self, backend):
        hashes = StackedKWiseHash(4, 3, rng())
        keys = rng().integers(0, 2**63 - 1, size=(3, 17, 5), dtype=np.int64)
        with _native.use_backend("numpy"):
            want = hashes.values_grid(keys)
        with _native.use_backend(backend):
            got = hashes.values_grid(keys)
        assert got.tobytes() == want.tobytes()


class TestScatterKernels:
    @backends
    @pytest.mark.parametrize("signed", [True, False])
    def test_scalar_scatter_matches_numpy(self, backend, signed):
        r = rng()
        depth, width, batch = 5, 37, 401
        buckets = r.integers(0, width, size=(depth, batch))
        signs = (2 * r.integers(0, 2, size=(depth, batch)) - 1) if signed else None
        deltas = r.normal(size=batch)  # float association must match exactly
        start = r.normal(size=(depth, width))
        want, got = start.copy(), start.copy()
        with _native.use_backend("numpy"):
            scatter_add_scalar(want, buckets, signs, deltas)
        with _native.use_backend(backend):
            scatter_add_scalar(got, buckets, signs, deltas)
        assert got.tobytes() == want.tobytes()

    @backends
    def test_vector_scatter_matches_numpy(self, backend):
        r = rng()
        depth, width, batch, m = 4, 19, 211, 6
        buckets = r.integers(0, width, size=(depth, batch))
        signs = 2 * r.integers(0, 2, size=(depth, batch)) - 1
        deltas = r.normal(size=(batch, m))
        start = r.normal(size=(depth, width, m))
        want, got = start.copy(), start.copy()
        with _native.use_backend("numpy"):
            scatter_add_vector(want, buckets, signs, deltas)
        with _native.use_backend(backend):
            scatter_add_vector(got, buckets, signs, deltas)
        assert got.tobytes() == want.tobytes()

    @backends
    @pytest.mark.parametrize("ndim", [1, 2])
    def test_float_bincount_matches_numpy(self, backend, ndim):
        r = rng()
        size = (307,) if ndim == 1 else (307, 5)
        rows = r.integers(0, 23, size=307)
        weights = r.normal(size=size)
        with _native.use_backend("numpy"):
            want = bincount_rows(rows, weights, 23, exact_int=False)
        with _native.use_backend(backend):
            got = bincount_rows(rows, weights, 23, exact_int=False)
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()

    @backends
    @pytest.mark.parametrize("ndim", [1, 2])
    def test_exact_int_bincount_matches_numpy_incl_wraparound(self, backend, ndim):
        r = rng()
        size = (64,) if ndim == 1 else (64, 3)
        rows = r.integers(0, 7, size=64)
        # Values near the int64 extremes: accumulation must wrap exactly
        # like NumPy's in-place indexed add, not saturate or trap.
        weights = r.integers(
            -(2**62), 2**62, size=size, dtype=np.int64
        ) * np.int64(3)
        with _native.use_backend("numpy"):
            want = bincount_rows(rows, weights, 7, exact_int=True)
        with _native.use_backend(backend):
            got = bincount_rows(rows, weights, 7, exact_int=True)
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()


class TestEndToEndGoldenStates:
    @backends
    @pytest.mark.parametrize("family, n", sorted(GOLDEN_PINS, key=str))
    def test_streamed_states_match_the_numpy_path(self, backend, family, n):
        with _native.use_backend("numpy"):
            want = state_bytes(run_stream(family, n))
        with _native.use_backend(backend):
            got = state_bytes(run_stream(family, n))
        assert got == want  # NumPy path is pinned to the dense era


class TestBackendSelection:
    def test_default_follows_the_environment(self):
        # numpy unless REPRO_KERNELS picked a backend at import (CI matrixes
        # this); an unavailable request falls back to numpy with a warning.
        want = os.environ.get("REPRO_KERNELS", "numpy")
        if want == "auto":
            assert _native.current_backend() in _native.BACKENDS
        else:
            assert _native.current_backend() in (want, "numpy")
        if _native.current_backend() == "numpy":
            assert _native.active() is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            _native.set_backend("fortran")

    def test_auto_always_resolves(self):
        before = _native.current_backend()
        with _native.use_backend("auto"):
            assert _native.current_backend() in _native.BACKENDS
        assert _native.current_backend() == before  # context restores

    @pytest.mark.parametrize(
        "name",
        [n for n in COMPILED if _native._probe(n) is None],
    )
    def test_explicitly_requesting_an_unavailable_backend_raises(self, name):
        with pytest.raises(RuntimeError):
            _native.set_backend(name)
