"""Wire codec: byte-exact round trips, lossless compaction, framing errors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.comm import wire


def roundtrip(array):
    return wire.decode_array(wire.encode_array(array))


def assert_bit_identical(a, b):
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    assert a.tobytes() == b.tobytes()


class TestRoundTrips:
    def test_absent_state(self):
        payload = wire.encode_array(None)
        assert wire.decode_array(payload) is None

    @pytest.mark.parametrize(
        "array",
        [
            np.arange(12, dtype=np.int64).reshape(3, 4) - 6,
            np.zeros((5, 7), dtype=np.int64),
            np.array([2**40, -(2**40)], dtype=np.int64),
            np.linspace(-1.0, 1.0, 9).reshape(3, 3),
            np.array([[-0.0, 0.0], [1.5, np.inf]]),
            np.zeros(0, dtype=np.int64),
            np.float64(3.25) * np.ones((2, 2, 2)),
            np.arange(6, dtype=np.int32),
            np.arange(6, dtype=np.float32),
        ],
    )
    def test_dense_and_sparse_arrays(self, array):
        assert_bit_identical(roundtrip(array), array)

    def test_negative_zero_survives(self):
        array = np.array([-0.0, 0.0, 2.0])
        back = roundtrip(array)
        assert_bit_identical(back, array)
        assert np.signbit(back[0]) and not np.signbit(back[1])

    def test_nan_payload_survives(self):
        array = np.array([np.nan, 1.0, -np.inf])
        assert_bit_identical(roundtrip(array), array)


class TestCompaction:
    def test_small_ints_travel_narrow(self):
        wide = np.arange(1000, dtype=np.int64) % 5
        blob = wire.encode_array(wide)
        assert len(blob) < 1000 * 2  # one byte per entry plus header
        assert_bit_identical(wire.decode_array(blob), wide)

    def test_integer_valued_floats_travel_as_ints(self):
        floats = np.arange(1000, dtype=float) % 7 - 3
        blob = wire.encode_array(floats)
        assert len(blob) < 1000 * 2
        assert_bit_identical(wire.decode_array(blob), floats)

    def test_mostly_zero_states_travel_sparse(self):
        state = np.zeros(10_000, dtype=np.int64)
        state[17] = 123456
        blob = wire.encode_array(state)
        assert len(blob) < 200
        assert_bit_identical(wire.decode_array(blob), state)

    def test_non_integral_floats_stay_float64(self):
        array = np.array([0.5, 1.25, -3.75])
        assert_bit_identical(roundtrip(array), array)

    def test_downcast_never_widens_float32(self):
        """Integer-valued float32 with large values must not inflate to int64."""
        array = np.full(1000, 2.0**40, dtype=np.float32)
        blob = wire.encode_array(array)
        assert len(blob) <= 1000 * 4 + 32  # at most the raw float32 bytes
        assert_bit_identical(wire.decode_array(blob), array)

    def test_negative_zero_blocks_integer_downcast(self):
        array = np.array([-0.0] * 100)
        assert_bit_identical(roundtrip(array), array)


class TestBundles:
    def test_bundle_round_trip_preserves_order_and_content(self):
        records = {
            "ams": np.arange(6, dtype=float),
            "l0": np.zeros((4, 3), dtype=np.int64),
            "empty": None,
        }
        decoded = wire.decode_bundle(wire.encode_bundle(records))
        assert list(decoded) == ["ams", "l0", "empty"]
        assert_bit_identical(decoded["ams"], records["ams"])
        assert_bit_identical(decoded["l0"], records["l0"])
        assert decoded["empty"] is None

    def test_empty_bundle(self):
        assert wire.decode_bundle(wire.encode_bundle({})) == {}

    def test_oversized_bundle_rejected(self):
        records = {f"sketch-{i}": None for i in range(256)}
        with pytest.raises(wire.WireFormatError, match="max 255"):
            wire.encode_bundle(records)

    def test_corrupt_shape_overflow_rejected(self):
        """A shape whose product wraps int64 must not bypass the guards."""
        import struct

        for kind in (1, 2):  # dense, sparse
            blob = (
                struct.pack("<2sBB", b"RS", 1, kind)
                + struct.pack("<BBB", 4, 4, 3)  # int64 orig/wire, ndim 3
                + struct.pack("<3I", 2**31, 2**31, 4)
            )
            with pytest.raises(wire.WireFormatError):
                wire.decode_array(blob)

    def test_duplicate_record_names_rejected(self):
        import struct

        record = wire.encode_array(np.arange(3, dtype=np.int64))
        framed = b"\x03ams" + struct.pack("<I", len(record)) + record
        blob = struct.pack("<2sBB", b"RS", 1, 2) + framed + framed
        with pytest.raises(wire.WireFormatError, match="duplicate"):
            wire.decode_bundle(blob)


class TestFramingErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(wire.WireFormatError, match="magic"):
            wire.decode_array(b"XX\x01\x00")

    def test_bad_version_rejected(self):
        with pytest.raises(wire.WireFormatError, match="version"):
            wire.decode_array(b"RS\x63\x00")

    def test_trailing_bytes_rejected(self):
        blob = wire.encode_array(np.arange(3, dtype=np.int64)) + b"\x00"
        with pytest.raises(wire.WireFormatError, match="trailing"):
            wire.decode_array(blob)

    @pytest.mark.parametrize("cut", [1, 3, 5, 9, 20])
    def test_truncated_payloads_rejected(self, cut):
        """Every truncation point raises WireFormatError, never struct/numpy errors."""
        blob = wire.encode_array(np.arange(100, dtype=np.int64))
        with pytest.raises(wire.WireFormatError, match="truncated"):
            wire.decode_array(blob[:cut])

    def test_truncated_sparse_payload_rejected(self):
        sparse = np.zeros(1000, dtype=np.int64)
        sparse[3] = 7
        blob = wire.encode_array(sparse)
        with pytest.raises(wire.WireFormatError, match="truncated"):
            wire.decode_array(blob[:-1])

    def test_truncated_bundle_rejected(self):
        blob = wire.encode_bundle({"ams": np.arange(6, dtype=np.int64)})
        for cut in (2, 5, 8, len(blob) - 1):
            with pytest.raises(wire.WireFormatError, match="truncated"):
                wire.decode_bundle(blob[:cut])

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(wire.WireFormatError, match="dtype"):
            wire.encode_array(np.zeros(3, dtype=np.uint64))

    def test_payload_bits_is_eight_per_byte(self):
        blob = wire.encode_array(np.arange(5, dtype=np.int64))
        assert wire.payload_bits(blob) == 8 * len(blob)


class TestRobustness:
    """Adversarial input never escapes as anything but WireFormatError.

    These payloads cross process boundaries in the service layer, so the
    decoder is a trust boundary: truncation at *every* byte, corrupt names
    and corrupt shape fields must all fail loudly and cheaply — no struct
    or numpy exceptions, no gigabyte allocations driven by a corrupt header.
    """

    @staticmethod
    def _blobs():
        sparse_state = np.zeros(4096, dtype=np.int64)
        sparse_state[[5, 99]] = [7, -3]
        return [
            (wire.encode_array(np.linspace(-1.0, 1.0, 37)), wire.decode_array),
            (wire.encode_array(sparse_state), wire.decode_array),
            (
                wire.encode_bundle(
                    {"ams": np.arange(24, dtype=float), "l0": sparse_state, "gap": None}
                ),
                wire.decode_bundle,
            ),
        ]

    def test_every_strict_prefix_raises(self):
        for blob, decode in self._blobs():
            for cut in range(len(blob)):
                with pytest.raises(wire.WireFormatError):
                    decode(blob[:cut])

    def test_trailing_garbage_after_bundle_rejected(self):
        blob = wire.encode_bundle({"ams": np.arange(4, dtype=np.int64)})
        with pytest.raises(wire.WireFormatError, match="trailing"):
            wire.decode_bundle(blob + b"\x00")

    def test_non_utf8_record_name_rejected(self):
        import struct

        record = wire.encode_array(np.arange(3, dtype=np.int64))
        blob = (
            struct.pack("<2sBB", b"RS", 1, 1)
            + struct.pack("<B", 2)
            + b"\xff\xfe"  # not valid UTF-8
            + struct.pack("<I", len(record))
            + record
        )
        with pytest.raises(wire.WireFormatError, match="UTF-8"):
            wire.decode_bundle(blob)

    def test_sparse_decode_size_cap(self):
        """A corrupt shape must be refused before any dense materialization."""
        import struct

        dim = (1 << 27) + 1  # 2**27+1 int64 entries > 1 GiB cap, < uint32
        blob = (
            struct.pack("<2sBB", b"RS", 1, 2)  # sparse record
            + struct.pack("<BBB", 4, 4, 1)  # orig int64, wire int64, ndim 1
            + struct.pack("<I", dim)
        )
        with pytest.raises(wire.WireFormatError, match="cap"):
            wire.decode_array(blob)

    def test_sparse_decode_size_cap_accounts_for_widening(self):
        """int8 on the wire decoding into int64 is charged at int64 width."""
        import struct

        dim = (1 << 27) + 1  # fits the cap as int8, busts it widened to int64
        blob = (
            struct.pack("<2sBB", b"RS", 1, 2)
            + struct.pack("<BBB", 4, 1, 1)  # orig int64, wire int8, ndim 1
            + struct.pack("<I", dim)
        )
        with pytest.raises(wire.WireFormatError, match="cap"):
            wire.decode_array(blob)

    def test_seeded_mutation_fuzz_only_raises_wireformaterror(self, monkeypatch):
        # A small cap keeps fuzz-survivor sparse records from allocating
        # hundreds of megabytes per trial; the guard itself is under test.
        monkeypatch.setattr(wire, "MAX_DECODE_BYTES", 1 << 20)
        rng = np.random.default_rng(20260808)
        cases = self._blobs()
        for _ in range(300):
            blob, decode = cases[int(rng.integers(len(cases)))]
            corrupt = bytearray(blob)
            for _ in range(int(rng.integers(1, 4))):
                corrupt[int(rng.integers(len(corrupt)))] = int(rng.integers(256))
            if rng.integers(4) == 0:
                corrupt = corrupt[: int(rng.integers(len(corrupt) + 1))]
            try:
                decode(bytes(corrupt))  # a lucky mutation may still decode
            except wire.WireFormatError:
                pass  # the only acceptable failure mode


class TestPropertyRoundTrips:
    @given(
        array=hnp.arrays(
            dtype=np.int64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=8),
            elements=st.integers(min_value=-(2**62), max_value=2**62),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_int64_arrays_round_trip_bit_identically(self, array):
        assert_bit_identical(roundtrip(array), array)

    @given(
        array=hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=10),
            elements=st.floats(allow_subnormal=True),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_float64_arrays_round_trip_bit_identically(self, array):
        assert_bit_identical(roundtrip(array), array)
