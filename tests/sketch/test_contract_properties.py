"""Property-based tests (hypothesis) for the MergeableSketch contract.

For every sketch family the coordinator runtime merges — CountSketch, AMS,
``l_0`` sketch, ``l_0`` sampler — and for *every* generated integer update
sequence, the contract must hold exactly:

* ``merge`` is associative and commutative,
* ``update_many`` equals the same updates applied one at a time,
* ``empty_copy()`` is a merge identity (both sides),
* serialize -> deserialize restores the state bit for bit.

Integer updates make every state integer-valued, so all equalities are
exact byte comparisons, not approximate ones — the same exactness that
makes streamed and one-shot summaries bit-identical.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import (
    AmsSketch,
    CountSketch,
    L0Sampler,
    L0Sketch,
    deserialize_state,
    serialize_state,
)

DIM = 20

#: Shared templates (fixed randomness); examples only ever use empty copies.
_RNG = np.random.default_rng(20260730)
TEMPLATES = {
    "countsketch": CountSketch(DIM, 8, 3, _RNG),
    "ams": AmsSketch(DIM, 12, _RNG),
    "l0": L0Sketch(DIM, 8, _RNG),
    "sampler": L0Sampler(DIM, _RNG, repetitions=2),
}

families = st.sampled_from(sorted(TEMPLATES))
updates = st.lists(
    st.tuples(st.integers(0, DIM - 1), st.integers(-8, 8)),
    min_size=1,
    max_size=16,
)


def state_bytes(sketch) -> bytes:
    state = sketch.state_array()
    return b"absent" if state is None else state.tobytes()


def built(family: str, batch: list[tuple[int, int]]):
    sketch = TEMPLATES[family].empty_copy()
    indices = np.array([index for index, _ in batch], dtype=np.int64)
    values = np.array([value for _, value in batch], dtype=np.int64)
    sketch.update_many(indices, values)
    return sketch


class TestMergeAlgebra:
    @given(family=families, a=updates, b=updates)
    @settings(max_examples=40, deadline=None)
    def test_merge_commutes(self, family, a, b):
        ab = built(family, a).merge(built(family, b))
        ba = built(family, b).merge(built(family, a))
        assert state_bytes(ab) == state_bytes(ba)

    @given(family=families, a=updates, b=updates, c=updates)
    @settings(max_examples=40, deadline=None)
    def test_merge_associates(self, family, a, b, c):
        left = built(family, a).merge(built(family, b)).merge(built(family, c))
        right = built(family, a).merge(built(family, b).merge(built(family, c)))
        assert state_bytes(left) == state_bytes(right)

    @given(family=families, a=updates, b=updates)
    @settings(max_examples=40, deadline=None)
    def test_merge_of_parts_equals_one_build(self, family, a, b):
        merged = built(family, a).merge(built(family, b))
        assert state_bytes(merged) == state_bytes(built(family, a + b))


class TestUpdateSemantics:
    @given(family=families, batch=updates)
    @settings(max_examples=40, deadline=None)
    def test_update_many_equals_sequential_single_updates(self, family, batch):
        batched = built(family, batch)
        sequential = TEMPLATES[family].empty_copy()
        for index, value in batch:
            sequential.update_many(
                np.array([index], dtype=np.int64), np.array([value], dtype=np.int64)
            )
        assert state_bytes(batched) == state_bytes(sequential)


class TestMergeIdentity:
    @given(family=families, batch=updates)
    @settings(max_examples=40, deadline=None)
    def test_empty_copy_is_merge_identity(self, family, batch):
        template = TEMPLATES[family]
        part = built(family, batch)
        before = state_bytes(part)
        # Right identity: merging an empty sketch changes nothing.
        assert state_bytes(part.merge(template.empty_copy())) == before
        # Left identity: an empty sketch absorbing the part equals the part.
        absorbed = template.empty_copy().merge(built(family, batch))
        assert state_bytes(absorbed) == before


class TestSerializationRoundTrip:
    @given(family=families, batch=updates)
    @settings(max_examples=40, deadline=None)
    def test_serialize_deserialize_is_bit_identical(self, family, batch):
        template = TEMPLATES[family]
        sketch = built(family, batch)
        restored = deserialize_state(template, serialize_state(sketch))
        assert state_bytes(restored) == state_bytes(sketch)
        # The restored clone is a first-class summary: it merges like the
        # original (same bytes after absorbing the same other part).
        other = built(family, batch[::-1])
        assert state_bytes(restored.merge(other)) == state_bytes(
            built(family, batch).merge(built(family, batch[::-1]))
        )

    @given(family=families)
    @settings(max_examples=8, deadline=None)
    def test_absent_state_round_trips(self, family):
        template = TEMPLATES[family]
        restored = deserialize_state(template, serialize_state(template.empty_copy()))
        assert state_bytes(restored) == state_bytes(template.empty_copy())
