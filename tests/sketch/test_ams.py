"""Unit tests for the AMS / F2 sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.ams import AmsSketch


class TestConstruction:
    def test_invalid_dimensions_rejected(self, rng):
        with pytest.raises(ValueError):
            AmsSketch(0, 8, rng)
        with pytest.raises(ValueError):
            AmsSketch(8, 0, rng)
        with pytest.raises(ValueError):
            AmsSketch(8, 4, rng, num_groups=5)

    def test_matrix_entries_are_signs(self, rng):
        sketch = AmsSketch(16, 8, rng)
        assert set(np.unique(sketch.matrix)).issubset({-1.0, 1.0})

    def test_for_accuracy_sizes_rows(self, rng):
        loose = AmsSketch.for_accuracy(32, 0.5, rng)
        tight = AmsSketch.for_accuracy(32, 0.1, rng)
        assert tight.num_rows > loose.num_rows

    def test_for_accuracy_rejects_bad_epsilon(self, rng):
        with pytest.raises(ValueError):
            AmsSketch.for_accuracy(32, 0.0, rng)


class TestEstimation:
    def test_unbiased_on_average(self, rng):
        x = rng.normal(size=64)
        truth = float(np.sum(x**2))
        estimates = []
        for _ in range(30):
            sketch = AmsSketch(64, 64, rng)
            estimates.append(sketch.estimate_f2(sketch.apply(x)))
        assert np.mean(estimates) == pytest.approx(truth, rel=0.15)

    def test_zero_vector_estimates_zero(self, rng):
        sketch = AmsSketch(32, 16, rng)
        assert sketch.estimate_f2(sketch.apply(np.zeros(32))) == 0.0

    def test_accuracy_within_epsilon_mostly(self, rng):
        x = rng.integers(0, 5, size=128).astype(float)
        truth = float(np.sum(x**2))
        sketch = AmsSketch.for_accuracy(128, 0.25, rng)
        estimate = sketch.estimate_f2(sketch.apply(x))
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_wrong_sketch_length_rejected(self, rng):
        sketch = AmsSketch(32, 16, rng)
        with pytest.raises(ValueError):
            sketch.estimate_f2(np.zeros(7))

    def test_median_of_means_variant(self, rng):
        x = rng.normal(size=64)
        truth = float(np.sum(x**2))
        sketch = AmsSketch(64, 96, rng, num_groups=6)
        estimate = sketch.estimate_f2(sketch.apply(x))
        assert estimate == pytest.approx(truth, rel=0.6)

    def test_columnwise_estimation(self, rng):
        matrix = rng.normal(size=(64, 5))
        truth = np.sum(matrix**2, axis=0)
        sketch = AmsSketch(64, 256, rng)
        estimates = sketch.estimate_f2_columns(sketch.apply(matrix))
        assert estimates.shape == (5,)
        assert np.allclose(estimates, truth, rtol=0.5)

    def test_columnwise_with_groups(self, rng):
        matrix = rng.normal(size=(32, 3))
        sketch = AmsSketch(32, 60, rng, num_groups=4)
        estimates = sketch.estimate_f2_columns(sketch.apply(matrix))
        assert estimates.shape == (3,)
        assert np.all(estimates >= 0)
