"""Property-based tests (hypothesis) for the sketching substrate.

These check structural invariants — linearity, exactness of recovery,
monotonicity — rather than statistical accuracy, so they hold for *every*
generated input, not just on average.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sketch.ams import AmsSketch
from repro.sketch.l0_sampler import L0Sampler
from repro.sketch.l0_sketch import L0Sketch
from repro.sketch.lp_sketch import LpSketch, lp_norm

DIM = 24

int_vectors = hnp.arrays(
    dtype=np.int64,
    shape=DIM,
    elements=st.integers(min_value=-20, max_value=20),
)
nonneg_vectors = hnp.arrays(
    dtype=np.int64,
    shape=DIM,
    elements=st.integers(min_value=0, max_value=20),
)


@st.composite
def vector_pairs(draw):
    x = draw(int_vectors)
    y = draw(int_vectors)
    return x, y


class TestLinearity:
    @given(pair=vector_pairs())
    @settings(max_examples=25, deadline=None)
    def test_ams_sketch_is_linear(self, pair):
        x, y = pair
        sketch = AmsSketch(DIM, 10, np.random.default_rng(0))
        assert np.allclose(
            sketch.apply(x + y), sketch.apply(x) + sketch.apply(y), atol=1e-9
        )

    @given(pair=vector_pairs())
    @settings(max_examples=25, deadline=None)
    def test_lp_sketch_is_linear(self, pair):
        x, y = pair
        sketch = LpSketch(DIM, 1.0, 10, np.random.default_rng(1))
        assert np.allclose(
            sketch.apply(x + y), sketch.apply(x) + sketch.apply(y), atol=1e-7
        )

    @given(pair=vector_pairs())
    @settings(max_examples=25, deadline=None)
    def test_l0_sketch_is_linear(self, pair):
        x, y = pair
        sketch = L0Sketch(DIM, 8, np.random.default_rng(2))
        assert np.array_equal(sketch.apply(x + y), sketch.apply(x) + sketch.apply(y))

    @given(pair=vector_pairs())
    @settings(max_examples=25, deadline=None)
    def test_l0_sampler_is_linear(self, pair):
        x, y = pair
        sampler = L0Sampler(DIM, np.random.default_rng(3), repetitions=2)
        assert np.array_equal(sampler.apply(x + y), sampler.apply(x) + sampler.apply(y))


class TestExactInvariants:
    @given(x=nonneg_vectors)
    @settings(max_examples=40, deadline=None)
    def test_l0_estimate_zero_iff_zero_vector(self, x):
        sketch = L0Sketch(DIM, 8, np.random.default_rng(4))
        estimate = sketch.estimate_l0(sketch.apply(x))
        if np.count_nonzero(x) == 0:
            assert estimate == 0.0
        else:
            assert estimate > 0.0

    @given(x=nonneg_vectors)
    @settings(max_examples=40, deadline=None)
    def test_l0_sampler_returns_support_member_or_fails(self, x):
        sampler = L0Sampler(DIM, np.random.default_rng(5), repetitions=4)
        outcome = sampler.sample(sampler.apply(x))
        if np.count_nonzero(x) == 0:
            assert not outcome.success
        elif outcome.success:
            assert x[outcome.index] != 0
            assert outcome.value == x[outcome.index]

    @given(
        x=int_vectors,
        p=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_lp_norm_helper_nonnegative_and_zero_iff_zero(self, x, p):
        value = lp_norm(x, p)
        assert value >= 0.0
        assert (value == 0.0) == bool(np.count_nonzero(x) == 0)

    @given(x=int_vectors, scale=st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_ams_estimate_scales_quadratically(self, x, scale):
        sketch = AmsSketch(DIM, 12, np.random.default_rng(6))
        base = sketch.estimate_f2(sketch.apply(x))
        scaled = sketch.estimate_f2(sketch.apply(scale * x))
        assert np.isclose(scaled, scale**2 * base, rtol=1e-9, atol=1e-9)
