"""Shared-memory arena + pinned sketch-state buffers (resident-mode base).

Two layers are pinned here:

* :mod:`repro.sketch.shm` — allocation hands out zero-filled views,
  ``attach`` round-trips through the picklable block descriptor, and the
  arena never leaks a segment: ``close()`` (idempotent) and plain garbage
  collection both unlink everything, proven by ``attach`` raising
  ``FileNotFoundError`` afterwards.
* the pinned-buffer mode of the sketches — a sketch whose state is backed
  by a caller-owned buffer (``pin_state_buffer`` / ``pin_table_buffer``)
  must stay *bit-identical* to an unpinned twin through updates, merges,
  resets and re-use, including the ``-0.0`` sign-preservation corner the
  rebinding semantics give for free.
"""

from __future__ import annotations

import gc
import pickle

import numpy as np
import pytest

from repro.sketch import AmsSketch, CountSketch, L0Sampler, L0Sketch
from repro.sketch import shm as shm_mod

SEED = 424242


def make_rng():
    return np.random.default_rng(SEED)


class TestShmArena:
    def test_allocate_zero_filled_and_typed(self):
        with shm_mod.ShmArena() as arena:
            view, block = arena.allocate((3, 4), np.float64)
            assert view.shape == (3, 4)
            assert view.dtype == np.float64
            assert not view.any()
            assert block.shape == (3, 4)
            assert np.dtype(block.dtype) == np.float64
            assert block.nbytes == 3 * 4 * 8

    def test_attach_round_trips_data_through_the_descriptor(self):
        with shm_mod.ShmArena() as arena:
            view, block = arena.allocate((5,), np.int64)
            view[:] = [1, -2, 3, -4, 5]
            # The descriptor is what crosses process boundaries.
            block = pickle.loads(pickle.dumps(block))
            mapped, seg = shm_mod.attach(block)
            try:
                np.testing.assert_array_equal(mapped, view)
                mapped[0] = 99  # same pages, both directions
                assert view[0] == 99
            finally:
                del mapped
                seg.close()

    def test_zero_sized_allocations_are_legal(self):
        with shm_mod.ShmArena() as arena:
            view, block = arena.allocate((0, 7), np.int64)
            assert view.shape == (0, 7)
            mapped, seg = shm_mod.attach(block)
            assert mapped.shape == (0, 7)
            del mapped
            seg.close()

    def test_close_unlinks_every_segment_and_is_idempotent(self):
        arena = shm_mod.ShmArena()
        blocks = [arena.allocate((4,), np.float64)[1] for _ in range(3)]
        arena.close()
        arena.close()  # double close is a no-op
        for block in blocks:
            with pytest.raises(FileNotFoundError):
                shm_mod.attach(block)
        with pytest.raises(RuntimeError):
            arena.allocate((1,), np.float64)

    def test_garbage_collection_backstops_close(self):
        arena = shm_mod.ShmArena()
        _, block = arena.allocate((8,), np.float64)
        del arena
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shm_mod.attach(block)


def linear_sketches():
    rng = make_rng()
    return {
        "ams": AmsSketch.for_accuracy(512, 0.25, rng),
        "l0": L0Sketch.for_accuracy(512, 0.25, np.random.default_rng(SEED + 1)),
        "sampler": L0Sampler(512, np.random.default_rng(SEED + 2), repetitions=4),
    }


def state_shape_of(template, m=3):
    probe = template.empty_copy()
    probe.update_many(np.zeros(1, dtype=np.int64), np.zeros((1, m), dtype=np.int64))
    return probe.state_array().shape, probe.state_array().dtype


class TestPinnedLinearState:
    @pytest.mark.parametrize("family", ["ams", "l0", "sampler"])
    def test_pinned_matches_unpinned_bit_for_bit(self, family):
        template = linear_sketches()[family]
        shape, dtype = state_shape_of(template)
        buf = np.zeros(shape, dtype=dtype)
        pinned, plain = template.empty_copy(), template.empty_copy()
        pinned.pin_state_buffer(buf)
        rng = make_rng()
        for _ in range(4):
            idx = rng.integers(0, 512, size=31)
            vals = rng.integers(-7, 8, size=(31, 3))
            pinned.update_many(idx, vals)
            plain.update_many(idx, vals)
        assert pinned.state is buf  # state lives in the caller's buffer
        assert pinned.state_array().tobytes() == plain.state_array().tobytes()

    @pytest.mark.parametrize("family", ["ams", "l0", "sampler"])
    def test_reset_and_reuse_keeps_the_buffer(self, family):
        template = linear_sketches()[family]
        shape, dtype = state_shape_of(template)
        buf = np.zeros(shape, dtype=dtype)
        pinned, plain = template.empty_copy(), template.empty_copy()
        pinned.pin_state_buffer(buf)
        idx = np.arange(16, dtype=np.int64)
        vals = np.arange(48, dtype=np.int64).reshape(16, 3) - 20
        pinned.update_many(idx, vals)
        pinned.load_state_array(None)  # = mark_shipped's reset half
        assert pinned.state is None
        pinned.update_many(idx, 2 * vals)
        plain.update_many(idx, 2 * vals)
        assert pinned.state is buf
        assert pinned.state_array().tobytes() == plain.state_array().tobytes()

    def test_negative_zero_survives_the_copy_on_first_write(self):
        # Rebinding preserves -0.0 in float states; the pinned copy-assign
        # must too (copy-assignment preserves the sign bit, += would not).
        template = linear_sketches()["ams"]
        shape, dtype = state_shape_of(template)
        assert dtype == np.float64
        pinned, plain = template.empty_copy(), template.empty_copy()
        pinned.pin_state_buffer(np.zeros(shape, dtype=dtype))
        zeros = np.zeros((4, 3), dtype=np.float64)
        idx = np.arange(4, dtype=np.int64)
        pinned.update_many(idx, -zeros)
        plain.update_many(idx, -zeros)
        assert (
            np.signbit(pinned.state_array()).tobytes()
            == np.signbit(plain.state_array()).tobytes()
        )

    def test_merge_into_pinned_and_unpin_copies_out(self):
        template = linear_sketches()["l0"]
        shape, dtype = state_shape_of(template)
        buf = np.zeros(shape, dtype=dtype)
        pinned, plain, other = (
            template.empty_copy(),
            template.empty_copy(),
            template.empty_copy(),
        )
        pinned.pin_state_buffer(buf)
        idx = np.arange(10, dtype=np.int64)
        vals = np.ones((10, 3), dtype=np.int64)
        other.update_many(idx, vals)
        pinned.merge(other)
        plain.merge(other)
        assert pinned.state is buf  # adoption copied into the buffer
        pinned.merge(other)
        plain.merge(other)
        assert pinned.state_array().tobytes() == plain.state_array().tobytes()
        pinned.unpin_state_buffer()
        assert pinned.state is not buf
        assert pinned.state_array().tobytes() == plain.state_array().tobytes()

    def test_empty_copy_of_a_pinned_sketch_is_unpinned(self):
        template = linear_sketches()["ams"]
        shape, dtype = state_shape_of(template)
        buf = np.zeros(shape, dtype=dtype)
        pinned = template.empty_copy()
        pinned.pin_state_buffer(buf)
        clone = pinned.empty_copy()
        clone.update_many(np.zeros(1, dtype=np.int64), np.ones((1, 3), dtype=np.int64))
        assert clone.state is not buf
        assert not buf.any()  # the clone never wrote through the buffer

    def test_mismatched_shapes_raise_instead_of_rebinding(self):
        template = linear_sketches()["ams"]
        shape, dtype = state_shape_of(template, m=3)
        pinned = template.empty_copy()
        pinned.pin_state_buffer(np.zeros(shape, dtype=dtype))
        with pytest.raises(ValueError):
            # m=2 contribution does not fit the m=3 pinned buffer.
            pinned.update_many(
                np.zeros(1, dtype=np.int64), np.zeros((1, 2), dtype=np.int64)
            )


class TestPinnedCountSketchTable:
    def make(self):
        return CountSketch(512, 16, 3, make_rng())

    def test_vector_lifecycle_matches_unpinned(self):
        template = self.make()
        buf = np.zeros((3, 16, 4), dtype=float)
        pinned, plain = template.empty_copy(), template.empty_copy()
        pinned.pin_table_buffer(buf)
        assert pinned.table.ndim == 2  # reserved, not yet adopted
        rng = make_rng()
        idx = rng.integers(0, 512, size=40)
        vals = rng.integers(-5, 6, size=(40, 4))
        pinned.update_many(idx, vals)
        plain.update_many(idx, vals)
        assert pinned.table is buf  # widening adopted the buffer
        assert pinned.table.tobytes() == plain.table.tobytes()
        # Reset drops to the historical 2-D empty shape, re-use re-adopts.
        pinned.load_state_array(None)
        plain.load_state_array(None)
        assert pinned.table.ndim == 2
        pinned.update_many(idx, vals)
        plain.update_many(idx, vals)
        assert pinned.table is buf
        assert pinned.table.tobytes() == plain.table.tobytes()

    def test_merge_adoption_lands_in_the_buffer(self):
        template = self.make()
        buf = np.zeros((3, 16, 4), dtype=float)
        pinned, plain, other = (
            template.empty_copy(),
            template.empty_copy(),
            template.empty_copy(),
        )
        pinned.pin_table_buffer(buf)
        other.update_many(
            np.arange(8, dtype=np.int64), np.ones((8, 4), dtype=np.int64)
        )
        pinned.merge(other)
        plain.merge(other)
        assert pinned.table is buf
        assert pinned.table.tobytes() == plain.table.tobytes()
