"""Unit tests for the linear l_0 (distinct elements) sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.l0_sketch import L0Sketch


class TestConstruction:
    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            L0Sketch(0, 16, rng)
        with pytest.raises(ValueError):
            L0Sketch(16, 1, rng)
        with pytest.raises(ValueError):
            L0Sketch.for_accuracy(16, 1.5, rng)

    def test_matrix_shape(self, rng):
        sketch = L0Sketch(100, 32, rng)
        assert sketch.matrix.shape == (sketch.levels * 32, 100)

    def test_level_zero_covers_all_coordinates(self, rng):
        sketch = L0Sketch(50, 16, rng)
        level0 = sketch.matrix[: sketch.k]
        # Every coordinate appears in exactly one bucket at level 0.
        assert np.all(np.count_nonzero(level0, axis=0) == 1)

    def test_levels_are_nested(self, rng):
        sketch = L0Sketch(200, 16, rng)
        support_per_level = [
            set(np.flatnonzero(np.count_nonzero(
                sketch.matrix[level * sketch.k:(level + 1) * sketch.k], axis=0)))
            for level in range(sketch.levels)
        ]
        for shallow, deep in zip(support_per_level, support_per_level[1:]):
            assert deep.issubset(shallow)


class TestEstimation:
    def test_zero_vector(self, rng):
        sketch = L0Sketch(64, 16, rng)
        assert sketch.estimate_l0(sketch.apply(np.zeros(64, dtype=np.int64))) == 0.0

    def test_single_nonzero(self, rng):
        sketch = L0Sketch(64, 32, rng)
        x = np.zeros(64, dtype=np.int64)
        x[10] = 5
        assert sketch.estimate_l0(sketch.apply(x)) == pytest.approx(1.0, abs=0.5)

    @pytest.mark.parametrize("support_size", [8, 32, 100])
    def test_accuracy_on_sparse_vectors(self, rng, support_size):
        n = 256
        sketch = L0Sketch.for_accuracy(n, 0.25, rng)
        x = np.zeros(n, dtype=np.int64)
        positions = rng.choice(n, size=support_size, replace=False)
        x[positions] = rng.integers(1, 10, size=support_size)
        estimate = sketch.estimate_l0(sketch.apply(x))
        assert estimate == pytest.approx(support_size, rel=0.35)

    def test_dense_vector_does_not_crash(self, rng):
        n = 128
        sketch = L0Sketch(n, 16, rng)
        x = np.ones(n, dtype=np.int64)
        estimate = sketch.estimate_l0(sketch.apply(x))
        assert estimate > n / 4

    def test_wrong_length_rejected(self, rng):
        sketch = L0Sketch(64, 16, rng)
        with pytest.raises(ValueError):
            sketch.estimate_l0(np.zeros(5))

    def test_row_estimation(self, rng):
        n = 128
        sketch = L0Sketch.for_accuracy(n, 0.3, rng)
        matrix = np.zeros((4, n), dtype=np.int64)
        sizes = [0, 5, 20, 60]
        for row, size in enumerate(sizes):
            positions = rng.choice(n, size=size, replace=False)
            matrix[row, positions] = 1
        sketched_rows = matrix @ sketch.matrix.T
        estimates = sketch.estimate_rows_pp(sketched_rows)
        assert estimates[0] == 0.0
        for estimate, size in zip(estimates[1:], sizes[1:]):
            assert estimate == pytest.approx(size, rel=0.45)

    def test_row_estimation_rejects_wrong_shape(self, rng):
        sketch = L0Sketch(64, 16, rng)
        with pytest.raises(ValueError):
            sketch.estimate_rows_pp(np.zeros((2, 3)))

    def test_interface_parity_with_lp_sketch(self, rng):
        sketch = L0Sketch(32, 16, rng)
        x = np.zeros(32, dtype=np.int64)
        x[:7] = 1
        sketched = sketch.apply(x)
        assert sketch.estimate_norm(sketched) == sketch.estimate_l0(sketched)
        assert sketch.estimate_norm_pp(sketched) == sketch.estimate_l0(sketched)
