"""Unit tests for the linear l_p sketch (p in (0, 2]) and the factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.l0_sketch import L0Sketch
from repro.sketch.lp_sketch import LpSketch, lp_norm, make_lp_sketch


class TestLpNormHelper:
    def test_l0_counts_nonzeros(self):
        assert lp_norm(np.array([0.0, 2.0, 0.0, -1.0]), 0) == 2

    def test_l1(self):
        assert lp_norm(np.array([1.0, -2.0, 3.0]), 1) == 6.0

    def test_l2_squared(self):
        assert lp_norm(np.array([3.0, 4.0]), 2) == 25.0


class TestLpSketch:
    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            LpSketch(10, 0.0, 8, rng)
        with pytest.raises(ValueError):
            LpSketch(10, 2.5, 8, rng)
        with pytest.raises(ValueError):
            LpSketch(0, 1.0, 8, rng)
        with pytest.raises(ValueError):
            LpSketch(10, 1.0, 0, rng)
        with pytest.raises(ValueError):
            LpSketch.for_accuracy(10, 1.0, 0.0, rng)

    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5, 2.0])
    def test_norm_estimation_reasonable(self, rng, p):
        x = rng.integers(0, 6, size=128).astype(float)
        truth = np.sum(np.abs(x) ** p) ** (1.0 / p)
        sketch = LpSketch.for_accuracy(128, p, 0.2, rng)
        estimate = sketch.estimate_norm(sketch.apply(x))
        assert estimate == pytest.approx(truth, rel=0.4)

    def test_estimate_norm_pp_is_pth_power(self, rng):
        x = rng.normal(size=64)
        sketch = LpSketch(64, 1.0, 128, rng)
        sketched = sketch.apply(x)
        assert sketch.estimate_norm_pp(sketched) == pytest.approx(
            sketch.estimate_norm(sketched) ** 1.0
        )

    def test_row_estimation_shape_and_accuracy(self, rng):
        matrix = rng.integers(0, 3, size=(10, 96)).astype(float)
        sketch = LpSketch.for_accuracy(96, 2.0, 0.25, rng)
        sketched_rows = matrix @ sketch.matrix.T
        estimates = sketch.estimate_rows(sketched_rows)
        truths = np.sqrt(np.sum(matrix**2, axis=1))
        assert estimates.shape == (10,)
        assert np.allclose(estimates, truths, rtol=0.5)

    def test_row_estimation_rejects_wrong_shape(self, rng):
        sketch = LpSketch(16, 1.0, 8, rng)
        with pytest.raises(ValueError):
            sketch.estimate_rows(np.zeros((3, 9)))

    def test_zero_vector(self, rng):
        sketch = LpSketch(32, 1.0, 16, rng)
        assert sketch.estimate_norm(sketch.apply(np.zeros(32))) == pytest.approx(0.0)


class TestFactory:
    def test_p_zero_returns_l0_sketch(self, rng):
        sketch = make_lp_sketch(64, 0.0, 0.3, rng)
        assert isinstance(sketch, L0Sketch)

    def test_positive_p_returns_lp_sketch(self, rng):
        sketch = make_lp_sketch(64, 1.0, 0.3, rng)
        assert isinstance(sketch, LpSketch)

    def test_factory_objects_share_interface(self, rng):
        for p in (0.0, 1.0, 2.0):
            sketch = make_lp_sketch(32, p, 0.4, rng)
            assert hasattr(sketch, "matrix")
            assert hasattr(sketch, "apply")
            assert hasattr(sketch, "estimate_rows_pp")
