"""Unit tests for the exact ground-truth statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import stats


@pytest.fixture
def simple_product() -> np.ndarray:
    return np.array([[0, 2, 0], [1, 0, 3], [0, 0, 0]], dtype=np.int64)


class TestProduct:
    def test_matches_numpy(self, rng):
        a = rng.integers(0, 3, size=(10, 8))
        b = rng.integers(0, 3, size=(8, 12))
        assert np.array_equal(stats.product(a, b), a @ b)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stats.product(np.ones((2, 3)), np.ones((4, 2)))


class TestNorms:
    def test_l0(self, simple_product):
        assert stats.exact_lp_pp(simple_product, 0) == 3

    def test_l1(self, simple_product):
        assert stats.exact_lp_pp(simple_product, 1) == 6

    def test_l2_squared(self, simple_product):
        assert stats.exact_lp_pp(simple_product, 2) == 4 + 1 + 9

    def test_norm_vs_pp_consistency(self, simple_product):
        assert stats.exact_lp_norm(simple_product, 2) == pytest.approx(np.sqrt(14))
        assert stats.exact_lp_norm(simple_product, 0) == 3

    def test_linf(self, simple_product):
        assert stats.exact_linf(simple_product) == 3

    def test_linf_uses_absolute_values(self):
        assert stats.exact_linf(np.array([[-5, 2]])) == 5

    def test_linf_empty(self):
        assert stats.exact_linf(np.zeros((0, 0))) == 0.0


class TestSupportAndHeavyHitters:
    def test_support(self, simple_product):
        assert set(stats.exact_support(simple_product)) == {(0, 1), (1, 0), (1, 2)}

    def test_heavy_hitters_l1(self, simple_product):
        # ||C||_1 = 6; phi = 0.5 -> threshold 3 -> only the entry with value 3.
        assert stats.exact_heavy_hitters(simple_product, 0.5, p=1) == {(1, 2)}

    def test_heavy_hitters_all_when_phi_small(self, simple_product):
        hh = stats.exact_heavy_hitters(simple_product, 1e-6, p=1)
        assert hh == set(stats.exact_support(simple_product))

    def test_heavy_hitters_empty_matrix(self):
        assert stats.exact_heavy_hitters(np.zeros((3, 3)), 0.5, p=1) == set()

    def test_heavy_hitters_invalid_phi(self, simple_product):
        with pytest.raises(ValueError):
            stats.exact_heavy_hitters(simple_product, 0.0, p=1)

    def test_heavy_hitters_p2(self, simple_product):
        # ||C||_2^2 = 14; phi = 0.6 -> threshold 8.4 -> only 3^2 = 9 qualifies.
        assert stats.exact_heavy_hitters(simple_product, 0.6, p=2) == {(1, 2)}
