"""Unit tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import generators


class TestRandomBinaryPair:
    def test_shapes_and_binarity(self):
        a, b = generators.random_binary_pair(32, density=0.1, seed=0)
        assert a.shape == (32, 32)
        assert b.shape == (32, 32)
        assert set(np.unique(a)).issubset({0, 1})
        assert set(np.unique(b)).issubset({0, 1})

    def test_density_respected_roughly(self):
        a, b = generators.random_binary_pair(128, density=0.2, seed=1)
        assert a.mean() == pytest.approx(0.2, abs=0.05)
        assert b.mean() == pytest.approx(0.2, abs=0.05)

    def test_seed_reproducibility(self):
        first = generators.random_binary_pair(16, seed=5)
        second = generators.random_binary_pair(16, seed=5)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            generators.random_binary_pair(16, density=1.5)


class TestZipfianSetsPair:
    def test_binary_and_shapes(self):
        a, b = generators.zipfian_sets_pair(48, seed=2)
        assert a.shape == (48, 48)
        assert set(np.unique(a)).issubset({0, 1})
        assert set(np.unique(b)).issubset({0, 1})

    def test_skewed_row_sizes(self):
        a, _ = generators.zipfian_sets_pair(64, seed=3)
        sizes = a.sum(axis=1)
        assert sizes.max() >= 4 * max(np.median(sizes), 1)

    def test_every_row_nonempty(self):
        a, b = generators.zipfian_sets_pair(32, seed=4)
        assert np.all(a.sum(axis=1) >= 1)
        assert np.all(b.sum(axis=0) >= 1)


class TestPlantedWorkloads:
    def test_heavy_hitters_are_planted(self):
        a, b, planted = generators.planted_heavy_hitters_pair(
            64, num_heavy=3, heavy_overlap=20, seed=5
        )
        c = a @ b
        background = np.median(c)
        for row, col in planted:
            assert c[row, col] >= 20
            assert c[row, col] > 3 * max(background, 1)

    def test_max_overlap_pair_is_argmax(self):
        a, b, (row, col) = generators.planted_max_overlap_pair(64, overlap=24, seed=6)
        c = a @ b
        assert c[row, col] == c.max()

    def test_planted_count_matches(self):
        _, _, planted = generators.planted_heavy_hitters_pair(48, num_heavy=5, seed=7)
        assert len(planted) == 5


class TestIntegerAndRectangular:
    def test_integer_entries_bounded(self):
        a, b = generators.integer_matrix_pair(32, max_value=7, density=0.3, seed=8)
        assert a.max() <= 7
        assert b.max() <= 7
        assert a.min() >= 0

    def test_planted_value_creates_large_product_entry(self):
        a, b = generators.integer_matrix_pair(32, planted_value=9, seed=9)
        c = a @ b
        assert c.max() >= 9 * 9 * 32 * 0.9

    def test_rectangular_shapes(self):
        a, b = generators.rectangular_binary_pair(20, 50, 30, density=0.1, seed=10)
        assert a.shape == (20, 50)
        assert b.shape == (50, 30)

    def test_rectangular_invalid_density(self):
        with pytest.raises(ValueError):
            generators.rectangular_binary_pair(4, 4, 4, density=-0.1)

    def test_generator_accepts_generator_seed(self):
        rng = np.random.default_rng(11)
        a, b = generators.random_binary_pair(8, seed=rng)
        assert a.shape == (8, 8)
