"""Unit tests for the set interpretation of binary matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import setview


class TestRowAndColumnSets:
    def test_row_sets(self):
        a = np.array([[1, 0, 1], [0, 0, 0]])
        sets = setview.row_sets(a)
        assert list(sets[0]) == [0, 2]
        assert list(sets[1]) == []

    def test_column_sets(self):
        b = np.array([[1, 0], [1, 1], [0, 0]])
        sets = setview.column_sets(b)
        assert list(sets[0]) == [0, 1]
        assert list(sets[1]) == [1]

    def test_intersection_sizes_equal_product_entries(self, rng):
        a = (rng.uniform(size=(12, 20)) < 0.3).astype(int)
        b = (rng.uniform(size=(20, 15)) < 0.3).astype(int)
        c = a @ b
        rows = setview.row_sets(a)
        cols = setview.column_sets(b)
        for i in (0, 5, 11):
            for j in (0, 7, 14):
                assert len(np.intersect1d(rows[i], cols[j])) == c[i, j]


class TestSetsToMatrices:
    def test_round_trip_rows(self):
        sets = [{0, 3}, {1}, set()]
        matrix = setview.sets_to_row_matrix(sets, universe=5)
        assert matrix.shape == (3, 5)
        recovered = setview.row_sets(matrix)
        assert [set(r.tolist()) for r in recovered] == [set(s) for s in sets]

    def test_column_matrix_is_transpose(self):
        sets = [{0}, {1, 2}]
        row_form = setview.sets_to_row_matrix(sets, universe=3)
        col_form = setview.sets_to_column_matrix(sets, universe=3)
        assert np.array_equal(col_form, row_form.T)

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            setview.sets_to_row_matrix([{5}], universe=3)


class TestItemIncidence:
    def test_counts(self):
        a = np.array([[1, 1, 0], [1, 0, 0]])
        b = np.array([[1, 0], [1, 1], [0, 0]])
        u, v = setview.item_incidence(a, b)
        assert list(u) == [2, 1, 0]
        assert list(v) == [1, 2, 0]
