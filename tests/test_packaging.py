"""Packaging invariants: version single-sourcing, typing marker, deprecations."""

from __future__ import annotations

import importlib
import pathlib
import re
import sys

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestVersionSingleSourcing:
    def test_version_matches_pyproject(self):
        """``repro.__version__`` is read from package metadata / pyproject."""
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        match = re.search(r'^version\s*=\s*"([^"]+)"', pyproject, re.MULTILINE)
        assert match is not None
        assert repro.__version__ == match.group(1)

    def test_no_setup_py_duplicate(self):
        """The drift-prone setup.py shim is gone; pyproject is authoritative."""
        assert not (REPO_ROOT / "setup.py").exists()


class TestTypingMarker:
    def test_py_typed_marker_ships_with_the_package(self):
        package_dir = pathlib.Path(repro.__file__).parent
        assert (package_dir / "py.typed").is_file()


class TestDeprecations:
    def test_multiparty_protocols_module_warns(self):
        """The old protocol module is a deprecated alias shim."""
        sys.modules.pop("repro.multiparty.protocols", None)
        with pytest.warns(DeprecationWarning, match="repro.engine"):
            module = importlib.import_module("repro.multiparty.protocols")
        # The historical names still resolve to the engine implementations.
        from repro.engine import StarLpNormProtocol

        assert module.MultipartyLpNormProtocol is StarLpNormProtocol
