"""Pinned pre-unification transcripts: the engine refactor's safety net.

Before the two-party and k-site stacks were collapsed onto the
topology-agnostic engine, every protocol below was executed once under the
seeds used here and its transcript recorded — round count, total bits, and
the output value.  The unified engine must reproduce those transcripts
*exactly*: the two-party facades run the engine with a single site, and the
k = 2 cluster runs exercise the very same bodies, so any drift in message
scheduling, bit accounting, or randomness consumption shows up here as a
hard failure rather than a silent behavior change.

(The values are environment-deterministic: fixed seeds, NumPy Generator
streams, and integer bit accounting.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterEstimator, MatrixProductEstimator
from repro.core.heavy_hitters_binary import BinaryHeavyHittersProtocol
from repro.core.heavy_hitters_general import GeneralHeavyHittersProtocol
from repro.core.l0_sampling import L0SamplingProtocol
from repro.core.l1_exact import ExactL1Protocol, L1SamplingProtocol
from repro.core.linf_binary import KappaApproxLinfProtocol, TwoPlusEpsilonLinfProtocol
from repro.core.linf_general import GeneralMatrixLinfProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.matrices import generators, random_binary_pair


@pytest.fixture(scope="module")
def binary_pair():
    rng = np.random.default_rng(12345)
    n = 64
    a = (rng.uniform(size=(n, n)) < 0.1).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < 0.1).astype(np.int64)
    return a, b


@pytest.fixture(scope="module")
def integer_pair():
    return generators.integer_matrix_pair(48, density=0.1, planted_value=8, seed=11)


@pytest.fixture(scope="module")
def workload():
    return random_binary_pair(56, density=0.12, seed=99)


def _assert_transcript(result, rounds, total_bits, value=None):
    assert result.cost.rounds == rounds
    assert result.cost.total_bits == total_bits
    if value is not None:
        assert result.value == pytest.approx(value, rel=1e-12)


class TestTwoPartyFacadesMatchPreRefactorTranscripts:
    """core/* classes delegate to the engine with identical transcripts."""

    @pytest.mark.parametrize(
        "p, total_bits, value",
        [
            (0.0, 395380, 1743.0209828329537),
            (1.0, 118766, 2220.8886702528257),
            (2.0, 118766, 3337.448986444418),
        ],
    )
    def test_lp_norm(self, binary_pair, p, total_bits, value):
        a, b = binary_pair
        result = MatrixProductEstimator(a, b, seed=7).lp_norm(p, 0.3)
        _assert_transcript(result, 2, total_bits, value)

    def test_l0_sample(self, binary_pair):
        a, b = binary_pair
        result = MatrixProductEstimator(a, b, seed=3).l0_sample(0.3)
        _assert_transcript(result, 1, 1669120)
        assert (result.value.row, result.value.col) == (9, 1)

    def test_heavy_hitters_general(self, integer_pair):
        a, b = integer_pair
        result = MatrixProductEstimator(a, b, seed=9).heavy_hitters(0.05, 0.03)
        _assert_transcript(result, 5, 8858)
        assert result.value.pairs == {(15, 5)}

    def test_heavy_hitters_general_p2(self, integer_pair):
        a, b = integer_pair
        result = MatrixProductEstimator(a, b, seed=5).heavy_hitters(0.3, 0.2, p=2.0)
        _assert_transcript(result, 6, 220164)
        assert result.value.pairs == {(15, 5)}

    def test_protocol_level_transcripts(self, workload, integer_pair):
        wa, wb = workload
        ga, gb = integer_pair
        _assert_transcript(LpNormProtocol(0.0, 0.4, seed=1).run(wa, wb), 2, 257936, 1758.692272923915)
        _assert_transcript(LpNormProtocol(2.0, 0.4, seed=1).run(wa, wb), 2, 78106, 4738.815788539778)
        _assert_transcript(L0SamplingProtocol(0.4, seed=1).run(wa, wb), 1, 971264)
        _assert_transcript(ExactL1Protocol(seed=1).run(wa, wb), 1, 280, 2595.0)
        _assert_transcript(L1SamplingProtocol(seed=1).run(wa, wb), 1, 616)
        _assert_transcript(TwoPlusEpsilonLinfProtocol(0.3, seed=1).run(wa, wb), 3, 10212, 4.0)
        _assert_transcript(KappaApproxLinfProtocol(8, seed=1).run(wa, wb), 3, 6179, 4.0)
        _assert_transcript(GeneralMatrixLinfProtocol(4, seed=1).run(ga, gb), 1, 221184, 3469.9471657841327)
        _assert_transcript(GeneralHeavyHittersProtocol(0.1, 0.05, seed=1).run(ga, gb), 5, 8724)
        _assert_transcript(BinaryHeavyHittersProtocol(0.1, 0.05, seed=1).run(wa, wb), 6, 238106)


class TestClusterRunsMatchPreRefactorTranscripts:
    """k = 2 cluster transcripts are unchanged by the engine move."""

    @pytest.mark.parametrize(
        "p, total_bits, value",
        [
            (0.0, 782720, 1754.0139199323316),
            (1.0, 229626, 2229.6722021720075),
            (2.0, 229492, 3334.2810239750106),
        ],
    )
    def test_lp_norm_k2(self, binary_pair, p, total_bits, value):
        a, b = binary_pair
        result = ClusterEstimator.from_matrix(a, b, 2, seed=7).lp_norm(p, 0.3)
        _assert_transcript(result, 2, total_bits, value)

    def test_l0_sample_k2(self, binary_pair):
        a, b = binary_pair
        result = ClusterEstimator.from_matrix(a, b, 2, seed=3).l0_sample(0.3)
        _assert_transcript(result, 1, 3338240)
        assert (result.value.row, result.value.col) == (23, 14)

    def test_heavy_hitters_k2(self, integer_pair):
        a, b = integer_pair
        result = ClusterEstimator.from_matrix(a, b, 2, seed=9).heavy_hitters(0.05, 0.03)
        _assert_transcript(result, 5, 12643)
        assert result.value.pairs == {(15, 5)}

    def test_heavy_hitters_k2_p2(self, integer_pair):
        a, b = integer_pair
        result = ClusterEstimator.from_matrix(a, b, 2, seed=5).heavy_hitters(0.3, 0.2, p=2.0)
        _assert_transcript(result, 6, 372240)
        assert result.value.pairs == {(15, 5)}


class TestTwoPartyIsTheSingleSiteCluster:
    """The two-party view is bit-for-bit the k = 1 cluster run."""

    def test_k1_cluster_equals_two_party(self, binary_pair):
        a, b = binary_pair
        for query in ("join_size", "l0_sample"):
            two_party = getattr(MatrixProductEstimator(a, b, seed=13), query)(0.3)
            cluster = getattr(ClusterEstimator([a], b, seed=13), query)(0.3)
            assert cluster.cost.rounds == two_party.cost.rounds
            assert cluster.cost.total_bits == two_party.cost.total_bits
            assert cluster.cost.breakdown == two_party.cost.breakdown

    def test_new_cluster_queries_match_two_party_at_k1(self, binary_pair):
        """Queries newly lifted to the cluster (linf, l1) agree at k = 1."""
        a, b = binary_pair
        for query in ("natural_join_size", "l1_sample", "linf"):
            two_party = getattr(MatrixProductEstimator(a, b, seed=21), query)()
            cluster = getattr(ClusterEstimator([a], b, seed=21), query)()
            assert cluster.cost.total_bits == two_party.cost.total_bits
            assert cluster.cost.rounds == two_party.cost.rounds

    def test_linf_kappa_cluster_scales(self, binary_pair):
        """linf_kappa, newly available on clusters, stays correct at k > 1."""
        a, b = binary_pair
        c = a @ b
        result = ClusterEstimator.from_matrix(a, b, 4, seed=2).linf_kappa(4)
        assert result.value >= 0.0
        assert result.details["num_sites"] == 4
        # A kappa-approximation with generous slack for the small instance.
        assert result.value <= 4 * c.max() * 4
