"""Streaming sessions over hash-mode (universe-independent) monitor sketches.

``sketch_mode="hash"`` swaps the monitoring sketches' randomness source —
lazy hashes instead of per-coordinate draws — without touching the delta
discipline, so the streamed == one-shot equivalence and the live-query
machinery must hold exactly as in dense mode (the default mode's
byte-compatibility is pinned in ``test_streaming.py``; this file pins the
new mode's internal consistency).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.multiparty import ClusterEstimator


@pytest.fixture(scope="module")
def binary_pair():
    rng = np.random.default_rng(555)
    n = 40
    a = (rng.uniform(size=(n, n)) < 0.15).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < 0.15).astype(np.int64)
    return a, b


def test_streamed_summaries_equal_one_shot_in_hash_mode(binary_pair):
    a, b = binary_pair
    batch = ClusterEstimator.from_matrix(a, b, 2, seed=71)
    session = batch.stream(sketch_mode="hash")
    bounds = [0, 16, 29, a.shape[0]]
    for start, stop in zip(bounds, bounds[1:]):
        for index, site in enumerate(session.sites):
            lo = max(site.row_offset, start)
            hi = min(site.row_offset + site.num_rows, stop)
            if lo < hi:
                rows = np.arange(lo, hi)
                session.ingest(index, rows, a[rows])
        session.end_epoch()
    session.sync()
    for family in session.merged:
        one_shot = session.templates[family].empty_copy()
        one_shot.update_many(np.arange(a.shape[0]), a.astype(np.int64))
        assert session.merged[family].state_array().tobytes() == (
            one_shot.state_array().tobytes()
        )
    assert session.sketch_mode == "hash"


def test_hash_mode_live_estimates_are_sane(binary_pair):
    a, b = binary_pair
    session = ClusterEstimator.from_matrix(a, b, 2, seed=73).stream(
        preload=True, sketch_mode="hash"
    )
    c = (a @ b).astype(float)
    assert session.live_lp_norm(2.0) == pytest.approx(float((c**2).sum()), rel=0.5)
    assert session.live_l0() == pytest.approx(np.count_nonzero(c), rel=0.5)
    outcome = session.live_l0_sample()
    assert outcome.row is not None
    assert (a @ b)[outcome.row, outcome.col] != 0


def test_invalid_sketch_mode_rejected(binary_pair):
    a, b = binary_pair
    with pytest.raises(ValueError, match="sketch_mode"):
        ClusterEstimator.from_matrix(a, b, 2, seed=79).stream(sketch_mode="turbo")
