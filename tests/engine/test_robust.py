"""Property-based tests for Byzantine-robust aggregation (`engine.robust`).

The contract pinned here, for *every* generated input (hypothesis):

* robust totals are **permutation-invariant** — contributions are a set,
  not a sequence, once any trimming is requested;
* at ``f = 0`` the trimmed-mean total and state merge reduce to the plain
  **in-order sum, bit for bit** — robustness off is exactly the old path;
* with at most ``f`` contributions corrupted by any seeded adversary, the
  robust total stays within :func:`robust_error_bound` of the clean sum
  (the ``k * (max - min)`` bound charted by experiment e17), while the
  plain sum has no such guarantee;
* :class:`FaultPlan` is deterministic: one seed, one attack transcript.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.engine.robust import (
    ADVERSARY_KINDS,
    Adversary,
    FaultPlan,
    RobustPolicy,
    STRATEGIES,
    median_of_sites,
    robust_error_bound,
    robust_merge_states,
    robust_total,
    trimmed_mean,
)

values_st = st.floats(min_value=-100.0, max_value=100.0)


@st.composite
def robust_cases(draw):
    """(contributions, policy) with k > 2f, both strategies."""
    k = draw(st.integers(min_value=3, max_value=9))
    f = draw(st.integers(min_value=1, max_value=(k - 1) // 2))
    values = draw(st.lists(values_st, min_size=k, max_size=k))
    strategy = draw(st.sampled_from(STRATEGIES))
    return values, RobustPolicy(f, strategy=strategy)


@st.composite
def corruption_cases(draw):
    """(contributions, policy, corrupt site names, seeded plan)."""
    values, policy = draw(robust_cases())
    count = draw(st.integers(min_value=0, max_value=policy.f))
    sites = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(values) - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    kind = draw(st.sampled_from(ADVERSARY_KINDS))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    plan = FaultPlan({f"site-{i}": kind for i in sites}, seed=seed)
    return values, policy, sites, plan


def _plain_sum(values):
    total = float(values[0])
    for value in values[1:]:
        total += float(value)
    return total


class TestPermutationInvariance:
    @given(case=robust_cases(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=50, deadline=None)
    def test_total_is_permutation_invariant(self, case, seed):
        values, policy = case
        permuted = list(np.random.default_rng(seed).permutation(values))
        assert robust_total(values, policy) == robust_total(permuted, policy)

    @given(case=robust_cases(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_state_merge_is_permutation_invariant(self, case, seed):
        values, policy = case
        states = [np.array([v, -v, v / 2]) for v in values]
        order = np.random.default_rng(seed).permutation(len(states))
        np.testing.assert_array_equal(
            robust_merge_states(states, policy),
            robust_merge_states([states[i] for i in order], policy),
        )


class TestPlainReduction:
    @given(values=st.lists(values_st, min_size=1, max_size=9))
    @settings(max_examples=50, deadline=None)
    def test_f0_total_is_the_in_order_sum_bit_exact(self, values):
        assert robust_total(values, RobustPolicy(0)) == _plain_sum(values)
        assert robust_total(values, 0) == _plain_sum(values)

    @given(
        states=hnp.arrays(
            dtype=np.float64, shape=(4, 6), elements=values_st
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_f0_state_merge_is_the_in_order_sum_bit_exact(self, states):
        expected = states[0].copy()
        for state in states[1:]:
            expected += state
        np.testing.assert_array_equal(
            robust_merge_states(list(states), RobustPolicy(0)), expected
        )


class TestErrorBound:
    @given(case=corruption_cases())
    @settings(max_examples=100, deadline=None)
    def test_scalar_total_within_bound_under_corruption(self, case):
        values, policy, sites, plan = case
        corrupted = [
            plan.corrupt(f"site-{i}", value) for i, value in enumerate(values)
        ]
        clean = _plain_sum(values)
        bound = robust_error_bound(values, policy.f)
        slack = 1e-9 * (1.0 + abs(clean) + bound)
        assert abs(robust_total(corrupted, policy) - clean) <= bound + slack

    @given(
        states=hnp.arrays(dtype=np.float64, shape=(5, 4), elements=values_st),
        kind=st.sampled_from(ADVERSARY_KINDS),
        site=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_vector_merge_within_bound_under_corruption(
        self, states, kind, site, seed
    ):
        plan = FaultPlan({f"site-{site}": kind}, seed=seed)
        corrupted = [
            plan.corrupt(f"site-{i}", state) for i, state in enumerate(states)
        ]
        policy = RobustPolicy(1)
        clean = states[0].copy()
        for state in states[1:]:
            clean += state
        bound = np.asarray(robust_error_bound(list(states), policy.f))
        slack = 1e-9 * (1.0 + np.abs(clean) + bound)
        deviation = np.abs(robust_merge_states(corrupted, policy) - clean)
        assert np.all(deviation <= bound + slack)

    @given(case=robust_cases())
    @settings(max_examples=50, deadline=None)
    def test_bound_is_k_times_the_honest_range(self, case):
        values, policy = case
        expected = len(values) * (max(values) - min(values))
        assert robust_error_bound(values, policy.f) == pytest.approx(expected)


class TestValidation:
    def test_trimmed_mean_needs_more_than_2f_values(self):
        with pytest.raises(ValueError, match="needs more than"):
            trimmed_mean([1.0, 2.0], 1)
        assert trimmed_mean([1.0, 2.0, 30.0], 1) == 2.0

    def test_median_of_sites_is_the_coordinatewise_median(self):
        np.testing.assert_array_equal(
            median_of_sites([np.array([1.0, 9.0]), np.array([2.0, 8.0]),
                             np.array([100.0, -100.0])]),
            np.array([2.0, 8.0]),
        )

    def test_policy_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="f must be >= 0"):
            RobustPolicy(-1)
        with pytest.raises(ValueError, match="strategy"):
            RobustPolicy(1, strategy="mode")
        with pytest.raises(ValueError, match="contributing sites"):
            RobustPolicy(2).check_sites(4)
        RobustPolicy(2).check_sites(5)  # k > 2f: fine

    def test_coerce_accepts_bare_f_and_none(self):
        assert RobustPolicy.coerce(None) is None
        assert RobustPolicy.coerce(2) == RobustPolicy(2)
        policy = RobustPolicy(1, strategy="median")
        assert RobustPolicy.coerce(policy) is policy

    def test_mismatched_state_shapes_are_rejected(self):
        with pytest.raises(ValueError, match="differ in shape"):
            robust_merge_states(
                [np.zeros(3), np.zeros(4), np.zeros(3)], RobustPolicy(1)
            )


class TestFaultPlan:
    def test_same_seed_same_attack(self):
        value = np.arange(6, dtype=float)
        first = FaultPlan({"site-0": "garbage"}, seed=3)
        second = FaultPlan({"site-0": "garbage"}, seed=3)
        np.testing.assert_array_equal(
            first.corrupt("site-0", value, round_index=2),
            second.corrupt("site-0", value, round_index=2),
        )
        other = FaultPlan({"site-0": "garbage"}, seed=4)
        assert not np.array_equal(
            first.corrupt("site-0", value, round_index=2),
            other.corrupt("site-0", value, round_index=2),
        )

    def test_honest_sites_pass_through_untouched(self):
        plan = FaultPlan({"site-0": "flip-sign"})
        assert plan.corrupt("site-1", 5.0) == 5.0
        assert plan.corrupt("site-0", 5.0) == -5.0

    def test_scale_and_factor_spec(self):
        plan = FaultPlan({"site-0": ("scale", 10.0)})
        assert plan.corrupt("site-0", 3.0) == 30.0

    def test_stale_replay_remembers_the_last_honest_value(self):
        plan = FaultPlan({"site-0": "stale-replay"})
        assert plan.corrupt("site-0", 7.0, round_index=0) == 0.0
        assert plan.corrupt("site-0", 9.0, round_index=1) == 7.0
        plan.reset()
        assert plan.corrupt("site-0", 11.0, round_index=2) == 0.0

    def test_channels_keep_independent_replay_history(self):
        plan = FaultPlan({"site-0": "stale-replay"})
        plan.corrupt("site-0", 1.0, channel="ams")
        assert plan.corrupt("site-0", 2.0, channel="l0") == 0.0
        assert plan.corrupt("site-0", 3.0, channel="ams") == 1.0

    def test_describe_and_bad_specs(self):
        plan = FaultPlan({"b": "scale", "a": Adversary("flip-sign")})
        assert plan.describe() == {"a": "flip-sign", "b": "scale"}
        assert plan.corrupt_sites == frozenset({"a", "b"})
        with pytest.raises(ValueError, match="adversary kind"):
            FaultPlan({"site-0": "gaslight"})
        with pytest.raises(TypeError, match="adversary spec"):
            FaultPlan({"site-0": 3.5})
