"""Runtime pool lifecycle: sizing, warm-up, resident workers, shm hygiene.

The invariance suite (``test_runtime.py``) pins *what* the executors
compute; this module pins how the pools behave as resources:

* worker-count resolution (CPU affinity by default, ``REPRO_WORKERS``
  overrides),
* pool warm-up — eager under ``persistent=True``, and the sub-concurrent
  ``map`` fallback still creates the pool on its way through,
* context-manager reuse across runs and ``close()`` idempotency,
* ``map_async`` dispatch/join semantics,
* resident pools: state pinned per slot, FIFO results, crash surfacing
  (``WorkerCrashedError``), idempotent shutdown,
* shared-memory hygiene: every segment a runtime or a resident streaming
  session allocates is unlinked on close — including after a worker crash
  — proven by ``attach`` raising ``FileNotFoundError``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine.runtime import (
    Runtime,
    WorkerCrashedError,
    _default_workers,
)
from repro.engine.streaming import StreamingSession
from repro.sketch import shm as shm_mod


# --------------------------------------------------------------- module-level
# Functions submitted to process pools must be importable.

def _double(x):
    return 2 * x


def _array_sum(arr):
    return float(arr.sum())


def _init_counter(start):
    return {"count": start}


def _bump(state, by):
    state["count"] += by
    return state["count"]


def _read(state):
    return state["count"]


def _crash(state):
    os._exit(13)


class TestWorkerSizing:
    def test_affinity_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert _default_workers() == len(os.sched_getaffinity(0))

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert _default_workers() == 3

    @pytest.mark.parametrize("bad", ["0", "-2", "many"])
    def test_invalid_override_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError):
            _default_workers()


class TestPoolLifecycle:
    def test_persistent_runtime_warms_eagerly(self):
        with Runtime("threads", max_workers=2, persistent=True) as runtime:
            assert runtime._pool is not None  # created at construction

    def test_sub_concurrent_map_still_creates_the_pool(self):
        with Runtime("threads", max_workers=2) as runtime:
            assert runtime._pool is None  # lazy until first map
            assert runtime.map(_double, [(21,)]) == [42]
            assert runtime._pool is not None  # single task ran inline, but
            # the pool exists for the first *real* parallel phase

    def test_context_manager_reuses_one_pool_across_runs(self):
        with Runtime("threads", max_workers=2) as runtime:
            runtime.map(_double, [(1,), (2,)])
            pool = runtime._pool
            runtime.map(_double, [(3,), (4,)])
            assert runtime._pool is pool
        assert runtime._pool is None  # exit closed it

    def test_close_is_idempotent_and_runtime_remains_usable(self):
        runtime = Runtime("threads", max_workers=2)
        assert runtime.map(_double, [(1,), (2,)]) == [2, 4]
        runtime.close()
        runtime.close()  # double close is a no-op
        # A closed runtime lazily re-creates its pool on the next use.
        assert runtime.map(_double, [(5,), (6,)]) == [10, 12]
        runtime.close()

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_map_async_matches_map(self, executor):
        with Runtime(executor, max_workers=2) as runtime:
            tasks = [(i,) for i in range(5)]
            join = runtime.map_async(_double, tasks)
            assert join() == runtime.map(_double, tasks)


class TestSharedMemoryHygiene:
    def test_large_map_arguments_travel_via_shm_and_are_released(self):
        arr = np.arange(32_768, dtype=np.int64)  # 256 KiB >= threshold
        runtime = Runtime("processes", max_workers=2)
        try:
            results = runtime.map(_array_sum, [(arr,), (arr,)])
            assert results == [float(arr.sum())] * 2
            assert runtime._shm_arena is not None
            blocks = [entry[0] for entry in runtime._shm_cache.values()]
            assert blocks
        finally:
            runtime.close()
        for block in blocks:
            with pytest.raises(FileNotFoundError):
                shm_mod.attach(block)

    def test_resident_session_releases_segments_on_close(self):
        with Runtime("processes", max_workers=2, persistent=True) as runtime:
            session = StreamingSession([8, 8], np.eye(3, dtype=np.int64),
                                       seed=1, runtime=runtime)
            arena = session._resident.arena
            assert arena.names  # shard + sketch buffers exist
            blocks = [
                shm_mod.ShmBlock(name, (1,), "<i8") for name in arena.names
            ]
            session.ingest(0, [0, 1], np.ones((2, 3), dtype=np.int64))
            session.close()
            for block in blocks:
                with pytest.raises(FileNotFoundError):
                    shm_mod.attach(block)

    def test_segments_survive_a_worker_crash_until_owner_closes(self):
        # A dying worker must not take the owner's segments with it (the
        # attach-side registration is untracked/deduped); only the owning
        # arena unlinks, in close().
        with shm_mod.ShmArena() as arena:
            view, block = arena.allocate((4,), np.float64)
            runtime = Runtime("processes", max_workers=1)
            pool = runtime.resident_pool(_init_counter, [(0,)])
            pool.submit(0, _crash)
            with pytest.raises(WorkerCrashedError):
                pool.drain(0)
            runtime.close()
            mapped, seg = shm_mod.attach(block)  # still alive
            del mapped
            seg.close()
        with pytest.raises(FileNotFoundError):
            shm_mod.attach(block)


class TestResidentPools:
    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_state_persists_across_calls_per_slot(self, executor):
        with Runtime(executor, max_workers=2) as runtime:
            pool = runtime.resident_pool(_init_counter, [(10,), (100,)])
            assert pool.call(0, _bump, 1) == 11
            assert pool.call(1, _bump, 5) == 105
            assert pool.call(0, _bump, 1) == 12  # slot 0 kept its state
            assert pool.call(1, _read) == 105

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_submit_results_come_back_fifo(self, executor):
        with Runtime(executor, max_workers=2) as runtime:
            pool = runtime.resident_pool(_init_counter, [(0,)])
            for by in (1, 2, 3):
                pool.submit(0, _bump, by)
            assert pool.pending(0) == 3
            assert [pool.result(0) for _ in range(3)] == [1, 3, 6]
            assert pool.pending(0) == 0

    def test_crashed_worker_raises_with_exit_code(self):
        with Runtime("processes", max_workers=1) as runtime:
            pool = runtime.resident_pool(_init_counter, [(0,)])
            pool.submit(0, _crash)
            with pytest.raises(WorkerCrashedError, match="13"):
                pool.drain(0)

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_pool_close_is_idempotent_and_runtime_close_covers_it(self, executor):
        runtime = Runtime(executor, max_workers=1)
        pool = runtime.resident_pool(_init_counter, [(0,)])
        assert pool.call(0, _read) == 0
        pool.close()
        pool.close()
        runtime.close()  # already-closed pool is fine


class TestResidentStreamingSession:
    def run_session(self, runtime):
        rng = np.random.default_rng(99)
        b = rng.integers(0, 3, size=(4, 3))
        session = StreamingSession(
            [12, 12], b, seed=7, runtime=runtime, refresh="every-epoch"
        )
        offsets = (0, 12)
        for _ in range(3):
            for site in range(2):
                rows = rng.integers(offsets[site], offsets[site] + 12, size=9)
                deltas = rng.integers(-4, 5, size=(9, 4))
                session.ingest(site, rows, deltas)
            session.end_epoch()
        session.sync()
        return session

    def collect(self, session):
        return (
            [(r.shipped, r.upload_bytes, r.total_bytes) for r in session.history],
            session.network.total_bits,
            {
                key: sketch.state_array().tobytes()
                for key, sketch in session.merged.items()
            },
            [shard.copy() for shard in session.shards()],
        )

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_resident_sessions_are_bit_identical_to_serial(self, executor):
        reference = self.collect(self.run_session(None))
        with Runtime(executor, max_workers=2, persistent=True) as runtime:
            session = self.run_session(runtime)
            assert session._resident is not None  # really ran resident
            got = self.collect(session)
            session.close()
        assert got[0] == reference[0]
        assert got[1] == reference[1]
        assert got[2] == reference[2]
        for mine, theirs in zip(got[3], reference[3]):
            np.testing.assert_array_equal(mine, theirs)

    def test_closed_session_still_answers_queries_but_refuses_ingest(self):
        with Runtime("processes", max_workers=2, persistent=True) as runtime:
            session = self.run_session(runtime)
            live = session.live_lp_norm(2.0)
            shards = [shard.copy() for shard in session.shards()]
            session.close()
            session.close()  # idempotent
            assert session.live_lp_norm(2.0) == live
            for mine, theirs in zip(session.shards(), shards):
                np.testing.assert_array_equal(mine, theirs)
            with pytest.raises(RuntimeError):
                session.ingest(0, [0], np.ones((1, 4), dtype=np.int64))
            with pytest.raises(RuntimeError):
                session.end_epoch()

    def test_session_context_manager_closes(self):
        with Runtime("threads", max_workers=2, persistent=True) as runtime:
            with StreamingSession(
                [6, 6], np.eye(2, dtype=np.int64), seed=3, runtime=runtime
            ) as session:
                assert session._resident is not None
                arena = session._resident.arena
            assert session._resident is None
            assert not arena.names

    def test_dropped_site_backlog_ships_after_restore(self):
        reference = self.collect(self.run_session(None))

        rng = np.random.default_rng(99)
        b = rng.integers(0, 3, size=(4, 3))
        with Runtime("processes", max_workers=2, persistent=True) as runtime:
            session = StreamingSession(
                [12, 12], b, seed=7, runtime=runtime, refresh="every-epoch"
            )
            offsets = (0, 12)
            session.drop_site(1)  # site 1 queues its deltas locally
            for _ in range(3):
                for site in range(2):
                    rows = rng.integers(offsets[site], offsets[site] + 12, size=9)
                    deltas = rng.integers(-4, 5, size=(9, 4))
                    session.ingest(site, rows, deltas)
                session.end_epoch()
            session.restore_site(1)
            session.sync()  # backlog ships; summaries catch up exactly
            got_states = {
                key: sketch.state_array().tobytes()
                for key, sketch in session.merged.items()
            }
            session.close()
        assert got_states == reference[2]
