"""Executor invariance + fault policies of the message-passing runtime.

The serial-equivalence guarantee (``engine/runtime.py``) has two halves:

* the **serial** executor is pinned to the historical transcripts by the
  existing equivalence/determinism suites, which run without a runtime;
* the **threads** and **processes** executors must reproduce the serial
  run bit for bit — identical protocol outputs *and* identical byte/round
  meters (total, per-label, per-round, per-link, per-site) — for every
  protocol family, at k in {1, 2, 4}.  That is what this module pins.

The family list deliberately includes a ``p != 1`` heavy-hitters run: that
protocol consumes each site's private generator in *two* separated fan-out
phases (the lp-norm subroutine, then entry sampling), so it fails unless
``Runtime.map_sites`` correctly restores generators advanced inside worker
processes.

Dropout policies and the streaming session's executor invariance are
covered at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import LinkModel, NetworkConditions
from repro.engine import (
    Runtime,
    SiteDroppedError,
    StarBinaryHeavyHittersProtocol,
    StarExactL1Protocol,
    StarGeneralMatrixLinfProtocol,
    StarHeavyHittersProtocol,
    StarKappaApproxLinfProtocol,
    StarL0SamplingProtocol,
    StarL1SamplingProtocol,
    StarLpNormProtocol,
    StarTwoPlusEpsilonLinfProtocol,
    StreamingSession,
)
from repro.multiparty import ClusterEstimator

SEED = 515151

#: (family id, protocol factory, needs-integer-workload)
FAMILIES = [
    ("lp-p0", lambda: StarLpNormProtocol(0.0, 0.4, seed=SEED), False),
    ("lp-p2", lambda: StarLpNormProtocol(2.0, 0.4, seed=SEED), False),
    ("l0-sampling", lambda: StarL0SamplingProtocol(0.4, seed=SEED), False),
    ("l1-exact", lambda: StarExactL1Protocol(seed=SEED), False),
    ("l1-sampling", lambda: StarL1SamplingProtocol(seed=SEED), False),
    ("linf-2eps", lambda: StarTwoPlusEpsilonLinfProtocol(0.4, seed=SEED), False),
    ("linf-kappa", lambda: StarKappaApproxLinfProtocol(6, seed=SEED), False),
    ("linf-general", lambda: StarGeneralMatrixLinfProtocol(4, seed=SEED), True),
    ("hh-general", lambda: StarHeavyHittersProtocol(0.1, 0.05, seed=SEED), True),
    # Two rng-consuming fan-out phases per site (lp subroutine + sampling):
    # exercises generator restoration across process boundaries.
    ("hh-general-p2", lambda: StarHeavyHittersProtocol(0.1, 0.05, p=2.0, seed=SEED), True),
    ("hh-binary", lambda: StarBinaryHeavyHittersProtocol(0.1, 0.05, seed=SEED), False),
]


@pytest.fixture(scope="module")
def binary_pair():
    rng = np.random.default_rng(41)
    n = 32
    a = (rng.uniform(size=(n, n)) < 0.15).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < 0.15).astype(np.int64)
    return a, b


@pytest.fixture(scope="module")
def integer_pair():
    rng = np.random.default_rng(42)
    n = 32
    a = rng.integers(0, 4, size=(n, n)).astype(np.int64)
    b = rng.integers(0, 4, size=(n, n)).astype(np.int64)
    return a, b


@pytest.fixture(scope="module", params=["threads", "processes"])
def concurrent_runtime(request):
    """One shared pool per executor for the whole module (fork cost paid once)."""
    runtime = Runtime(request.param, max_workers=4)
    yield runtime
    runtime.close()


@pytest.fixture(scope="module")
def serial_baseline(binary_pair, integer_pair):
    """Serial reference transcripts, computed once per (family, k)."""
    cache: dict[tuple[str, int], object] = {}

    def get(family, factory, integer_workload, k):
        key = (family, k)
        if key not in cache:
            a, b = integer_pair if integer_workload else binary_pair
            cache[key] = factory().run(np.array_split(a, k, axis=0), b)
        return cache[key]

    return get


def assert_identical(first, second):
    assert first.value == second.value
    assert first.cost.rounds == second.cost.rounds
    assert first.cost.total_bits == second.cost.total_bits
    assert first.cost.breakdown == second.cost.breakdown
    assert first.cost.per_round == second.cost.per_round
    assert first.cost.link_bits == second.cost.link_bits
    assert first.cost.site_bits == second.cost.site_bits
    assert first.cost.max_link_bits == second.cost.max_link_bits


@pytest.mark.parametrize("k", [1, 2, 4])
@pytest.mark.parametrize(
    "factory, integer_workload",
    [(factory, integer) for _, factory, integer in FAMILIES],
    ids=[family for family, _, _ in FAMILIES],
)
def test_concurrent_executors_reproduce_serial_transcripts(
    factory,
    integer_workload,
    k,
    binary_pair,
    integer_pair,
    concurrent_runtime,
    serial_baseline,
):
    family = next(f for f, fac, _ in FAMILIES if fac is factory)
    baseline = serial_baseline(family, factory, integer_workload, k)
    a, b = integer_pair if integer_workload else binary_pair
    shards = np.array_split(a, k, axis=0)
    result = factory().run(shards, b, runtime=concurrent_runtime)
    assert_identical(baseline, result)


def test_runtime_rejects_unknown_executor_and_policy():
    with pytest.raises(ValueError):
        Runtime("gpu")
    with pytest.raises(ValueError):
        Runtime(dropout="retry")
    with pytest.raises(ValueError):
        Runtime(max_workers=0)


def test_estimator_facade_accepts_runtime(binary_pair, concurrent_runtime):
    a, b = binary_pair
    serial = ClusterEstimator.from_matrix(a, b, 4, seed=3).join_size(0.4)
    concurrent = ClusterEstimator.from_matrix(
        a, b, 4, seed=3, runtime=concurrent_runtime
    ).join_size(0.4)
    assert_identical(serial, concurrent)


def test_conditions_never_perturb_the_transcript(binary_pair):
    """Conditions price the transcript; bits, rounds and values stay put."""
    a, b = binary_pair
    ideal = ClusterEstimator.from_matrix(a, b, 4, seed=5).join_size(0.4)
    priced = ClusterEstimator.from_matrix(
        a,
        b,
        4,
        seed=5,
        conditions=NetworkConditions(LinkModel(latency=0.01, bandwidth=1e6)),
    ).join_size(0.4)
    assert_identical(ideal, priced)
    assert ideal.cost.makespan == 0.0
    assert priced.cost.makespan > 0.0
    assert priced.cost.makespan == pytest.approx(sum(priced.cost.makespan_per_round.values()))
    assert priced.cost.makespan_per_round.keys() == priced.cost.per_round.keys()


def test_two_party_report_carries_makespan(binary_pair):
    from repro import MatrixProductEstimator

    a, b = binary_pair
    conditions = NetworkConditions(LinkModel(latency=0.5))
    result = MatrixProductEstimator(a, b, seed=2, conditions=conditions).join_size(0.4)
    assert result.cost.makespan >= 0.5 * result.cost.rounds


def test_as_cluster_carries_runtime_and_conditions(binary_pair):
    """Scaling out must not silently shed the WAN model or the executor."""
    from repro import MatrixProductEstimator

    a, b = binary_pair
    conditions = NetworkConditions(LinkModel(latency=0.01, bandwidth=1e6))
    runtime = Runtime(dropout="exclude")
    estimator = MatrixProductEstimator(
        a, b, seed=2, runtime=runtime, conditions=conditions
    )
    cluster = estimator.as_cluster(4)
    assert cluster.runtime is runtime
    assert cluster.conditions is conditions
    assert cluster.join_size(0.4).cost.makespan > 0.0


class TestDropoutPolicies:
    def conditions(self):
        return NetworkConditions(dropped={"site-1"})

    def test_default_policy_fails(self, binary_pair):
        a, b = binary_pair
        cluster = ClusterEstimator.from_matrix(
            a, b, 4, seed=7, conditions=self.conditions()
        )
        with pytest.raises(SiteDroppedError, match="site-1"):
            cluster.join_size(0.4)

    def test_exclude_renormalizes_additive_families(self, binary_pair):
        a, b = binary_pair
        cluster = ClusterEstimator.from_matrix(
            a,
            b,
            4,
            seed=7,
            runtime=Runtime(dropout="exclude"),
            conditions=self.conditions(),
        )
        result = cluster.natural_join_size()
        info = result.details["dropout"]
        assert info["dropped_sites"] == ["site-1"]
        assert info["contributing_sites"] == ["site-0", "site-2", "site-3"]
        assert info["renormalized"]
        # Exact arithmetic: the survivors' exact l1 scaled by the inverse
        # surviving row fraction.
        shards = np.array_split(a, 4, axis=0)
        survivors = np.vstack([shards[0], shards[2], shards[3]])
        expected = float((survivors @ b).sum()) * info["renormalization"]
        assert result.value == pytest.approx(expected)
        assert info["surviving_row_fraction"] == pytest.approx(
            survivors.shape[0] / a.shape[0]
        )

    def test_exclude_runs_non_additive_families_unscaled(self, binary_pair):
        a, b = binary_pair
        cluster = ClusterEstimator.from_matrix(
            a,
            b,
            4,
            seed=7,
            runtime=Runtime(dropout="exclude"),
            conditions=self.conditions(),
        )
        result = cluster.l0_sample(0.4)
        assert not result.details["dropout"]["renormalized"]
        assert result.details["dropout"]["contributing_sites"] == [
            "site-0",
            "site-2",
            "site-3",
        ]

    def test_two_party_run_rejects_dropping_the_only_site(self, binary_pair):
        """Dropping Alice leaves no survivors under either policy."""
        from repro import MatrixProductEstimator

        a, b = binary_pair
        for runtime in (None, Runtime(dropout="exclude")):
            estimator = MatrixProductEstimator(
                a, b, seed=2, runtime=runtime,
                conditions=NetworkConditions(dropped={"alice"}),
            )
            with pytest.raises(SiteDroppedError):
                estimator.join_size(0.4)

    def test_unknown_dropped_names_are_rejected(self, binary_pair):
        """A typo'd fault declaration must not silently test nothing."""
        a, b = binary_pair
        cluster = ClusterEstimator.from_matrix(
            a, b, 4, seed=7, conditions=NetworkConditions(dropped={"site1"})
        )
        with pytest.raises(ValueError, match="site1"):
            cluster.join_size(0.4)

    def test_all_sites_dropped_always_fails(self, binary_pair):
        a, b = binary_pair
        cluster = ClusterEstimator.from_matrix(
            a,
            b,
            2,
            seed=7,
            runtime=Runtime(dropout="exclude"),
            conditions=NetworkConditions(dropped={"site-0", "site-1"}),
        )
        with pytest.raises(SiteDroppedError):
            cluster.join_size(0.4)


class TestStreamingExecutorInvariance:
    def build(self, runtime=None):
        rng = np.random.default_rng(9)
        b = (rng.uniform(size=(24, 24)) < 0.2).astype(np.int64)
        session = StreamingSession([6, 6, 6, 6], b, seed=13, runtime=runtime)
        for site in range(4):
            offset = session.sites[site].row_offset
            deltas = rng.integers(-2, 3, size=(6, 24)).astype(np.int64)
            session.ingest(site, offset + np.arange(6), deltas)
        return session

    def test_epoch_payloads_are_executor_invariant(self, concurrent_runtime):
        serial = self.build()
        concurrent = self.build(runtime=concurrent_runtime)
        # Identical ingestion (the builder reseeds) -> identical epochs.
        first, second = serial.end_epoch(), concurrent.end_epoch()
        assert first.upload_bytes == second.upload_bytes
        assert serial.network.total_bits == concurrent.network.total_bits
        for key in serial.merged:
            ours = serial.merged[key].state_array()
            theirs = concurrent.merged[key].state_array()
            assert np.array_equal(ours, theirs)


class TestStreamingDropout:
    def test_dropped_site_queues_until_restored(self):
        rng = np.random.default_rng(3)
        b = (rng.uniform(size=(16, 16)) < 0.3).astype(np.int64)
        session = StreamingSession([8, 8], b, seed=21)
        reference = StreamingSession([8, 8], b, seed=21)
        deltas = rng.integers(-2, 3, size=(8, 16)).astype(np.int64)
        for target in (session, reference):
            target.ingest(0, np.arange(8), deltas)
            target.ingest(1, 8 + np.arange(8), deltas)

        session.drop_site(1)
        report = session.end_epoch()
        assert report.dropped == ["site-1"]
        assert report.shipped == {"site-0": True, "site-1": False}
        assert session.dropped_sites == ["site-1"]
        assert session.contributing_sites == ["site-0"]

        # One-shot queries respect the partition via the runtime policy.
        with pytest.raises(SiteDroppedError):
            session.join_size(0.4)

        # Restoration ships the backlog; summaries recover bit-exactly.
        session.restore_site(1)
        session.sync()
        reference.sync()
        for key in session.merged:
            assert np.array_equal(
                session.merged[key].state_array(),
                reference.merged[key].state_array(),
            )

    def test_fail_policy_raises_at_the_boundary(self):
        rng = np.random.default_rng(4)
        b = np.eye(8, dtype=np.int64)
        session = StreamingSession([4, 4], b, seed=1, dropout="fail")
        session.ingest(1, 4 + np.arange(4), rng.integers(0, 2, size=(4, 8)))
        session.drop_site(1)
        with pytest.raises(SiteDroppedError, match="site-1"):
            session.end_epoch()
        # A failed boundary leaves the session untouched: no epoch counted,
        # no history gap, and the boundary succeeds once the site is back.
        assert session.epoch == 0
        assert session.history == []
        session.restore_site(1)
        report = session.end_epoch()
        assert report.epoch == 1 and len(session.history) == 1

    def test_custom_site_names_translate_for_one_shot_queries(self):
        """Dropped names AND link overrides keyed by custom session names
        must keep meaning the same sites in the positional one-shot star."""
        from repro.comm import LinkModel, NetworkConditions

        b = np.eye(8, dtype=np.int64)
        slow = LinkModel(latency=5.0, bandwidth=1e6)
        conditions = NetworkConditions(
            LinkModel(latency=0.01, bandwidth=1e6), overrides={"west": slow}
        )
        session = StreamingSession(
            [4, 4], b, seed=1, site_names=("east", "west"), conditions=conditions
        )
        session.ingest(0, np.arange(4), np.ones((4, 8), dtype=np.int64))
        session.ingest(1, 4 + np.arange(4), np.ones((4, 8), dtype=np.int64))
        result = session.join_size(0.4)
        # The straggler override must gate the one-shot makespan too.
        assert result.cost.makespan >= 5.0

        dropped = StreamingSession(
            [4, 4],
            b,
            seed=1,
            site_names=("east", "west"),
            conditions=NetworkConditions(dropped={"west"}),
        )
        with pytest.raises(SiteDroppedError):
            dropped.join_size(0.4)

    def test_dropped_site_without_pending_data_is_harmless(self):
        b = np.eye(8, dtype=np.int64)
        session = StreamingSession([4, 4], b, seed=1, dropout="fail")
        session.drop_site(1)
        report = session.end_epoch()  # nothing pending -> nothing to fail on
        assert report.dropped == ["site-1"]

    def test_static_dropped_declarations_partition_the_session(self):
        """conditions.dropped means the same thing at epoch boundaries and in
        one-shot queries: the site starts partitioned, restore reconnects."""
        b = np.eye(8, dtype=np.int64)
        session = StreamingSession(
            [4, 4], b, seed=1, conditions=NetworkConditions(dropped={"site-1"})
        )
        assert session.dropped_sites == ["site-1"]
        session.ingest(1, 4 + np.arange(4), np.ones((4, 8), dtype=np.int64))
        report = session.end_epoch()  # default policy excludes: delta queues
        assert report.dropped == ["site-1"] and report.total_bytes == 0
        with pytest.raises(SiteDroppedError):
            session.join_size(0.4)
        session.restore_site(1)
        session.sync()
        assert session.live_l0() > 0  # backlog shipped after reconnection
        session.join_size(0.4)  # and queries see the restored site too

    def test_unknown_static_dropped_names_rejected_at_construction(self):
        b = np.eye(8, dtype=np.int64)
        with pytest.raises(ValueError, match="nope"):
            StreamingSession(
                [4, 4], b, seed=1, conditions=NetworkConditions(dropped={"nope"})
            )
