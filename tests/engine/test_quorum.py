"""Quorum execution and straggler late-merge, at the engine level.

Pins the ISSUE 9 tentpole semantics without any real transport:

* a quorum run answers from the fastest ``n - f`` responders, so its
  simulated makespan strictly shrinks as ``f`` grows (the slow links
  leave the critical path) and is **bit-identical** to a dropout-exclude
  run over the same contributor set — quorum *is* survivor
  renormalization with a latency-chosen survivor set;
* fewer than ``n - f`` responders raise :class:`SiteDroppedError` with
  ``reason="quorum"`` and a structured degradation report;
* a streaming straggler's upload is queued (``late``), folded at the next
  boundary (``late_merged``) or via ``collect_late()``, and the folded
  state is bit-identical to an on-time ship — merges are linear sums;
* ``quorum_met`` on the epoch report tracks on-time shippers vs ``n - f``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.conditions import LinkModel, NetworkConditions
from repro.engine.lp_norm import StarLpNormProtocol
from repro.engine.runtime import QuorumPolicy, Runtime, SiteDroppedError
from repro.multiparty import ClusterEstimator

NUM_SITES = 4
SEED = 11


def _data():
    rng = np.random.default_rng(23)
    a = rng.integers(0, 3, size=(32, 16))
    b = rng.integers(0, 3, size=(16, 12))
    return np.array_split(a, NUM_SITES, axis=0), b


def _latencies(stragglers: int = 1) -> NetworkConditions:
    """Distinct per-site latencies; the last ``stragglers`` sites are slow."""
    overrides = {
        f"site-{i}": LinkModel(latency=0.01 + 0.02 * i) for i in range(NUM_SITES)
    }
    for i in range(NUM_SITES - stragglers, NUM_SITES):
        overrides[f"site-{i}"] = LinkModel(latency=2.0)
    return NetworkConditions(
        LinkModel(latency=0.01), overrides=overrides, deadline=0.5
    )


class TestQuorumOneShot:
    def test_makespan_strictly_shrinks_with_tolerance(self):
        shards, b = _data()
        overrides = {
            f"site-{i}": LinkModel(latency=0.01 + 0.05 * i)
            for i in range(NUM_SITES)
        }
        conditions = NetworkConditions(LinkModel(latency=0.01), overrides=overrides)
        makespans = []
        for f in range(3):
            result = StarLpNormProtocol(2.0, 0.3, seed=SEED).run(
                shards,
                b,
                runtime=Runtime(quorum=QuorumPolicy(f=f), dropout="exclude"),
                conditions=conditions,
            )
            makespans.append(result.cost.makespan)
        assert makespans[1] < makespans[0]
        assert makespans[2] < makespans[1]

    def test_quorum_equals_dropout_exclude_over_the_same_survivors(self):
        """Quorum = survivor renormalization with a latency-chosen set."""
        shards, b = _data()
        quorum = StarLpNormProtocol(2.0, 0.3, seed=SEED).run(
            shards,
            b,
            runtime=Runtime(quorum=QuorumPolicy(f=1), dropout="exclude"),
            conditions=_latencies(stragglers=1),
        )
        dropout = quorum.details["dropout"]
        assert dropout["stragglers"] == [f"site-{NUM_SITES - 1}"]
        assert dropout["contributing_sites"] == [
            f"site-{i}" for i in range(NUM_SITES - 1)
        ]
        assert dropout["quorum"] is not None

        excluded = StarLpNormProtocol(2.0, 0.3, seed=SEED).run(
            shards,
            b,
            runtime=Runtime(dropout="exclude"),
            conditions=NetworkConditions(
                LinkModel(latency=0.01), dropped=[f"site-{NUM_SITES - 1}"]
            ),
        )
        assert quorum.value == excluded.value

    def test_shortfall_raises_with_a_structured_report(self):
        shards, b = _data()
        with pytest.raises(SiteDroppedError, match="quorum not met") as info:
            StarLpNormProtocol(2.0, 0.3, seed=SEED).run(
                shards,
                b,
                runtime=Runtime(
                    quorum=QuorumPolicy(f=1, deadline=0.5), dropout="exclude"
                ),
                conditions=_latencies(stragglers=3),
            )
        error = info.value
        assert error.reason == "quorum"
        report = error.degradation_report()
        assert report["reason"] == "quorum"
        assert report["surviving_sites"] == 1
        assert report["dropped_sites"] == ["site-1", "site-2", "site-3"]

    def test_policy_coercion_and_validation(self):
        assert QuorumPolicy.coerce(None) is None
        assert QuorumPolicy.coerce(2) == QuorumPolicy(f=2)
        assert QuorumPolicy.coerce((8, 3)) == QuorumPolicy(n=8, f=3)
        policy = QuorumPolicy(f=1, deadline=0.25)
        assert QuorumPolicy.coerce(policy) is policy
        assert QuorumPolicy(n=8, f=3).required(8) == 5
        assert QuorumPolicy(f=3).required(8) == 5
        with pytest.raises(ValueError, match="only 4"):
            QuorumPolicy(n=8, f=3).required(4)
        with pytest.raises(ValueError, match="n - f"):
            QuorumPolicy(n=2, f=2)
        with pytest.raises(ValueError, match="f must be >= 0"):
            QuorumPolicy(f=-1)
        with pytest.raises(ValueError, match="deadline"):
            QuorumPolicy(f=1, deadline=0.0)


def _batches(shards):
    offset = 0
    out = []
    for index, shard in enumerate(shards):
        out.append((index, offset + np.arange(shard.shape[0]), shard))
        offset += shard.shape[0]
    return out


def _sessions(conditions):
    """A session under ``conditions`` and an ideal-network twin, same seed."""
    shards, b = _data()
    session = ClusterEstimator(shards, b, seed=SEED).stream(conditions=conditions)
    reference = ClusterEstimator(shards, b, seed=SEED).stream()
    return session, reference, shards


class TestStreamingLateMerge:
    def test_straggler_is_queued_then_collected_bit_exact(self):
        session, reference, shards = _sessions(_latencies(stragglers=1))
        for index, rows, deltas in _batches(shards):
            session.ingest(index, rows, deltas)
            reference.ingest(index, rows, deltas)
        report = session.end_epoch(force=True)
        reference.end_epoch(force=True)
        straggler = f"site-{NUM_SITES - 1}"
        assert report.late == [straggler]
        assert session.late_pending == [straggler]
        # The queued upload is missing from the live state...
        assert session.live_lp_norm(2.0) != reference.live_lp_norm(2.0)
        # ...until it arrives; then the fold is bit-exact (linear merges).
        folded = session.collect_late()
        assert folded[straggler] > 0
        assert session.late_pending == []
        assert session.live_lp_norm(2.0) == reference.live_lp_norm(2.0)

    def test_straggler_folds_at_the_next_boundary(self):
        session, reference, shards = _sessions(_latencies(stragglers=1))
        straggler = f"site-{NUM_SITES - 1}"
        for index, rows, deltas in _batches(shards):
            half = rows.shape[0] // 2
            session.ingest(index, rows[:half], deltas[:half])
            reference.ingest(index, rows[:half], deltas[:half])
        assert session.end_epoch(force=True).late == [straggler]
        for index, rows, deltas in _batches(shards):
            half = rows.shape[0] // 2
            session.ingest(index, rows[half:], deltas[half:])
            reference.ingest(index, rows[half:], deltas[half:])
        second = session.end_epoch(force=True)
        reference.end_epoch(force=True)
        reference.end_epoch(force=True)  # no-op: nothing pending
        assert second.late_merged == [straggler]  # epoch 1's queued upload
        assert second.late == [straggler]  # epoch 2's own upload, in flight
        session.collect_late()
        assert session.live_lp_norm(2.0) == reference.live_lp_norm(2.0)
        assert session.live_heavy_hitters(phi=0.3) == reference.live_heavy_hitters(
            phi=0.3
        )

    def test_quorum_met_tracks_on_time_shippers(self):
        shards, b = _data()
        met = ClusterEstimator(shards, b, seed=SEED).stream(
            conditions=_latencies(stragglers=1), quorum=(NUM_SITES, 1)
        )
        short = ClusterEstimator(shards, b, seed=SEED).stream(
            conditions=_latencies(stragglers=2), quorum=(NUM_SITES, 1)
        )
        for index, rows, deltas in _batches(shards):
            met.ingest(index, rows, deltas)
            short.ingest(index, rows, deltas)
        assert met.end_epoch(force=True).quorum_met is True
        report = short.end_epoch(force=True)
        assert report.quorum_met is False
        assert report.late == ["site-2", "site-3"]

    def test_session_inherits_the_runtime_quorum(self):
        shards, b = _data()
        estimator = ClusterEstimator(
            shards, b, seed=SEED, runtime=Runtime(quorum=QuorumPolicy(f=1))
        )
        session = estimator.stream()
        assert session.quorum == QuorumPolicy(f=1)
        explicit = estimator.stream(quorum=(NUM_SITES, 2))
        assert explicit.quorum == QuorumPolicy(n=NUM_SITES, f=2)

    def test_quorum_n_beyond_the_cluster_is_rejected_at_open(self):
        shards, b = _data()
        with pytest.raises(ValueError, match="only 4"):
            ClusterEstimator(shards, b, seed=SEED).stream(
                quorum=(NUM_SITES + 1, 1)
            )


class TestVectorizedPartitionPin:
    """The single-pass NumPy ``partition_quorum`` against a reference scan.

    The vectorization must be invisible: contributor sets are pinned
    bit-identical to the obvious per-site loop — deadline filtering, the
    fastest ``n - f`` selection, and tie-breaks by site order included.
    Hypothesis drives quantized latencies so ties actually occur.
    """

    @staticmethod
    def _reference(site_names, latencies, required, deadline):
        """The historical per-site scan, written as plainly as possible."""
        responders = [
            i
            for i in range(len(site_names))
            if deadline is None or latencies[i] <= deadline
        ]
        if len(responders) < required:
            return None
        ordered = sorted(responders, key=lambda i: (latencies[i], i))
        contributors = sorted(ordered[:required])
        chosen = set(contributors)
        stragglers = [n for i, n in enumerate(site_names) if i not in chosen]
        return contributors, stragglers

    def test_exact_ties_break_by_site_order(self):
        names = [f"site-{i}" for i in range(6)]
        # Sites 1, 3, 4 tie exactly; order must pick 1 then 3, never 4.
        overrides = {
            "site-0": LinkModel(latency=0.9),
            "site-1": LinkModel(latency=0.2),
            "site-2": LinkModel(latency=0.7),
            "site-3": LinkModel(latency=0.2),
            "site-4": LinkModel(latency=0.2),
            "site-5": LinkModel(latency=0.4),
        }
        conditions = NetworkConditions(LinkModel(latency=0.5), overrides=overrides)
        runtime = Runtime(quorum=QuorumPolicy(f=4), dropout="exclude")
        contributors, stragglers, details = runtime.partition_quorum(
            names, conditions
        )
        assert contributors == [1, 3]
        assert stragglers == ["site-0", "site-2", "site-4", "site-5"]
        assert details["contributing_sites"] == ["site-1", "site-3"]

    @settings(max_examples=120, deadline=None)
    @given(
        latencies=st.lists(
            st.integers(0, 4).map(lambda q: q / 4.0), min_size=2, max_size=12
        ),
        f=st.integers(0, 3),
        deadline_q=st.one_of(st.none(), st.integers(1, 4)),
    )
    def test_random_latency_profiles_match_the_reference_scan(
        self, latencies, f, deadline_q
    ):
        k = len(latencies)
        f = min(f, k - 1)
        deadline = None if deadline_q is None else deadline_q / 4.0
        names = [f"site-{i}" for i in range(k)]
        conditions = NetworkConditions(
            LinkModel(latency=0.0),
            overrides={
                name: LinkModel(latency=lat) if lat else LinkModel()
                for name, lat in zip(names, latencies)
            },
            deadline=deadline,
        )
        runtime = Runtime(quorum=QuorumPolicy(f=f), dropout="exclude")
        expected = self._reference(names, latencies, k - f, deadline)
        if expected is None:
            with pytest.raises(SiteDroppedError, match="quorum"):
                runtime.partition_quorum(names, conditions)
            return
        contributors, stragglers, details = runtime.partition_quorum(
            names, conditions
        )
        assert (contributors, stragglers) == expected
        assert details["required"] == k - f
        assert details["arrival_s"] == {
            name: lat for name, lat in zip(names, latencies)
        }

    def test_tree_regions_resolve_per_edge_and_report_per_subtree(self):
        from repro.comm.tree import TreeSpec

        names = [f"site-{i}" for i in range(6)]
        tree = TreeSpec.regular(names, 3)  # agg-0-0: 0..2, agg-0-1: 3..5
        conditions = NetworkConditions(
            LinkModel(latency=0.1),
            regions={"agg-0-1": LinkModel(latency=0.9)},
            overrides={"site-4": LinkModel(latency=0.05)},
        )
        runtime = Runtime(quorum=QuorumPolicy(f=2), dropout="exclude")
        contributors, stragglers, details = runtime.partition_quorum(
            names, conditions, tree=tree
        )
        # Override beats region (site-4); region beats default (3, 5 slow).
        expected_lat = [0.1, 0.1, 0.1, 0.9, 0.05, 0.9]
        assert details["arrival_s"] == {
            name: lat for name, lat in zip(names, expected_lat)
        }
        assert (contributors, stragglers) == self._reference(
            names, expected_lat, 4, None
        )
        assert details["per_subtree"] == {
            "agg-0-0": {"sites": 3, "contributing": 3},
            "agg-0-1": {"sites": 3, "contributing": 1},
        }
