"""The tree acceptance pin: root estimates are bit-identical to the flat star.

Every protocol family, every k in {4, 16, 64}, across tree shapes (balanced
fan-out trees and an irregular nested grouping): running the SAME seeded
query through an aggregation tree must return the exact value, with the
exact round count, that the depth-1 star returns.  The in-process network
is a metering device that hands the payload back, so the tree overlay can
only reroute and re-meter — any drift here means an aggregator touched
payload semantics, which is the one thing it must never do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterEstimator
from repro.comm.tree import TreeSpec
from repro.matrices import generators


def _binary_cluster(k, rows_per_site=2, cols=24, inner=16, seed=2024):
    rng = np.random.default_rng(seed)
    a = (rng.uniform(size=(k * rows_per_site, cols)) < 0.2).astype(np.int64)
    b = (rng.uniform(size=(cols, inner)) < 0.2).astype(np.int64)
    return list(np.array_split(a, k, axis=0)), b


def _integer_cluster(k, seed=31):
    a, b = generators.integer_matrix_pair(32, density=0.1, planted_value=6, seed=seed)
    return list(np.array_split(a, k, axis=0)), b


def _shapes(k):
    """Tree shapes to pit against the flat star for a given k."""
    shapes = {"fan-2": TreeSpec.regular([f"site-{i}" for i in range(k)], 2)}
    if k >= 16:
        shapes["fan-4"] = TreeSpec.regular([f"site-{i}" for i in range(k)], 4)
    if k == 4:
        # Irregular: one nested aggregator plus a direct root leaf.
        shapes["nested"] = TreeSpec.from_grouping(
            [f"site-{i}" for i in range(4)], [[0, [1, 2]], 3]
        )
    return shapes


# One entry per protocol family: (name, needs-integer-data, query lambda).
QUERIES = [
    ("lp0", False, lambda est: est.lp_norm(p=0, epsilon=0.3)),
    ("lp1", False, lambda est: est.lp_norm(p=1.0, epsilon=0.3)),
    ("lp2", False, lambda est: est.lp_norm(p=2.0, epsilon=0.3)),
    ("join_size", False, lambda est: est.join_size(epsilon=0.3)),
    ("natural_join", False, lambda est: est.natural_join_size()),
    ("l0_sample", False, lambda est: est.l0_sample(epsilon=0.3)),
    ("l1_sample", False, lambda est: est.l1_sample()),
    ("linf_binary", False, lambda est: est.linf(epsilon=0.3)),
    ("linf_kappa", False, lambda est: est.linf_kappa(kappa=2.0)),
    ("hh_binary", False, lambda est: est.heavy_hitters(0.2, 0.15)),
    ("hh_general", True, lambda est: est.heavy_hitters(0.2, 0.15)),
]


def _canon(value):
    """Comparable form of a protocol output (floats stay exact floats)."""
    if hasattr(value, "pairs"):
        return ("pairs", frozenset(value.pairs))
    if hasattr(value, "row") and hasattr(value, "col"):
        return ("sample", value.row, value.col)
    return value


def _estimator(k, needs_integer, seed, tree=None):
    shards, b = _integer_cluster(k) if needs_integer else _binary_cluster(k)
    return ClusterEstimator(shards, b, seed=seed, tree=tree)


class TestTreeBitIdentity:
    @pytest.mark.parametrize("k", [4, 16, 64])
    @pytest.mark.parametrize(
        "name, needs_integer, query", QUERIES, ids=[q[0] for q in QUERIES]
    )
    def test_every_family_matches_the_flat_star(self, k, name, needs_integer, query):
        if needs_integer and k > 16:
            # integer_matrix_pair has 32 rows; 64 one-row sites cannot split.
            k = 16
        reference = query(_estimator(k, needs_integer, seed=k + 101))
        for shape_name, tree in _shapes(k).items():
            result = query(_estimator(k, needs_integer, seed=k + 101, tree=tree))
            assert _canon(result.value) == _canon(reference.value), (
                f"{name} over {shape_name} drifted from the flat star"
            )
            assert result.cost.rounds == reference.cost.rounds
            assert result.details["tree"] == tree.describe()

    def test_leaf_edges_carry_the_same_bits_as_the_star(self):
        """Re-metering only ADDS aggregator edges: per-site uploads are
        byte-for-byte what the flat star charges those sites."""
        k = 8
        tree = TreeSpec.regular([f"site-{i}" for i in range(k)], 2)
        flat = _estimator(k, False, seed=5).lp_norm(p=2.0, epsilon=0.3)
        routed = _estimator(k, False, seed=5, tree=tree).lp_norm(p=2.0, epsilon=0.3)
        for site in (f"site-{i}" for i in range(k)):
            assert routed.cost.link_bits[site] == flat.cost.link_bits[site]
        # The aggregator edges are new, metered, and the root's only ingress.
        assert set(routed.cost.link_bits) - set(flat.cost.link_bits) == {
            "agg-0-0", "agg-0-1", "agg-0-2", "agg-0-3", "agg-1-0", "agg-1-1"
        }


class TestStreamingTreeBitIdentity:
    def test_live_queries_match_the_flat_star_epoch_for_epoch(self):
        k = 8
        shards, b = _binary_cluster(k, rows_per_site=3)
        tree = TreeSpec.regular([f"site-{i}" for i in range(k)], 2)
        flat_est = ClusterEstimator(shards, b, seed=77)
        tree_est = ClusterEstimator(shards, b, seed=77, tree=tree)
        with flat_est.stream() as flat, tree_est.stream(tree=tree) as routed:
            offset = 0
            for index, shard in enumerate(shards):
                rows = offset + np.arange(shard.shape[0])
                flat.ingest(index, rows, shard)
                routed.ingest(index, rows, shard)
                offset += shard.shape[0]
            flat.sync()
            routed.sync()
            assert routed.live_lp_norm(p=2.0) == flat.live_lp_norm(p=2.0)
            assert routed.live_l0() == flat.live_l0()
            flat_hh = flat.live_heavy_hitters(0.2)
            routed_hh = routed.live_heavy_hitters(0.2)
            assert _canon(routed_hh) == _canon(flat_hh)
            # Delta uploads traveled the aggregator edges, not a phantom star.
            agg_bits = {
                edge: bits
                for edge, bits in routed.network.link_bits().items()
                if edge.startswith("agg-")
            }
            assert agg_bits and all(bits > 0 for bits in agg_bits.values())
