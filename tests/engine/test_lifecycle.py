"""Runtime/session lifecycle: atexit pairing, shm hygiene, the close state machine.

The ISSUE 8 satellite bugfixes, pinned as regression tests:

* ``Runtime`` registers its interpreter-shutdown hook exactly once per
  open period — warm→close cycles must not stack duplicate ``atexit``
  entries (each would pin the runtime for the life of the process);
* a warm→ingest→close loop leaves ``/dev/shm`` exactly as it found it —
  no dangling segment from any cycle (the leak check the issue asks for);
* a closed :class:`StreamingSession` is a real state machine: every
  mutation raises :class:`SessionClosedError` while the accumulated data
  stays queryable, ``close`` is idempotent, and queued deltas — including
  a *dropped* site's — never survive close;
* close ordering is safe both ways round (session-then-runtime and
  runtime-then-session).
"""

from __future__ import annotations

import atexit
import os

import numpy as np
import pytest

from repro.engine.runtime import Runtime
from repro.engine.streaming import SessionClosedError, StreamingSession

N, M = 12, 3


@pytest.fixture()
def b() -> np.ndarray:
    return np.random.default_rng(1).integers(0, 4, size=(N, M))


def _ingest_some(session: StreamingSession, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    for site in range(len(session.sites)):
        low = session.sites[site].row_offset
        rows = rng.integers(low, low + session.sites[site].num_rows, size=5)
        session.ingest(site, rows, rng.integers(-2, 3, size=(5, N)))


class _AtexitSpy:
    """Counts register/unregister calls for one specific callback."""

    def __init__(self, monkeypatch):
        self.registered: list = []
        real_register, real_unregister = atexit.register, atexit.unregister

        def register(fn, *args, **kwargs):
            self.registered.append(fn)
            return real_register(fn, *args, **kwargs)

        def unregister(fn):
            while fn in self.registered:
                self.registered.remove(fn)
            return real_unregister(fn)

        monkeypatch.setattr(atexit, "register", register)
        monkeypatch.setattr(atexit, "unregister", unregister)

    def live_hooks_for(self, fn) -> int:
        return self.registered.count(fn)


class TestAtexitPairing:
    def test_ten_warm_close_cycles_keep_exactly_one_live_hook(
        self, b, monkeypatch
    ):
        spy = _AtexitSpy(monkeypatch)
        runtime = Runtime("threads", max_workers=2)
        for _ in range(10):
            runtime.warm()
            assert spy.live_hooks_for(runtime.close) == 1
            with StreamingSession([6, 6], b, seed=3, runtime=runtime) as session:
                _ingest_some(session)
                session.sync()
            runtime.close()
            assert spy.live_hooks_for(runtime.close) == 0
        runtime.close()
        assert spy.live_hooks_for(runtime.close) == 0

    def test_persistent_runtime_registers_once(self, b, monkeypatch):
        spy = _AtexitSpy(monkeypatch)
        with Runtime("threads", max_workers=2, persistent=True) as runtime:
            for _ in range(3):
                with StreamingSession([6, 6], b, seed=3, runtime=runtime) as session:
                    _ingest_some(session)
                    session.sync()
                assert spy.live_hooks_for(runtime.close) == 1
        assert spy.live_hooks_for(runtime.close) == 0


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm")
class TestShmHygiene:
    def test_warm_ingest_close_loop_leaks_no_segments(self, b):
        before = set(os.listdir("/dev/shm"))
        for cycle in range(10):
            runtime = Runtime("threads", max_workers=2, persistent=True)
            session = StreamingSession([6, 6], b, seed=cycle, runtime=runtime)
            _ingest_some(session, seed=cycle)
            session.sync()
            session.close()
            runtime.close()
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"dangling /dev/shm segments: {sorted(leaked)}"

    def test_abandoned_session_segments_die_with_the_runtime(self, b):
        """A session never closed must not dangle past Runtime.close()."""
        before = set(os.listdir("/dev/shm"))
        runtime = Runtime("threads", max_workers=2, persistent=True)
        session = StreamingSession([6, 6], b, seed=1, runtime=runtime)
        _ingest_some(session)
        session.sync()
        runtime.close()  # session deliberately not closed first
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"dangling /dev/shm segments: {sorted(leaked)}"
        session.close()  # and the late close is still safe


class TestCloseStateMachine:
    def test_mutations_after_close_raise(self, b):
        session = StreamingSession([6, 6], b, seed=3)
        _ingest_some(session)
        session.sync()
        session.close()
        assert session.closed
        rng = np.random.default_rng(0)
        with pytest.raises(SessionClosedError, match="ingest"):
            session.ingest(0, [0], rng.integers(-1, 2, size=(1, N)))
        with pytest.raises(SessionClosedError, match="epoch"):
            session.end_epoch()
        with pytest.raises(SessionClosedError, match="drop"):
            session.drop_site(0)
        with pytest.raises(SessionClosedError, match="restore"):
            session.restore_site(0)

    def test_closed_session_remains_queryable(self, b):
        session = StreamingSession([6, 6], b, seed=3)
        _ingest_some(session)
        session.sync()
        live_before = session.live_lp_norm(p=2.0)
        result_before = session.lp_norm(p=2.0, epsilon=0.3)
        session.close()
        assert session.live_lp_norm(p=2.0) == live_before
        later = StreamingSession([6, 6], b, seed=3)
        _ingest_some(later)
        later.sync()
        later.close()
        assert later.lp_norm(p=2.0, epsilon=0.3).value == result_before.value

    def test_close_is_idempotent(self, b):
        session = StreamingSession([6, 6], b, seed=3)
        _ingest_some(session)
        session.close()
        session.close()
        with Runtime("threads", max_workers=2, persistent=True) as runtime:
            resident = StreamingSession([6, 6], b, seed=3, runtime=runtime)
            _ingest_some(resident)
            resident.sync()
            resident.close()
            resident.close()

    def test_pending_deltas_do_not_survive_close(self, b):
        session = StreamingSession([6, 6], b, seed=3, refresh="threshold",
                                   threshold=float("inf"))
        _ingest_some(session)
        assert sum(s.pending_updates for s in session.sites) > 0
        session.close()
        for site in session.sites:
            assert site.pending_updates == 0
            assert site.pending_mass == 0.0

    def test_dropped_site_queue_is_cleared_on_close(self, b):
        session = StreamingSession([6, 6], b, seed=3, dropout="exclude")
        _ingest_some(session)
        session.drop_site(0)
        session.sync()  # site 0 cannot ship; its deltas stay queued
        assert session.sites[0].pending_updates > 0
        session.close()
        assert session.sites[0].pending_updates == 0
        assert session.sites[0].pending_mass == 0.0

    def test_shipped_counters_survive_close(self, b):
        session = StreamingSession([6, 6], b, seed=3)
        _ingest_some(session)
        session.sync()
        shipped = session.total_upload_bytes
        assert shipped > 0
        session.close()
        assert session.total_upload_bytes == shipped


class TestCloseOrdering:
    def test_runtime_close_then_session_close(self, b):
        runtime = Runtime("threads", max_workers=2, persistent=True)
        session = StreamingSession([6, 6], b, seed=3, runtime=runtime)
        _ingest_some(session)
        session.sync()
        runtime.close()
        session.close()  # must not raise on the dead pool/arena
        assert session.closed

    def test_session_close_detaches_from_the_runtime(self, b):
        with Runtime("threads", max_workers=2, persistent=True) as runtime:
            sessions = [
                StreamingSession([6, 6], b, seed=i, runtime=runtime)
                for i in range(3)
            ]
            assert runtime.resident_pool_count == 3
            assert len(runtime._adopted_arenas) == 3
            for session in sessions:
                _ingest_some(session)
                session.sync()
                session.close()
            # No pool or arena left behind in the shared runtime's tracking.
            assert runtime.resident_pool_count == 0
            assert runtime._resident_pools == []
            assert runtime._adopted_arenas == []

    def test_closed_pool_result_raises_not_indexerror(self, b):
        runtime = Runtime("processes", max_workers=2, persistent=True)
        try:
            session = StreamingSession([6, 6], b, seed=3, runtime=runtime)
            _ingest_some(session)
            session.sync()
            pool = session._resident.pool
            runtime.close()
            with pytest.raises(RuntimeError, match="closed"):
                pool.result(0)
            session.close()
        finally:
            runtime.close()
