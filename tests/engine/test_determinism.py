"""Transcript determinism: same seed => identical transcript, at every k.

For each engine protocol family and k in {1, 2, 4}, two runs with the same
seed must produce identical rounds, identical total bits (and their
per-label / per-round / per-link breakdowns), and identical outputs.  This
pins every source of randomness in the engine — the shared/private stream
spawning in ``StarTopology.build``, the vectorized Mersenne-61 ``KWiseHash``
fast path inside the sketches, and each protocol's private sampling — as
fully seed-determined, which is what makes the pinned-transcript tests
(``tests/test_engine_equivalence.py``) meaningful across environments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    StarBinaryHeavyHittersProtocol,
    StarExactL1Protocol,
    StarGeneralMatrixLinfProtocol,
    StarHeavyHittersProtocol,
    StarKappaApproxLinfProtocol,
    StarL0SamplingProtocol,
    StarL1SamplingProtocol,
    StarLpNormProtocol,
    StarTwoPlusEpsilonLinfProtocol,
)

SEED = 424242

#: (family id, protocol factory, needs-integer-workload)
FAMILIES = [
    ("lp-p0", lambda: StarLpNormProtocol(0.0, 0.4, seed=SEED), False),
    ("lp-p1", lambda: StarLpNormProtocol(1.0, 0.4, seed=SEED), False),
    ("lp-p2", lambda: StarLpNormProtocol(2.0, 0.4, seed=SEED), False),
    ("l0-sampling", lambda: StarL0SamplingProtocol(0.4, seed=SEED), False),
    ("l1-exact", lambda: StarExactL1Protocol(seed=SEED), False),
    ("l1-sampling", lambda: StarL1SamplingProtocol(seed=SEED), False),
    ("linf-2eps", lambda: StarTwoPlusEpsilonLinfProtocol(0.4, seed=SEED), False),
    ("linf-kappa", lambda: StarKappaApproxLinfProtocol(6, seed=SEED), False),
    ("linf-general", lambda: StarGeneralMatrixLinfProtocol(4, seed=SEED), True),
    ("hh-general", lambda: StarHeavyHittersProtocol(0.1, 0.05, seed=SEED), True),
    ("hh-binary", lambda: StarBinaryHeavyHittersProtocol(0.1, 0.05, seed=SEED), False),
]


@pytest.fixture(scope="module")
def binary_pair():
    rng = np.random.default_rng(31)
    n = 32
    a = (rng.uniform(size=(n, n)) < 0.15).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < 0.15).astype(np.int64)
    return a, b


@pytest.fixture(scope="module")
def integer_pair():
    rng = np.random.default_rng(32)
    n = 32
    a = rng.integers(0, 4, size=(n, n)).astype(np.int64)
    b = rng.integers(0, 4, size=(n, n)).astype(np.int64)
    return a, b


def assert_identical_transcripts(first, second):
    assert first.cost.rounds == second.cost.rounds
    assert first.cost.total_bits == second.cost.total_bits
    assert first.cost.breakdown == second.cost.breakdown
    assert first.cost.per_round == second.cost.per_round
    assert first.cost.link_bits == second.cost.link_bits
    assert first.cost.site_bits == second.cost.site_bits
    assert first.value == second.value


@pytest.mark.parametrize("k", [1, 2, 4])
@pytest.mark.parametrize(
    "factory, integer_workload",
    [(factory, integer) for _, factory, integer in FAMILIES],
    ids=[family for family, _, _ in FAMILIES],
)
def test_same_seed_same_transcript(
    factory, integer_workload, k, binary_pair, integer_pair
):
    a, b = integer_pair if integer_workload else binary_pair
    shards = np.array_split(a, k, axis=0)
    first = factory().run(shards, b)
    second = factory().run(shards, b)
    assert_identical_transcripts(first, second)


@pytest.mark.parametrize(
    "factory, integer_workload",
    [(factory, integer) for _, factory, integer in FAMILIES],
    ids=[family for family, _, _ in FAMILIES],
)
def test_two_party_view_same_seed_same_transcript(
    factory, integer_workload, binary_pair, integer_pair
):
    """The k = 1 Alice/Bob view is deterministic under the same seeds too."""
    a, b = integer_pair if integer_workload else binary_pair
    first = factory().run_two_party(a, b)
    second = factory().run_two_party(a, b)
    assert first.cost.rounds == second.cost.rounds
    assert first.cost.total_bits == second.cost.total_bits
    assert first.cost.breakdown == second.cost.breakdown
    assert first.value == second.value
