"""Partial-merge associativity over randomly shaped trees (hypothesis).

The tree's correctness argument leans on ONE algebraic fact: for every
mergeable sketch family, merging per-site partials in any nested grouping
yields bit-identical state to merging them flat.  The states are exact
integers carried in float64 (well within 2^53), so grouped addition is not
approximately equal — it is equal.  Hypothesis explores random tree shapes
(via :meth:`TreeSpec.from_grouping`), random site permutations, and random
update streams for all four mergeable families, both directly on the
sketches and end-to-end through :class:`TreeNetwork`'s staging drain.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.network import TreeNetwork
from repro.comm.tree import TreeSpec
from repro.sketch import AmsSketch, CountSketch, L0Sampler, L0Sketch

N = 48  # universe size shared by every family below

FAMILIES = {
    "ams": lambda rng: AmsSketch.for_accuracy(N, 0.5, rng),
    "l0": lambda rng: L0Sketch.for_accuracy(N, 0.5, rng),
    "sampler": lambda rng: L0Sampler(N, rng, repetitions=3),
    "countsketch": lambda rng: CountSketch(N, 16, 3, rng),
}


def _draw_grouping(draw, indices, depth=0):
    """A random nested grouping (the input language of ``from_grouping``)."""
    if len(indices) == 1:
        return indices[0]
    if depth >= 3 or draw(st.booleans()):
        return list(indices)
    n_cuts = draw(st.integers(1, min(3, len(indices) - 1)))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, len(indices) - 1),
                min_size=n_cuts,
                max_size=n_cuts,
                unique=True,
            )
        )
    )
    parts = [indices[a:b] for a, b in zip([0, *cuts], [*cuts, len(indices)])]
    return [_draw_grouping(draw, part, depth + 1) for part in parts]


@st.composite
def tree_and_updates(draw):
    k = draw(st.integers(2, 8))
    order = list(draw(st.permutations(range(k))))
    grouping = _draw_grouping(draw, order)
    if not isinstance(grouping, list):  # pragma: no cover - k >= 2 keeps lists
        grouping = [grouping]
    updates = [
        draw(
            st.lists(
                st.tuples(
                    st.integers(0, N - 1), st.integers(-5, 5).filter(bool)
                ),
                max_size=12,
            )
        )
        for _ in range(k)
    ]
    return k, grouping, updates


def _site_sketches(template, updates):
    sketches = []
    for stream in updates:
        sketch = template.empty_copy()
        if stream:
            indices = np.array([i for i, _ in stream], dtype=np.int64)
            values = np.array([v for _, v in stream], dtype=np.int64)
            sketch.update_many(indices, values)
        sketches.append(sketch)
    return sketches


def _flat_merge(template, sketches):
    merged = template.empty_copy()
    for sketch in sketches:
        merged.merge(sketch)
    return merged


def _tree_merge(template, node, sketches):
    """Merge along the grouping's shape: sub-lists merge before forwarding."""
    if isinstance(node, list):
        merged = template.empty_copy()
        for child in node:
            merged.merge(_tree_merge(template, child, sketches))
        return merged
    return sketches[node]


def _same_state(left, right):
    a, b = left.state_array(), right.state_array()
    if a is None or b is None:
        return a is None and b is None
    return np.array_equal(a, b)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@settings(max_examples=60, deadline=None)
@given(case=tree_and_updates())
def test_partial_merge_along_any_tree_shape_is_exact(family, case):
    k, grouping, updates = case
    template = FAMILIES[family](np.random.default_rng(7))
    sketches = _site_sketches(template, updates)
    flat = _flat_merge(template, sketches)
    tree = _tree_merge(template, grouping, sketches)
    assert _same_state(flat, tree)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@settings(max_examples=25, deadline=None)
@given(case=tree_and_updates())
def test_tree_network_drain_reproduces_the_flat_merge(family, case):
    """End to end through the metered overlay: sites upload their partials,
    the staged groups drain bottom-up, and folding the root's ingress
    payloads together equals the flat merge — for ANY tree shape."""
    k, grouping, updates = case
    site_names = [f"site-{i}" for i in range(k)]
    tree = TreeSpec.from_grouping(site_names, grouping)
    net = TreeNetwork(tree)
    template = FAMILIES[family](np.random.default_rng(7))
    sketches = _site_sketches(template, updates)
    for name, sketch in zip(site_names, sketches):
        net.send(name, tree.root, sketch, label="partial", bits=128)
    assert net.total_bits > 0  # property read forces the drain
    root_ingress = [
        message.payload
        for message in net.log.messages
        if message.receiver == tree.root
    ]
    assert len(root_ingress) == len(tree.children[tree.root])
    folded = template.empty_copy()
    for payload in root_ingress:
        folded.merge(payload)
    assert _same_state(folded, _flat_merge(template, sketches))
    # The sites' own sketches were never mutated by the aggregators.
    assert _same_state(_flat_merge(template, sketches), folded)
