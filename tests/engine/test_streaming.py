"""Streaming runtime: equivalence discipline, refresh policies, wire accounting.

The load-bearing pins:

* **Streamed == one-shot** (the PR's acceptance bar): a session that ingests
  shards over multiple epochs and syncs once at the end produces summaries,
  bit counts and estimates bit-identical to the one-shot engine protocols
  over the same data, at k in {1, 2, 4}.
* **Chunking invariance**: any random epoch chunking of the ingestion gives
  the same bytes-exact merged summaries and the same one-shot answers.
* **Refresh policies**: threshold-triggered refresh keeps quiet sites
  silent; the network meters exactly 8 bits per encoded byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.multiparty import ClusterEstimator


@pytest.fixture(scope="module")
def binary_pair():
    rng = np.random.default_rng(777)
    n = 48
    a = (rng.uniform(size=(n, n)) < 0.15).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < 0.15).astype(np.int64)
    return a, b


def ingest_in_chunks(session, shards, chunk_rng):
    """Feed every shard to its site in random-size epoch chunks."""
    max_rows = max(shard.shape[0] for shard in shards)
    position = [0] * len(shards)
    while any(position[i] < shards[i].shape[0] for i in range(len(shards))):
        for index, shard in enumerate(shards):
            if position[index] >= shard.shape[0]:
                continue
            take = int(chunk_rng.integers(1, max(2, max_rows // 3)))
            take = min(take, shard.shape[0] - position[index])
            rows = np.arange(position[index], position[index] + take)
            site = session.sites[index]
            session.ingest(index, site.row_offset + rows, shard[rows])
            position[index] += take
        session.end_epoch()


def assert_same_protocol_result(streamed, batch):
    assert streamed.value == batch.value
    assert streamed.cost.rounds == batch.cost.rounds
    assert streamed.cost.total_bits == batch.cost.total_bits
    assert streamed.cost.breakdown == batch.cost.breakdown
    assert streamed.cost.per_round == batch.cost.per_round
    assert streamed.cost.link_bits == batch.cost.link_bits


def merged_state_bytes(session, family):
    state = session.merged[family].state_array()
    return b"absent" if state is None else state.tobytes()


def one_shot_state_bytes(session, family, a):
    """Byte image of a one-shot sketching of the full matrix ``A``."""
    sketch = session.templates[family].empty_copy()
    sketch.update_many(np.arange(a.shape[0]), a.astype(np.int64))
    return sketch.state_array().tobytes()


class TestStreamedRunEqualsOneShot:
    """Acceptance pin: multi-epoch ingest + single final sync == one-shot."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_summaries_bits_and_estimates_bit_identical(self, binary_pair, k):
        a, b = binary_pair
        seed = 97
        batch = ClusterEstimator.from_matrix(a, b, k, seed=seed)
        # A threshold so high nothing ships mid-stream: the single final
        # sync is the only upload.
        session = batch.stream(refresh="threshold", threshold=float("inf"))

        chunk_rng = np.random.default_rng(1000 + k)
        ingest_in_chunks(session, batch.shards, chunk_rng)
        assert session.total_upload_bytes == 0  # nothing shipped yet
        report = session.sync()
        assert all(report.shipped.values())

        # Summaries: the coordinator's merged sketches equal a one-shot
        # sketching of the full matrix, byte for byte.
        for family in session.merged:
            assert merged_state_bytes(session, family) == one_shot_state_bytes(
                session, family, a
            )

        # Estimates and transcripts: every engine query matches the one-shot
        # cluster bit for bit (same values, bits, rounds, breakdowns).
        assert_same_protocol_result(session.join_size(0.3), batch.join_size(0.3))
        assert_same_protocol_result(session.l0_sample(0.3), batch.l0_sample(0.3))
        assert_same_protocol_result(
            session.heavy_hitters(0.1, 0.05), batch.heavy_hitters(0.1, 0.05)
        )

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_accumulated_shards_equal_batch_shards(self, binary_pair, k):
        a, b = binary_pair
        batch = ClusterEstimator.from_matrix(a, b, k, seed=3)
        session = batch.stream()
        ingest_in_chunks(session, batch.shards, np.random.default_rng(5))
        for accumulated, original in zip(session.shards(), batch.shards):
            np.testing.assert_array_equal(accumulated, original)
        assert session.is_binary == batch.is_binary


class TestChunkingInvariance:
    """Satellite: any epoch chunking yields bit-identical results."""

    @pytest.mark.parametrize("chunk_seed", [0, 1, 2])
    def test_random_chunkings_agree_with_batch(self, binary_pair, chunk_seed):
        a, b = binary_pair
        seed = 11
        batch = ClusterEstimator.from_matrix(a, b, 3, seed=seed)
        session = batch.stream()  # every-epoch refresh: many partial ships
        ingest_in_chunks(session, batch.shards, np.random.default_rng(chunk_seed))
        session.sync()

        # Merged summaries are chunking-invariant (linearity is exact on
        # integer updates), hence identical to the one-shot sketching.
        for family in session.merged:
            assert merged_state_bytes(session, family) == one_shot_state_bytes(
                session, family, a
            )
        assert_same_protocol_result(session.join_size(0.3), batch.join_size(0.3))

    def test_turnstile_deletions_cancel_exactly(self, binary_pair):
        a, b = binary_pair
        batch = ClusterEstimator.from_matrix(a, b, 2, seed=19)
        session = batch.stream()
        # Insert noise, ingest the real data, then delete the noise again.
        noise_rows = session.sites[0].row_offset + np.arange(4)
        noise = np.arange(4 * b.shape[0], dtype=np.int64).reshape(4, -1) % 5
        session.ingest(0, noise_rows, noise)
        session.end_epoch()
        ingest_in_chunks(session, batch.shards, np.random.default_rng(9))
        session.ingest(0, noise_rows, -noise)
        session.sync()
        for family in session.merged:
            assert merged_state_bytes(session, family) == one_shot_state_bytes(
                session, family, a
            )
        assert_same_protocol_result(session.join_size(0.3), batch.join_size(0.3))


class TestRefreshPolicies:
    def test_quiet_sites_stay_silent_under_threshold(self, binary_pair):
        a, b = binary_pair
        batch = ClusterEstimator.from_matrix(a, b, 2, seed=23)
        session = batch.stream(refresh="threshold", threshold=0.5)
        hot, quiet = session.sites[0], session.sites[1]

        # Epoch 1: both sites have pending mass; first ship is always
        # triggered (nothing shipped yet, so any drift exceeds it).
        session.ingest(0, [hot.row_offset], np.ones((1, b.shape[0]), dtype=np.int64))
        session.ingest(1, [quiet.row_offset], 10 * np.ones((1, b.shape[0]), dtype=np.int64))
        first = session.end_epoch()
        assert first.shipped == {hot.name: True, quiet.name: True}

        # Later epochs: the hot site's stream doubles every epoch, so its
        # relative drift keeps exceeding the threshold; the quiet site's
        # small constant drift decays below it.
        for epoch in range(3):
            session.ingest(
                0,
                [hot.row_offset],
                5 * 2**epoch * np.ones((1, b.shape[0]), dtype=np.int64),
            )
            session.ingest(1, [quiet.row_offset + 1], np.eye(1, b.shape[0], dtype=np.int64))
            report = session.end_epoch()
            assert report.shipped[hot.name]
            assert not report.shipped[quiet.name]

        # The quiet site's pending drift lands on sync.
        final = session.sync()
        assert final.shipped[quiet.name]

    def test_infinite_threshold_ships_only_on_sync(self, binary_pair):
        a, b = binary_pair
        session = ClusterEstimator.from_matrix(a, b, 2, seed=83).stream(
            refresh="threshold", threshold=float("inf")
        )
        session.ingest(
            0, [session.sites[0].row_offset], np.ones((1, b.shape[0]), dtype=np.int64)
        )
        assert session.end_epoch().total_bytes == 0  # even the first drift waits
        assert session.sync().total_bytes > 0

    def test_every_epoch_ships_only_sites_with_pending(self, binary_pair):
        a, b = binary_pair
        batch = ClusterEstimator.from_matrix(a, b, 2, seed=29)
        session = batch.stream()  # every-epoch
        session.ingest(
            0, [session.sites[0].row_offset], np.ones((1, b.shape[0]), dtype=np.int64)
        )
        report = session.end_epoch()
        assert report.shipped[session.sites[0].name]
        assert not report.shipped[session.sites[1].name]
        # An epoch with no pending updates ships nothing at all.
        assert session.end_epoch().total_bytes == 0

    def test_network_meters_eight_bits_per_encoded_byte(self, binary_pair):
        a, b = binary_pair
        batch = ClusterEstimator.from_matrix(a, b, 3, seed=31)
        session = batch.stream()
        ingest_in_chunks(session, batch.shards, np.random.default_rng(2))
        session.sync()
        total_bytes = session.history[-1].cumulative_bytes
        assert total_bytes > 0
        assert session.network.total_bits == 8 * total_bytes
        assert session.total_upload_bytes == total_bytes
        breakdown = session.network.bits_by_label()
        assert set(breakdown) == {"stream/delta"}
        # All traffic is upstream: the direction never flips, so the whole
        # stream occupies one aggregate round.
        assert session.network.rounds == 1

    def test_live_estimates_reflect_only_shipped_deltas(self, binary_pair):
        a, b = binary_pair
        batch = ClusterEstimator.from_matrix(a, b, 2, seed=37)
        session = batch.stream(refresh="threshold", threshold=float("inf"))
        assert session.live_lp_norm(2.0) == 0.0
        assert session.live_l0() == 0.0
        assert session.live_l0_sample().row is None
        assert session.live_heavy_hitters(0.1).pairs == set()
        ingest_in_chunks(session, batch.shards, np.random.default_rng(3))
        # Nothing shipped yet: the coordinator still sees an empty product.
        assert session.live_lp_norm(2.0) == 0.0
        session.sync()
        c = (a @ b).astype(float)
        assert session.live_lp_norm(2.0) == pytest.approx(float((c**2).sum()), rel=0.5)
        assert session.live_l0() == pytest.approx(np.count_nonzero(c), rel=0.5)
        assert session.live_lp_norm(0.0) == session.live_l0()


class TestLiveQueries:
    def test_live_sample_lands_on_the_support(self, binary_pair):
        a, b = binary_pair
        session = ClusterEstimator.from_matrix(a, b, 2, seed=41).stream(preload=True)
        c = a @ b
        outcome = session.live_l0_sample()
        assert outcome.row is not None
        assert c[outcome.row, outcome.col] != 0

    def test_live_heavy_hitters_find_a_planted_entry(self):
        rng = np.random.default_rng(43)
        n = 48
        a = (rng.uniform(size=(n, n)) < 0.05).astype(np.int64)
        b = (rng.uniform(size=(n, n)) < 0.05).astype(np.int64)
        a[5, :] = 1
        b[:, 9] = 1  # plant C[5, 9] = n, dominating ||C||_2^2
        session = ClusterEstimator.from_matrix(a, b, 3, seed=47).stream(preload=True)
        heavy = session.live_heavy_hitters(0.2)
        assert (5, 9) in heavy.pairs
        c = a @ b
        for i, j in heavy.pairs:
            assert c[i, j] ** 2 >= 0.05 * float((c.astype(float) ** 2).sum())

    def test_preload_warms_live_estimates(self, binary_pair):
        a, b = binary_pair
        session = ClusterEstimator.from_matrix(a, b, 2, seed=53).stream(preload=True)
        assert session.live_lp_norm(2.0) > 0
        assert session.history[0].cumulative_bytes > 0

    def test_unsupported_live_norm_is_rejected(self, binary_pair):
        a, b = binary_pair
        session = ClusterEstimator.from_matrix(a, b, 2, seed=59).stream()
        with pytest.raises(ValueError, match="p in"):
            session.live_lp_norm(1.0)
        with pytest.raises(ValueError, match="phi"):
            session.live_heavy_hitters(0.0)


class TestValidation:
    def test_constructor_rejects_bad_arguments(self, binary_pair):
        from repro.engine.streaming import StreamingSession

        _, b = binary_pair
        with pytest.raises(ValueError, match="row_counts"):
            StreamingSession([], b)
        with pytest.raises(ValueError, match="row_counts"):
            StreamingSession([0, 0], b)
        with pytest.raises(ValueError, match="refresh"):
            StreamingSession([4], b, refresh="sometimes")
        with pytest.raises(ValueError, match="threshold"):
            StreamingSession([4], b, threshold=-1.0)
        with pytest.raises(ValueError, match="threshold"):
            StreamingSession([4], b, threshold=float("nan"))
        with pytest.raises(ValueError, match="2-dimensional"):
            StreamingSession([4], b[0])
        with pytest.raises(ValueError, match="site names"):
            StreamingSession([4, 4], b, site_names=["only-one"])

    def test_ingest_rejects_bad_updates(self, binary_pair):
        a, b = binary_pair
        session = ClusterEstimator.from_matrix(a, b, 2, seed=61).stream()
        offset = session.sites[1].row_offset
        with pytest.raises(ValueError, match="site index"):
            session.ingest(5, [0], np.ones((1, b.shape[0]), dtype=np.int64))
        with pytest.raises(ValueError, match="integer"):
            session.ingest(0, [0], np.full((1, b.shape[0]), 0.5))
        with pytest.raises(ValueError, match="shape"):
            session.ingest(0, [0], np.ones((1, 3), dtype=np.int64))
        with pytest.raises(ValueError, match="range"):
            session.ingest(0, [offset], np.ones((1, b.shape[0]), dtype=np.int64))

    def test_preload_refuses_non_integral_shards(self):
        """Preload must not silently truncate fractional shards to integers."""
        cluster = ClusterEstimator(
            [np.array([[0.9, 2.5], [1.2, 0.0]])], np.eye(2, dtype=np.int64), seed=1
        )
        with pytest.raises(ValueError, match="integer"):
            cluster.stream(preload=True)

    def test_zero_row_sites_can_stream(self, binary_pair):
        """A cluster with an empty shard opens a session like any other."""
        a, b = binary_pair
        cluster = ClusterEstimator([a, np.zeros((0, b.shape[0]), dtype=np.int64)], b, seed=89)
        session = cluster.stream()
        site = session.sites[0]
        session.ingest(0, site.row_offset + np.arange(a.shape[0]), a)
        session.sync()
        assert_same_protocol_result(session.join_size(0.3), cluster.join_size(0.3))

    def test_integral_float_shards_are_accepted(self, binary_pair):
        """A 0/1 matrix held in a float dtype ingests like its int twin."""
        a, b = binary_pair
        float_cluster = ClusterEstimator.from_matrix(a.astype(float), b, 2, seed=71)
        int_session = ClusterEstimator.from_matrix(a, b, 2, seed=71).stream(
            preload=True
        )
        float_session = float_cluster.stream(preload=True)
        for family in int_session.merged:
            assert (
                float_session.merged[family].state_array().tobytes()
                == int_session.merged[family].state_array().tobytes()
            )

    def test_live_l0_does_not_truncate_float_b(self):
        """A fractional coordinator matrix must not be zeroed by the live path."""
        from repro.engine.streaming import StreamingSession

        n = 16
        session = StreamingSession([n], np.full((n, n), 0.5), seed=13)
        session.ingest(0, np.arange(n), np.eye(n, dtype=np.int64))
        session.sync()
        # C = 0.5 * ones: full support; a truncated B would report 0.
        assert session.live_l0() == pytest.approx(n * n, rel=0.5)
        assert session.live_l0() > 0

    def test_ingest_rejects_deltas_outside_exact_range(self, binary_pair):
        """Out-of-range deltas raise instead of silently wrapping/saturating."""
        a, b = binary_pair
        session = ClusterEstimator.from_matrix(a, b, 2, seed=73).stream()
        with pytest.raises(ValueError, match="float64-exact"):
            session.ingest(0, [0], np.full((1, b.shape[0]), 1e20))
        with pytest.raises(ValueError, match="float64-exact"):
            session.ingest(0, [0], np.full((1, b.shape[0]), 2**63 + 10, dtype=np.uint64))
        # The float64-exact bound applies to integer dtypes too: a 2**54
        # delta would round inside the float64 AMS/CountSketch states.
        with pytest.raises(ValueError, match="float64-exact"):
            session.ingest(0, [0], np.full((1, b.shape[0]), 2**54, dtype=np.int64))

    def test_is_binary_tracks_turnstile_deletions(self, binary_pair):
        """Deletions can restore binarity; the cached flag must follow."""
        a, b = binary_pair
        session = ClusterEstimator.from_matrix(a, b, 2, seed=79).stream()
        delta = np.zeros((1, b.shape[0]), dtype=np.int64)
        delta[0, 0] = 2
        session.ingest(0, [0], delta)
        assert not session.is_binary
        session.ingest(0, [0], -delta)
        assert session.is_binary

    def test_stream_facade_carries_seed_and_partition(self, binary_pair):
        a, b = binary_pair
        cluster = ClusterEstimator.from_matrix(a, b, 3, seed=67)
        session = cluster.stream()
        assert session.seed == cluster.seed == 67
        assert [site.num_rows for site in session.sites] == [
            shard.shape[0] for shard in cluster.shards
        ]
        assert session.num_sites == cluster.num_sites
