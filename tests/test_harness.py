"""Direct unit tests for the experiment harness metrics and helpers.

``relative_error`` / ``approx_ratio`` summarize every experiment table, so
their edge cases (negative truths, zeros, infinities, NaNs) are pinned here
explicitly — a silent NaN or a spurious inf in a summary column would
invalidate a whole report.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.harness import (
    approx_ratio,
    fit_power_law,
    format_table,
    relative_error,
)


class TestRelativeError:
    def test_exact_match(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_plain_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_both_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_truth_nonzero_estimate(self):
        assert relative_error(1.0, 0.0) == math.inf

    def test_negative_truth_uses_magnitude(self):
        assert relative_error(-9.0, -10.0) == pytest.approx(0.1)
        assert relative_error(-10.0, -10.0) == 0.0

    def test_sign_flip_is_a_large_error_not_a_negative_one(self):
        assert relative_error(10.0, -10.0) == pytest.approx(2.0)

    def test_infinite_truth(self):
        assert relative_error(math.inf, math.inf) == 0.0
        assert relative_error(-math.inf, -math.inf) == 0.0
        assert relative_error(5.0, math.inf) == math.inf
        assert relative_error(math.inf, -math.inf) == math.inf

    def test_infinite_estimate_finite_truth(self):
        assert relative_error(math.inf, 10.0) == math.inf

    def test_nan_propagates(self):
        assert math.isnan(relative_error(math.nan, 1.0))
        assert math.isnan(relative_error(1.0, math.nan))


class TestApproxRatio:
    def test_exact_match(self):
        assert approx_ratio(7.0, 7.0) == 1.0

    def test_symmetric(self):
        assert approx_ratio(20.0, 10.0) == approx_ratio(10.0, 20.0) == 2.0

    def test_both_zero(self):
        assert approx_ratio(0.0, 0.0) == 1.0

    def test_one_zero(self):
        assert approx_ratio(0.0, 3.0) == math.inf
        assert approx_ratio(3.0, 0.0) == math.inf

    def test_negative_pair_rated_by_magnitude(self):
        assert approx_ratio(-20.0, -10.0) == 2.0
        assert approx_ratio(-10.0, -10.0) == 1.0

    def test_sign_disagreement_is_inf(self):
        assert approx_ratio(-10.0, 10.0) == math.inf
        assert approx_ratio(10.0, -10.0) == math.inf

    def test_infinities(self):
        assert approx_ratio(math.inf, math.inf) == 1.0
        assert approx_ratio(-math.inf, -math.inf) == 1.0
        assert approx_ratio(math.inf, 10.0) == math.inf
        assert approx_ratio(math.inf, -math.inf) == math.inf

    def test_nan_propagates(self):
        assert math.isnan(approx_ratio(math.nan, 1.0))
        assert math.isnan(approx_ratio(1.0, math.nan))


class TestFitPowerLaw:
    def test_recovers_exponent(self):
        x = [1.0, 2.0, 4.0, 8.0]
        y = [3.0 * v**1.5 for v in x]
        alpha, c = fit_power_law(x, y)
        assert alpha == pytest.approx(1.5)
        assert c == pytest.approx(3.0)

    def test_rejects_nonpositive_data(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_columns_aligned(self):
        table = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1
