"""Tests for the remaining experiment drivers, the run_all CLI, and the public API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.experiments import (
    e06_linf_kappa,
    e07_linf_general,
    e08_hh_general,
    e09_hh_binary,
    e13_rectangular,
    e15_streaming_monitoring,
    e16_runtime_conditions,
    e17_robust_aggregation,
    e18_tree_scaling,
    run_all,
)


class TestRemainingDrivers:
    """Smoke tests for the drivers not covered in test_experiments.py."""

    def test_e06(self):
        report = e06_linf_kappa.run(n=64, kappas=(4.0, 8.0), seed=1)
        assert len(report.rows) == 2
        assert report.summary["all_within_kappa"]

    def test_e07(self):
        report = e07_linf_general.run(n=48, kappas=(2.0, 4.0), seed=2)
        assert report.summary["general_rounds"] == 1
        assert report.summary["general_bits_vs_kappa_exponent"] < 0

    def test_e08(self):
        report = e08_hh_general.run(
            n=64, phi=0.05, epsilons=(0.03,), seed=3, include_baseline=False
        )
        assert report.summary["min_recall"] == 1.0
        assert report.summary["min_soundness"] == 1.0

    def test_e09(self):
        report = e09_hh_binary.run(sizes=(48, 64), phi=0.05, epsilon=0.025, seed=4)
        assert report.summary["min_recall"] == 1.0

    def test_e13(self):
        report = e13_rectangular.run(n=48, m_values=(48, 96), epsilon=0.4, seed=5)
        assert report.summary["l1_always_exact"]

    def test_e15(self):
        # 5 epochs: enough for the quiet sites' drift to fall below the
        # threshold, so the strictly-fewer-bytes claim is exercised here in
        # tier-1, not only in the bench-smoke job.
        report = e15_streaming_monitoring.run(n=32, num_sites=4, epochs=5, seed=5)
        assert report.summary["threshold_strictly_fewer"]
        assert report.summary["sync_matches_one_shot"]
        assert len(report.rows) == 2 * 5  # two policies, five epochs

    def test_e15_degenerate_partition(self):
        """More sites than rows: zero-row sites are skipped, not crashed on."""
        report = e15_streaming_monitoring.run(n=2, num_sites=3, epochs=2, seed=1)
        assert report.summary["sync_matches_one_shot"]

    def test_e16(self):
        report = e16_runtime_conditions.run(
            n=32, num_sites=4, latencies=(0.0, 0.01), seed=9
        )
        assert report.summary["bits_invariant_under_conditions"]
        assert report.summary["latency_slope_matches_rounds"]
        assert report.summary["straggler_dominates_makespan"]
        assert report.summary["dropout_fail_raises"]
        assert report.summary["streaming_recovers_bit_exact"]

    def test_e17(self):
        report = e17_robust_aggregation.run(
            rows_per_site=160, n=48, num_sites=8, max_corrupt=2, seed=17
        )
        assert report.summary["flip_sign_f2_trimmed_within_bound"]
        assert report.summary["flip_sign_f2_plain_violates_bound"]
        assert report.summary["quorum_makespan_strictly_decreasing"]
        assert report.summary["quorum_f_max_speedup"] > 1.0

    def test_e18(self):
        report = e18_tree_scaling.run(
            k_values=(16, 1_000),
            fan_outs=(2, 8),
            per_site_bits=8_192,
            anchor_sites=8,
            anchor_fan_out=2,
            seed=18,
        )
        assert report.summary["max_root_link_bits_k_invariant"]
        assert report.summary["root_ingress_tracks_fan_out"]
        assert report.summary["flat_root_ingress_tracks_k"]
        assert report.summary["tree_beats_flat_at_1e3"]
        assert report.summary["anchor_bit_identical"]
        scaling = [row for row in report.rows if row["scenario"] == "scaling"]
        assert {row["fan_out"] for row in scaling} == {"flat", 2, 8}


class TestRunAll:
    def test_run_all_subset(self):
        reports = run_all.run_all([lambda: e06_linf_kappa.run(n=48, kappas=(4.0, 8.0), seed=6)])
        assert len(reports) == 1
        assert reports[0].experiment == "E6"

    def test_to_markdown(self):
        reports = run_all.run_all([lambda: e06_linf_kappa.run(n=48, kappas=(4.0,), seed=7)])
        document = run_all.to_markdown(reports)
        assert "# Experiment results" in document
        assert "## E6" in document
        assert "Summary:" in document

    def test_main_writes_file(self, tmp_path, monkeypatch):
        target = tmp_path / "results.md"
        monkeypatch.setattr(
            run_all,
            "ALL_DRIVERS",
            [lambda: e06_linf_kappa.run(n=48, kappas=(4.0,), seed=8)],
        )
        exit_code = run_all.main(["--out", str(target)])
        assert exit_code == 0
        assert target.exists()
        assert "## E6" in target.read_text()

    def test_driver_registry_covers_every_experiment(self):
        # Check the registry size and module names statically (running every
        # driver here would duplicate the smoke tests above).
        assert len(run_all.ALL_DRIVERS) == 20
        module_names = {driver.__module__.rsplit(".", 1)[-1] for driver in run_all.ALL_DRIVERS}
        assert {
            "e01_lp_norm",
            "e13_rectangular",
            "e14_multiparty_scaling",
            "e15_streaming_monitoring",
            "e16_runtime_conditions",
            "e17_robust_aggregation",
            "e18_tree_scaling",
            "a1_beta_ablation",
        }.issubset(module_names)


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_facade_round_trip_via_top_level_import(self):
        rng = np.random.default_rng(0)
        a = (rng.uniform(size=(24, 24)) < 0.2).astype(int)
        b = (rng.uniform(size=(24, 24)) < 0.2).astype(int)
        estimator = repro.MatrixProductEstimator(a, b, seed=1)
        result = estimator.natural_join_size()
        assert result.value == float((a @ b).sum())

    def test_protocol_classes_exported(self):
        assert repro.LpNormProtocol is not None
        assert repro.BinaryHeavyHittersProtocol is not None
        with pytest.raises(ValueError):
            repro.LpNormProtocol(5.0, 0.1)
