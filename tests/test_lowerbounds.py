"""Tests for the lower-bound hard instances and reductions (Section 4.2 / 4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lowerbounds.disj import (
    DisjInstance,
    disj_to_linf_matrices,
    random_disj_instance,
)
from repro.lowerbounds.gap_linf import gap_linf_to_matrices, random_gap_linf_instance
from repro.lowerbounds.sum_problem import (
    paper_beta,
    paper_k,
    sample_sum_instance,
    sum_to_linf_matrices,
)


class TestDisjReduction:
    def test_forced_intersecting_instance(self):
        instance = random_disj_instance(64, force_intersecting=True, seed=0)
        assert instance.intersecting

    def test_forced_disjoint_instance(self):
        instance = random_disj_instance(64, force_intersecting=False, seed=1)
        assert not instance.intersecting

    def test_matrices_are_binary_and_square(self):
        instance = random_disj_instance(16, seed=2)
        a, b = disj_to_linf_matrices(instance)
        assert a.shape == (8, 8)
        assert b.shape == (8, 8)
        assert set(np.unique(a)).issubset({0, 1})
        assert set(np.unique(b)).issubset({0, 1})

    def test_product_embeds_block_sum(self):
        instance = random_disj_instance(64, seed=3)
        a, b = disj_to_linf_matrices(instance)
        c = a @ b
        half = 8
        expected = instance.x.reshape(half, half) + instance.y.reshape(half, half)
        assert np.array_equal(c[:half, :half], expected)
        assert c[half:, :].sum() == 0
        assert c[:, half:].sum() == 0

    @pytest.mark.parametrize("intersecting", [True, False])
    def test_promise_gap(self, intersecting):
        for seed in range(10):
            instance = random_disj_instance(
                100, force_intersecting=intersecting, seed=seed, density=0.3
            )
            a, b = disj_to_linf_matrices(instance)
            linf = (a @ b).max()
            if intersecting:
                assert linf == 2
            else:
                assert linf <= 1

    def test_non_square_length_rejected(self):
        instance = DisjInstance(x=np.zeros(10, dtype=int), y=np.zeros(10, dtype=int))
        with pytest.raises(ValueError):
            disj_to_linf_matrices(instance)


class TestGapLinfReduction:
    def test_promise_respected_by_generator(self):
        far = random_gap_linf_instance(64, kappa=8, far=True, seed=0)
        close = random_gap_linf_instance(64, kappa=8, far=False, seed=1)
        assert far.is_far
        assert not close.is_far
        assert np.max(np.abs(close.x - close.y)) <= 1

    def test_small_kappa_rejected(self):
        with pytest.raises(ValueError):
            random_gap_linf_instance(64, kappa=1, far=True)

    @pytest.mark.parametrize("far", [True, False])
    def test_reduction_gap(self, far):
        for seed in range(10):
            instance = random_gap_linf_instance(144, kappa=10, far=far, seed=seed)
            a, b = gap_linf_to_matrices(instance)
            linf = np.max(np.abs(a @ b))
            if far:
                assert linf >= 10
            else:
                assert linf <= 1

    def test_non_square_length_rejected(self):
        instance = random_gap_linf_instance(144, kappa=4, far=True, seed=2)
        instance.x = instance.x[:10]
        instance.y = instance.y[:10]
        with pytest.raises(ValueError):
            gap_linf_to_matrices(instance)


class TestSumReduction:
    def test_paper_parameters(self):
        beta = paper_beta(1024)
        assert 0 < beta <= 1
        assert paper_k(1024, 4.0) >= 1

    def test_forced_sum_values(self):
        one = sample_sum_instance(64, 4.0, force_sum=1, beta_constant=2.0, seed=0)
        zero = sample_sum_instance(64, 4.0, force_sum=0, beta_constant=2.0, seed=1)
        assert one.sum_value == 1
        assert zero.sum_value == 0

    def test_matrices_shapes_and_binarity(self):
        instance = sample_sum_instance(48, 4.0, force_sum=1, beta_constant=2.0, seed=2)
        a, b = sum_to_linf_matrices(instance)
        assert a.shape == (48, 48)
        assert b.shape == (48, 48)
        assert set(np.unique(a)).issubset({0, 1})
        assert set(np.unique(b)).issubset({0, 1})

    def test_one_side_lower_bound(self):
        """Equation (9): SUM = 1 forces an entry of at least n/k."""
        for seed in range(4):
            instance = sample_sum_instance(
                256, 4.0, force_sum=1, beta_constant=0.2, seed=seed
            )
            a, b = sum_to_linf_matrices(instance)
            c = a @ b
            assert c.max() >= instance.n // instance.k
            # The special block's diagonal entry witnesses the bound.
            special = instance.special_block
            assert c[special, special] >= instance.n // instance.k

    def test_zero_side_block_structure(self):
        """When SUM = 0 no block intersects, so every diagonal entry is 0
        (the nu distribution never produces a (1,1) coordinate)."""
        for seed in range(4):
            instance = sample_sum_instance(
                256, 4.0, force_sum=0, beta_constant=0.2, seed=100 + seed
            )
            a, b = sum_to_linf_matrices(instance)
            c = a @ b
            assert np.all(np.diag(c)[: instance.n] == 0)
            assert instance.sum_value == 0

    def test_special_entry_beats_average_background(self):
        """Expectation side of equations (8)/(9): the special entry is at
        least n/k while the *average* off-diagonal entry is at most
        2*beta^2*n, the quantity the paper's Chernoff bound concentrates
        around.  (The worst-case off-diagonal entry needs the asymptotic
        beta constant; experiment E11 reports it rather than asserting it.)"""
        instance = sample_sum_instance(256, 4.0, force_sum=1, beta_constant=0.2, seed=5)
        a, b = sum_to_linf_matrices(instance)
        c = a @ b
        off_diag = c[~np.eye(c.shape[0], dtype=bool)]
        mean_background = float(off_diag.mean())
        special_value = float(c[instance.special_block, instance.special_block])
        assert mean_background <= 2 * instance.beta**2 * instance.n
        assert special_value >= instance.n // instance.k
        assert special_value > 2 * mean_background
