"""Tests for the experiment harness and (smoke tests of) the drivers."""

from __future__ import annotations

import math

import pytest

from repro.experiments import harness
from repro.experiments import (
    a1_beta_ablation,
    a2_universe_sampling,
    e01_lp_norm,
    e02_round_separation,
    e03_l1_exact,
    e04_l0_sampling,
    e05_linf_2eps,
    e10_lb_disj,
    e11_lb_sum,
    e12_lb_gap_linf,
)


class TestHarnessHelpers:
    def test_relative_error(self):
        assert harness.relative_error(110, 100) == pytest.approx(0.1)
        assert harness.relative_error(0, 0) == 0.0
        assert harness.relative_error(1, 0) == math.inf

    def test_approx_ratio(self):
        assert harness.approx_ratio(50, 100) == 2.0
        assert harness.approx_ratio(200, 100) == 2.0
        assert harness.approx_ratio(0, 0) == 1.0
        assert harness.approx_ratio(0, 5) == math.inf

    def test_fit_power_law_recovers_exponent(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x**1.5 for x in xs]
        alpha, c = harness.fit_power_law(xs, ys)
        assert alpha == pytest.approx(1.5)
        assert c == pytest.approx(3.0)

    def test_fit_power_law_validation(self):
        with pytest.raises(ValueError):
            harness.fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            harness.fit_power_law([1.0, -1.0], [1.0, 2.0])

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}]
        table = harness.format_table(rows)
        assert "a" in table and "b" in table
        assert "2.346" in table
        assert harness.format_table([]) == "(no rows)"

    def test_experiment_report_table(self):
        report = harness.ExperimentReport(
            experiment="X", claim="c", rows=[{"k": 1}], summary={"ok": True}
        )
        assert "k" in report.table()
        assert "Experiment X" in str(report)


class TestDriverSmoke:
    """Each driver runs on a tiny workload and produces a coherent report."""

    def test_e01(self):
        report = e01_lp_norm.run(sizes=(32,), epsilons=(0.5,), ps=(0.0,), seed=1)
        assert report.rows
        assert report.summary["rounds"] == 2

    def test_e02(self):
        report = e02_round_separation.run(n=48, epsilons=(0.6, 0.3), seed=2)
        assert len(report.rows) == 2
        assert report.summary["baseline_minus_ours_exponent"] is not None

    def test_e03(self):
        report = e03_l1_exact.run(sizes=(32, 64), samples_per_size=5, seed=3)
        assert report.summary["all_exact"]

    def test_e04(self):
        report = e04_l0_sampling.run(n=32, num_samples=20, seed=4)
        assert report.rows[0]["failures"] <= 20

    def test_e05(self):
        report = e05_linf_2eps.run(sizes=(48, 64), seed=5)
        assert report.summary["max_approx_ratio"] < 10

    def test_e10(self):
        report = e10_lb_disj.run(half_sizes=(8,), instances_per_size=6, seed=6)
        assert report.summary["gap_always_holds"]

    def test_e11(self):
        report = e11_lb_sum.run(n=128, instances=4, seed=7)
        assert report.summary["gap_holds_fraction"] >= 0.75

    def test_e12(self):
        report = e12_lb_gap_linf.run(half_sizes=(8,), instances_per_size=6, seed=8)
        assert report.summary["gap_always_holds"]

    def test_a1(self):
        report = a1_beta_ablation.run(n=48, epsilons=(0.5, 0.3), seed=9)
        assert report.summary["max_ratio"] > 1.0

    def test_a2(self):
        report = a2_universe_sampling.run(n=64, kappas=(8.0,), seed=10)
        assert report.rows
