"""Tests for the per-item index-exchange primitive shared by Algorithms 2/3/5.2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.channel import Channel
from repro.comm.party import Party
from repro.core.exchange import exchange_item_supports
from repro.matrices import random_binary_pair


def _make_parties(a, b):
    channel = Channel()
    alice = Party("alice", a, channel, rng=np.random.default_rng(0))
    bob = Party("bob", b, channel, rng=np.random.default_rng(1))
    return alice, bob, channel


class TestCorrectness:
    def test_shares_sum_to_product(self):
        a, b = random_binary_pair(40, density=0.15, seed=60)
        alice, bob, _ = _make_parties(a, b)
        c_alice, c_bob, _ = exchange_item_supports(alice, bob, a, b)
        assert np.array_equal(c_alice + c_bob, a @ b)

    def test_subsampled_matrix_respected(self):
        a, b = random_binary_pair(40, density=0.2, seed=61)
        a_sub = a.copy()
        a_sub[:, ::2] = 0
        alice, bob, _ = _make_parties(a, b)
        c_alice, c_bob, _ = exchange_item_supports(alice, bob, a_sub, b)
        assert np.array_equal(c_alice + c_bob, a_sub @ b)

    def test_empty_inputs(self):
        a = np.zeros((8, 8), dtype=np.int64)
        b = np.zeros((8, 8), dtype=np.int64)
        alice, bob, _ = _make_parties(a, b)
        c_alice, c_bob, info = exchange_item_supports(alice, bob, a, b)
        assert c_alice.sum() == 0
        assert c_bob.sum() == 0
        assert info["exchanged_indices"] == 0

    def test_dimension_mismatch_rejected(self):
        a = np.ones((4, 5), dtype=np.int64)
        b = np.ones((4, 4), dtype=np.int64)
        alice, bob, _ = _make_parties(a, b)
        with pytest.raises(ValueError):
            exchange_item_supports(alice, bob, a, b)

    def test_rectangular_inputs(self):
        rng = np.random.default_rng(62)
        a = (rng.uniform(size=(20, 30)) < 0.2).astype(np.int64)
        b = (rng.uniform(size=(30, 10)) < 0.2).astype(np.int64)
        alice, bob, _ = _make_parties(a, b)
        c_alice, c_bob, _ = exchange_item_supports(alice, bob, a, b)
        assert (c_alice + c_bob).shape == (20, 10)
        assert np.array_equal(c_alice + c_bob, a @ b)


class TestCostAccounting:
    def test_exchanged_volume_is_min_side(self):
        a, b = random_binary_pair(32, density=0.2, seed=63)
        alice, bob, _ = _make_parties(a, b)
        _, _, info = exchange_item_supports(alice, bob, a, b)
        u = a.sum(axis=0)
        v = b.sum(axis=1)
        active = (u > 0) & (v > 0)
        assert info["exchanged_indices"] == int(np.minimum(u, v)[active].sum())

    def test_channel_records_both_directions(self):
        a, b = random_binary_pair(32, density=0.2, seed=64)
        alice, bob, channel = _make_parties(a, b)
        exchange_item_supports(alice, bob, a, b, label_prefix="x/")
        labels = {message.label for message in channel.messages}
        assert "x/coordinator-item-lists" in labels
        assert "x/site-item-lists" in labels

    def test_send_u_counts_flag_controls_first_message(self):
        a, b = random_binary_pair(32, density=0.2, seed=65)
        alice, bob, channel = _make_parties(a, b)
        exchange_item_supports(alice, bob, a, b, send_u_counts=False)
        labels = {message.label for message in channel.messages}
        assert not any("item-counts" in label for label in labels)

    def test_items_split_between_parties(self):
        a, b = random_binary_pair(48, density=0.25, seed=66)
        alice, bob, _ = _make_parties(a, b)
        _, _, info = exchange_item_supports(alice, bob, a, b)
        u = a.sum(axis=0)
        v = b.sum(axis=1)
        active = int(np.count_nonzero((u > 0) & (v > 0)))
        assert info["alice_items"] + info["bob_items"] == active
