"""Tests for Algorithm 1 (Theorem 3.1): the two-round l_p norm protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lp_norm import LpNormProtocol
from repro.matrices import exact_lp_pp, product, random_binary_pair


class TestValidation:
    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            LpNormProtocol(-0.5, 0.3)
        with pytest.raises(ValueError):
            LpNormProtocol(2.5, 0.3)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            LpNormProtocol(1.0, 0.0)
        with pytest.raises(ValueError):
            LpNormProtocol(1.0, 1.5)

    def test_invalid_rho_rejected(self):
        with pytest.raises(ValueError):
            LpNormProtocol(1.0, 0.3, rho_constant=0)

    def test_dimension_mismatch_rejected(self):
        protocol = LpNormProtocol(1.0, 0.3, seed=0)
        with pytest.raises(ValueError):
            protocol.run(np.ones((4, 5)), np.ones((4, 4)))


class TestAccuracy:
    @pytest.mark.parametrize("p", [0.0, 1.0, 2.0])
    def test_binary_workload_accuracy(self, p):
        a, b = random_binary_pair(80, density=0.1, seed=11)
        truth = exact_lp_pp(product(a, b), p)
        result = LpNormProtocol(p, 0.3, seed=4).run(a, b)
        assert result.value == pytest.approx(truth, rel=0.3)

    def test_p_half_runs(self):
        a, b = random_binary_pair(48, density=0.1, seed=12)
        truth = exact_lp_pp(product(a, b), 0.5)
        result = LpNormProtocol(0.5, 0.4, seed=5).run(a, b)
        assert result.value == pytest.approx(truth, rel=0.6)

    def test_integer_matrices(self, rng):
        a = rng.integers(0, 3, size=(48, 48))
        b = rng.integers(0, 3, size=(48, 48))
        truth = exact_lp_pp(product(a, b), 2.0)
        result = LpNormProtocol(2.0, 0.3, seed=6).run(a, b)
        assert result.value == pytest.approx(truth, rel=0.4)

    def test_zero_product(self):
        a = np.zeros((16, 16), dtype=np.int64)
        b = np.zeros((16, 16), dtype=np.int64)
        result = LpNormProtocol(1.0, 0.5, seed=7).run(a, b)
        assert result.value == 0.0

    def test_estimates_are_reproducible_with_seed(self):
        a, b = random_binary_pair(48, density=0.1, seed=13)
        first = LpNormProtocol(0.0, 0.3, seed=42).run(a, b)
        second = LpNormProtocol(0.0, 0.3, seed=42).run(a, b)
        assert first.value == second.value
        assert first.cost.total_bits == second.cost.total_bits


class TestCommunication:
    def test_two_rounds(self):
        a, b = random_binary_pair(48, density=0.1, seed=14)
        result = LpNormProtocol(0.0, 0.4, seed=8).run(a, b)
        assert result.cost.rounds == 2

    def test_cost_breakdown_has_both_rounds(self):
        a, b = random_binary_pair(48, density=0.1, seed=15)
        result = LpNormProtocol(1.0, 0.4, seed=9).run(a, b)
        labels = set(result.cost.breakdown)
        assert any("round1" in label for label in labels)
        assert any("round2" in label for label in labels)

    def test_round1_cost_scales_like_inverse_epsilon(self):
        """Round-1 sketch has O(1/beta^2) = O(1/eps) rows (not 1/eps^2)."""
        a, b = random_binary_pair(64, density=0.1, seed=16)
        loose = LpNormProtocol(2.0, 0.8, seed=10).run(a, b)
        tight = LpNormProtocol(2.0, 0.2, seed=10).run(a, b)
        loose_r1 = sum(v for k, v in loose.cost.breakdown.items() if "round1" in k)
        tight_r1 = sum(v for k, v in tight.cost.breakdown.items() if "round1" in k)
        ratio = tight_r1 / loose_r1
        assert ratio < (0.8 / 0.2) ** 2  # strictly better than 1/eps^2 scaling
        assert ratio >= 1.0

    def test_sampled_rows_reported_in_details(self):
        a, b = random_binary_pair(48, density=0.1, seed=17)
        result = LpNormProtocol(0.0, 0.4, seed=11).run(a, b)
        assert result.details["sampled_rows"] >= 0
        assert result.details["rho"] == pytest.approx(48.0 / 0.4)


class TestStatisticalBehaviour:
    def test_median_estimate_close_over_repetitions(self):
        a, b = random_binary_pair(64, density=0.1, seed=18)
        truth = exact_lp_pp(product(a, b), 0.0)
        estimates = [
            LpNormProtocol(0.0, 0.3, seed=seed).run(a, b).value for seed in range(9)
        ]
        assert np.median(estimates) == pytest.approx(truth, rel=0.2)
