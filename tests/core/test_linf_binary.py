"""Tests for Algorithms 2 and 3: l_inf estimation on binary matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.linf_binary import KappaApproxLinfProtocol, TwoPlusEpsilonLinfProtocol
from repro.matrices import (
    exact_linf,
    planted_max_overlap_pair,
    product,
    random_binary_pair,
)


class TestTwoPlusEpsilonValidation:
    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            TwoPlusEpsilonLinfProtocol(0.0)

    def test_non_binary_rejected(self):
        protocol = TwoPlusEpsilonLinfProtocol(0.25, seed=0)
        with pytest.raises(ValueError):
            protocol.run(np.array([[2, 0], [0, 1]]), np.eye(2, dtype=int))

    def test_dimension_mismatch_rejected(self):
        protocol = TwoPlusEpsilonLinfProtocol(0.25, seed=0)
        with pytest.raises(ValueError):
            protocol.run(np.ones((2, 3), dtype=int), np.ones((2, 2), dtype=int))


class TestTwoPlusEpsilonAccuracy:
    def test_planted_max_found_within_factor(self):
        a, b, _ = planted_max_overlap_pair(96, overlap=30, seed=40)
        truth = exact_linf(product(a, b))
        result = TwoPlusEpsilonLinfProtocol(0.25, seed=1).run(a, b)
        assert result.value >= truth / (2 * (1 + 0.25))
        assert result.value <= truth * (1 + 0.25)

    def test_sparse_random_within_factor(self):
        a, b = random_binary_pair(64, density=0.1, seed=41)
        truth = exact_linf(product(a, b))
        result = TwoPlusEpsilonLinfProtocol(0.25, seed=2).run(a, b)
        assert result.value >= truth / 2.5
        assert result.value <= truth * 1.5

    def test_dense_workload_with_downsampling(self):
        """Force the level machinery on by using a small gamma.

        The planted entry is much larger than the post-sampling threshold, so
        even after down-scaling the rescaled estimate stays within a small
        constant factor of the truth (the regime of Lemma 4.2).
        """
        a, b, _ = planted_max_overlap_pair(128, overlap=100, background_density=0.3, seed=42)
        truth = exact_linf(product(a, b))
        result = TwoPlusEpsilonLinfProtocol(0.5, gamma=3.0, seed=3).run(a, b)
        assert result.details["level"] > 0
        assert result.details["keep_rate"] < 1.0
        assert truth / 2.5 <= result.value <= truth * 2.5

    def test_empty_matrices(self):
        result = TwoPlusEpsilonLinfProtocol(0.25, seed=4).run(
            np.zeros((8, 8), dtype=int), np.zeros((8, 8), dtype=int)
        )
        assert result.value == 0.0

    def test_three_rounds_or_fewer(self):
        a, b = random_binary_pair(48, density=0.1, seed=43)
        result = TwoPlusEpsilonLinfProtocol(0.25, seed=5).run(a, b)
        assert result.cost.rounds <= 4  # paper: 3 rounds (+1 for the final max merge)

    def test_cheaper_than_naive_for_larger_n(self):
        a, b, _ = planted_max_overlap_pair(256, overlap=60, seed=44)
        result = TwoPlusEpsilonLinfProtocol(0.5, seed=6).run(a, b)
        naive_bits = a.size  # 1 bit per entry
        assert result.cost.total_bits < naive_bits


class TestKappaApprox:
    def test_invalid_kappa_rejected(self):
        with pytest.raises(ValueError):
            KappaApproxLinfProtocol(0.5)

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            KappaApproxLinfProtocol(4, seed=0).run(
                np.array([[3]]), np.array([[1]])
            )

    @pytest.mark.parametrize("kappa", [4.0, 8.0])
    def test_within_kappa_factor(self, kappa):
        a, b = random_binary_pair(96, density=0.3, seed=45)
        truth = exact_linf(product(a, b))
        result = KappaApproxLinfProtocol(kappa, seed=7).run(a, b)
        assert truth / kappa <= result.value <= truth * kappa

    def test_zero_matrices_output_zero(self):
        result = KappaApproxLinfProtocol(4, seed=8).run(
            np.zeros((8, 8), dtype=int), np.zeros((8, 8), dtype=int)
        )
        assert result.value == 0.0

    def test_degenerate_universe_sampling_outputs_one(self):
        """With huge kappa the universe sample can be empty; output falls back to 1."""
        a, b = random_binary_pair(32, density=0.05, seed=46)
        if product(a, b).max() == 0:
            pytest.skip("degenerate draw")
        result = KappaApproxLinfProtocol(10_000, alpha_constant=0.1, seed=9).run(a, b)
        assert result.value >= 0.0

    def test_communication_decreases_with_kappa(self):
        a, b = random_binary_pair(128, density=0.35, seed=47)
        cheap = KappaApproxLinfProtocol(32, seed=10).run(a, b)
        precise = KappaApproxLinfProtocol(4, seed=10).run(a, b)
        assert cheap.cost.total_bits <= precise.cost.total_bits

    def test_constant_rounds(self):
        a, b = random_binary_pair(64, density=0.3, seed=48)
        result = KappaApproxLinfProtocol(8, seed=11).run(a, b)
        assert result.cost.rounds <= 5
