"""Tests for Theorem 4.8(1): l_inf for general integer matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.linf_general import GeneralMatrixLinfProtocol
from repro.matrices import exact_linf, integer_matrix_pair, product


class TestValidation:
    def test_invalid_kappa_rejected(self):
        with pytest.raises(ValueError):
            GeneralMatrixLinfProtocol(0.5)

    def test_invalid_rows_per_block_rejected(self):
        with pytest.raises(ValueError):
            GeneralMatrixLinfProtocol(2, rows_per_block=0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GeneralMatrixLinfProtocol(2, seed=0).run(np.ones((3, 4)), np.ones((3, 3)))


class TestAccuracy:
    @pytest.mark.parametrize("kappa", [2.0, 4.0])
    def test_within_kappa_on_planted_instance(self, kappa):
        a, b = integer_matrix_pair(64, planted_value=6, seed=50)
        truth = exact_linf(product(a, b))
        result = GeneralMatrixLinfProtocol(kappa, seed=1).run(a, b)
        # Allow a small slack for the AMS constant-factor error.
        assert truth / (1.5 * kappa) <= result.value <= 1.5 * kappa * truth

    def test_estimate_upper_bounds_linf_typically(self):
        """Block l_2 >= block l_inf, so the estimate should rarely undershoot."""
        a, b = integer_matrix_pair(48, planted_value=5, seed=51)
        truth = exact_linf(product(a, b))
        result = GeneralMatrixLinfProtocol(3, seed=2).run(a, b)
        assert result.value >= 0.5 * truth

    def test_zero_matrices(self):
        result = GeneralMatrixLinfProtocol(2, seed=3).run(
            np.zeros((16, 16), dtype=int), np.zeros((16, 16), dtype=int)
        )
        assert result.value == pytest.approx(0.0)

    def test_binary_matrices_also_accepted(self, small_binary_pair):
        a, b = small_binary_pair
        truth = exact_linf(product(a, b))
        result = GeneralMatrixLinfProtocol(3, seed=4).run(a, b)
        assert result.value >= truth / 5


class TestCommunication:
    def test_one_round(self):
        a, b = integer_matrix_pair(32, seed=52)
        result = GeneralMatrixLinfProtocol(2, seed=5).run(a, b)
        assert result.cost.rounds == 1

    def test_cost_decreases_quadratically_with_kappa(self):
        a, b = integer_matrix_pair(64, seed=53)
        small_kappa = GeneralMatrixLinfProtocol(2, seed=6).run(a, b)
        large_kappa = GeneralMatrixLinfProtocol(6, seed=6).run(a, b)
        ratio = small_kappa.cost.total_bits / large_kappa.cost.total_bits
        assert ratio > (6 / 2) ** 2 * 0.4  # roughly (kappa2/kappa1)^2

    def test_block_structure_in_details(self):
        a, b = integer_matrix_pair(32, seed=54)
        result = GeneralMatrixLinfProtocol(3, seed=7).run(a, b)
        assert result.details["block_size"] == 9
        assert result.details["num_blocks"] == int(np.ceil(32 / 9))
