"""Tests for Remark 2 (exact l_1) and Remark 3 (l_1-sampling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.l1_exact import ExactL1Protocol, L1SamplingProtocol
from repro.matrices import product, random_binary_pair


class TestExactL1:
    def test_exact_on_binary(self):
        a, b = random_binary_pair(64, density=0.1, seed=20)
        truth = float(product(a, b).sum())
        result = ExactL1Protocol(seed=0).run(a, b)
        assert result.value == truth

    def test_exact_on_nonnegative_integers(self, rng):
        a = rng.integers(0, 5, size=(32, 32))
        b = rng.integers(0, 5, size=(32, 32))
        result = ExactL1Protocol(seed=0).run(a, b)
        assert result.value == float(product(a, b).sum())

    def test_one_round(self):
        a, b = random_binary_pair(32, density=0.1, seed=21)
        result = ExactL1Protocol(seed=0).run(a, b)
        assert result.cost.rounds == 1

    def test_cost_linear_in_n(self):
        small_a, small_b = random_binary_pair(64, density=0.1, seed=22)
        big_a, big_b = random_binary_pair(256, density=0.1, seed=22)
        small = ExactL1Protocol(seed=0).run(small_a, small_b)
        big = ExactL1Protocol(seed=0).run(big_a, big_b)
        # 4x the size should cost ~4x the bits, far below the 16x of n^2.
        assert big.cost.total_bits < 8 * small.cost.total_bits

    def test_negative_entries_rejected(self):
        a = np.array([[1, -1], [0, 1]])
        b = np.ones((2, 2), dtype=int)
        with pytest.raises(ValueError):
            ExactL1Protocol(seed=0).run(a, b)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExactL1Protocol(seed=0).run(np.ones((2, 3)), np.ones((2, 2)))

    def test_zero_matrices(self):
        result = ExactL1Protocol(seed=0).run(np.zeros((8, 8)), np.zeros((8, 8)))
        assert result.value == 0.0


class TestL1Sampling:
    def test_sample_is_a_nonzero_entry(self):
        a, b = random_binary_pair(48, density=0.15, seed=23)
        c = product(a, b)
        result = L1SamplingProtocol(seed=1).run(a, b)
        sample = result.value
        assert sample.success
        assert c[sample.row, sample.col] > 0

    def test_one_round(self):
        a, b = random_binary_pair(32, density=0.15, seed=24)
        result = L1SamplingProtocol(seed=2).run(a, b)
        assert result.cost.rounds == 1

    def test_zero_product_fails_gracefully(self):
        result = L1SamplingProtocol(seed=3).run(np.zeros((8, 8)), np.zeros((8, 8)))
        assert not result.value.success

    def test_distribution_tracks_entry_values(self):
        """Entries with larger values should be sampled more often."""
        a = np.zeros((4, 3), dtype=np.int64)
        b = np.zeros((3, 4), dtype=np.int64)
        # C[0,0] = 3 (via three shared items), C[1,1] = 1.
        a[0, :3] = 1
        b[:3, 0] = 1
        a[1, 0] = 1
        b[0, 1] = 1
        counts = {(0, 0): 0, (1, 1): 0}
        trials = 200
        for seed in range(trials):
            sample = L1SamplingProtocol(seed=seed).run(a, b).value
            if sample.success and (sample.row, sample.col) in counts:
                counts[(sample.row, sample.col)] += 1
        assert counts[(0, 0)] > 2 * counts[(1, 1)]

    def test_negative_entries_rejected(self):
        a = np.array([[1, -1], [0, 1]])
        with pytest.raises(ValueError):
            L1SamplingProtocol(seed=0).run(a, np.ones((2, 2), dtype=int))
