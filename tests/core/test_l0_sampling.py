"""Tests for Theorem 3.2: one-round l_0-sampling of the support of AB."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.l0_sampling import L0SamplingProtocol
from repro.matrices import product, random_binary_pair


class TestValidation:
    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            L0SamplingProtocol(0.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            L0SamplingProtocol(0.3, seed=0).run(np.ones((3, 4)), np.ones((3, 3)))


class TestSampling:
    def test_sample_lands_in_support_with_correct_value(self):
        a, b = random_binary_pair(48, density=0.1, seed=30)
        c = product(a, b)
        result = L0SamplingProtocol(0.3, seed=1).run(a, b)
        sample = result.value
        assert sample.success
        assert c[sample.row, sample.col] != 0
        assert sample.value == c[sample.row, sample.col]

    def test_one_round(self):
        a, b = random_binary_pair(32, density=0.1, seed=31)
        result = L0SamplingProtocol(0.3, seed=2).run(a, b)
        assert result.cost.rounds == 1

    def test_zero_product_fails_gracefully(self):
        result = L0SamplingProtocol(0.3, seed=3).run(
            np.zeros((16, 16), dtype=np.int64), np.zeros((16, 16), dtype=np.int64)
        )
        assert not result.value.success

    def test_high_success_rate(self):
        a, b = random_binary_pair(40, density=0.1, seed=32)
        successes = sum(
            L0SamplingProtocol(0.3, seed=seed).run(a, b).value.success
            for seed in range(20)
        )
        assert successes >= 17

    def test_coverage_of_support(self):
        """Repeated samples should cover a decent fraction of a small support."""
        rng = np.random.default_rng(33)
        a = np.zeros((24, 24), dtype=np.int64)
        b = np.zeros((24, 24), dtype=np.int64)
        for _ in range(10):
            a[rng.integers(24), rng.integers(24)] = 1
            b[rng.integers(24), rng.integers(24)] = 1
        c = product(a, b)
        support = set(zip(*np.nonzero(c)))
        if not support:
            pytest.skip("degenerate draw with empty support")
        seen = set()
        for seed in range(60):
            sample = L0SamplingProtocol(0.3, seed=seed).run(a, b).value
            if sample.success:
                seen.add((sample.row, sample.col))
        assert len(seen) >= min(len(support), 2)
        assert seen.issubset(support)

    def test_details_contain_column_mass(self):
        a, b = random_binary_pair(32, density=0.1, seed=34)
        result = L0SamplingProtocol(0.3, seed=5).run(a, b)
        assert result.details["column_mass"] > 0
