"""Tests for the heavy-hitter protocols (Algorithm 4 / Theorem 5.1 and Theorem 5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heavy_hitters_binary import BinaryHeavyHittersProtocol
from repro.core.heavy_hitters_general import GeneralHeavyHittersProtocol
from repro.matrices import (
    exact_heavy_hitters,
    planted_heavy_hitters_pair,
    product,
    random_binary_pair,
)


@pytest.fixture
def planted():
    a, b, pairs = planted_heavy_hitters_pair(
        72, num_heavy=2, heavy_overlap=30, background_density=0.02, seed=70
    )
    return a, b, pairs


class TestGeneralValidation:
    def test_invalid_phi_eps_rejected(self):
        with pytest.raises(ValueError):
            GeneralHeavyHittersProtocol(0.1, 0.2)
        with pytest.raises(ValueError):
            GeneralHeavyHittersProtocol(1.5, 0.1)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            GeneralHeavyHittersProtocol(0.2, 0.1, p=3.0)

    def test_negative_matrices_rejected(self):
        protocol = GeneralHeavyHittersProtocol(0.2, 0.1, seed=0)
        with pytest.raises(ValueError):
            protocol.run(np.array([[-1, 0], [0, 1]]), np.eye(2, dtype=int))

    def test_dimension_mismatch_rejected(self):
        protocol = GeneralHeavyHittersProtocol(0.2, 0.1, seed=0)
        with pytest.raises(ValueError):
            protocol.run(np.ones((2, 3), dtype=int), np.ones((2, 2), dtype=int))


class TestGeneralCorrectness:
    def test_planted_heavy_hitters_recovered(self, planted):
        a, b, _pairs = planted
        c = product(a, b)
        phi, eps = 0.05, 0.02
        must = exact_heavy_hitters(c, phi, p=1)
        may = exact_heavy_hitters(c, phi - eps, p=1)
        result = GeneralHeavyHittersProtocol(phi, eps, seed=1).run(a, b)
        reported = result.value.pairs
        assert must.issubset(reported)
        assert reported.issubset(may)

    def test_no_heavy_hitters_when_flat(self):
        a, b = random_binary_pair(64, density=0.1, seed=71)
        c = product(a, b)
        phi = 0.2
        if exact_heavy_hitters(c, phi, p=1):
            pytest.skip("unexpectedly concentrated product")
        result = GeneralHeavyHittersProtocol(phi, 0.1, seed=2).run(a, b)
        assert result.value.pairs == set()

    def test_zero_product(self):
        result = GeneralHeavyHittersProtocol(0.2, 0.1, seed=3).run(
            np.zeros((8, 8), dtype=int), np.zeros((8, 8), dtype=int)
        )
        assert len(result.value) == 0

    def test_estimates_close_to_truth(self, planted):
        a, b, _ = planted
        c = product(a, b)
        result = GeneralHeavyHittersProtocol(0.05, 0.02, seed=4).run(a, b)
        for pair, estimate in result.value.estimates.items():
            assert estimate == pytest.approx(float(c[pair]), rel=0.5)

    def test_constant_rounds(self, planted):
        a, b, _ = planted
        result = GeneralHeavyHittersProtocol(0.05, 0.02, seed=5).run(a, b)
        assert result.cost.rounds <= 6

    def test_integer_matrices_supported(self, rng):
        a = rng.integers(0, 3, size=(40, 40))
        b = rng.integers(0, 3, size=(40, 40))
        a[0, :] = 2
        b[:, 0] = 2
        c = product(a, b)
        phi, eps = 0.02, 0.01
        must = exact_heavy_hitters(c, phi, p=1)
        result = GeneralHeavyHittersProtocol(phi, eps, seed=6).run(a, b)
        assert must.issubset(result.value.pairs)

    def test_p2_variant_runs(self, planted):
        a, b, _ = planted
        c = product(a, b)
        phi, eps = 0.1, 0.05
        must = exact_heavy_hitters(c, phi, p=2)
        result = GeneralHeavyHittersProtocol(phi, eps, p=2.0, seed=7).run(a, b)
        assert must.issubset(result.value.pairs)


class TestBinaryProtocol:
    def test_validation(self):
        with pytest.raises(ValueError):
            BinaryHeavyHittersProtocol(0.1, 0.2)
        with pytest.raises(ValueError):
            BinaryHeavyHittersProtocol(0.2, 0.1, p=0.0)
        with pytest.raises(ValueError):
            BinaryHeavyHittersProtocol(0.2, 0.1, seed=0).run(
                np.array([[2, 0], [0, 1]]), np.eye(2, dtype=int)
            )

    def test_planted_heavy_hitters_recovered(self, planted):
        a, b, _ = planted
        c = product(a, b)
        phi, eps = 0.05, 0.02
        must = exact_heavy_hitters(c, phi, p=1)
        may = exact_heavy_hitters(c, phi - eps, p=1)
        result = BinaryHeavyHittersProtocol(phi, eps, seed=8).run(a, b)
        reported = result.value.pairs
        assert must.issubset(reported)
        assert reported.issubset(may)

    def test_zero_product(self):
        result = BinaryHeavyHittersProtocol(0.2, 0.1, seed=9).run(
            np.zeros((8, 8), dtype=int), np.zeros((8, 8), dtype=int)
        )
        assert len(result.value) == 0

    def test_reported_set_sound_on_random_input(self):
        a, b = random_binary_pair(64, density=0.12, seed=72)
        c = product(a, b)
        phi, eps = 0.05, 0.02
        may = exact_heavy_hitters(c, phi - eps, p=1)
        result = BinaryHeavyHittersProtocol(phi, eps, seed=10).run(a, b)
        assert result.value.pairs.issubset(may)

    def test_constant_rounds(self, planted):
        a, b, _ = planted
        result = BinaryHeavyHittersProtocol(0.05, 0.02, seed=11).run(a, b)
        assert result.cost.rounds <= 8

    def test_details_reported(self, planted):
        a, b, _ = planted
        result = BinaryHeavyHittersProtocol(0.05, 0.02, seed=12).run(a, b)
        assert result.details["total_pp"] > 0
        assert 0 < result.details["beta"] <= 1
        assert result.details["verification_sample_size"] >= 8

    def test_p2_variant_runs(self, planted):
        a, b, _ = planted
        c = product(a, b)
        phi, eps = 0.1, 0.05
        must = exact_heavy_hitters(c, phi, p=2)
        result = BinaryHeavyHittersProtocol(phi, eps, p=2.0, seed=13).run(a, b)
        assert must.issubset(result.value.pairs)


class TestHeavyHitterOutputType:
    def test_container_behaviour(self, planted):
        a, b, _ = planted
        result = GeneralHeavyHittersProtocol(0.05, 0.02, seed=14).run(a, b)
        output = result.value
        assert len(output) == len(output.pairs)
        for pair in output:
            assert pair in output
