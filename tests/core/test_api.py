"""Tests for the MatrixProductEstimator facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import MatrixProductEstimator
from repro.matrices import exact_linf, exact_lp_pp, integer_matrix_pair, product, random_binary_pair


@pytest.fixture
def binary_estimator():
    a, b = random_binary_pair(64, density=0.1, seed=80)
    return MatrixProductEstimator(a, b, seed=1), product(a, b)


class TestConstruction:
    def test_rejects_non_matrices(self):
        with pytest.raises(ValueError):
            MatrixProductEstimator(np.ones(3), np.ones((3, 3)))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            MatrixProductEstimator(np.ones((3, 4)), np.ones((3, 3)))

    def test_detects_binary_inputs(self):
        a, b = random_binary_pair(16, seed=81)
        assert MatrixProductEstimator(a, b).is_binary
        a_int, b_int = integer_matrix_pair(16, seed=82)
        assert not MatrixProductEstimator(a_int, b_int).is_binary


class TestQueries:
    def test_join_size(self, binary_estimator):
        estimator, c = binary_estimator
        result = estimator.join_size(epsilon=0.3)
        assert result.value == pytest.approx(exact_lp_pp(c, 0), rel=0.35)

    def test_natural_join_size_exact(self, binary_estimator):
        estimator, c = binary_estimator
        assert estimator.natural_join_size().value == exact_lp_pp(c, 1)

    def test_lp_norm_p2(self, binary_estimator):
        estimator, c = binary_estimator
        result = estimator.lp_norm(p=2, epsilon=0.3)
        assert result.value == pytest.approx(exact_lp_pp(c, 2), rel=0.4)

    def test_linf_binary(self, binary_estimator):
        estimator, c = binary_estimator
        result = estimator.linf(epsilon=0.25)
        truth = exact_linf(c)
        assert truth / 2.5 <= result.value <= truth * 1.5

    def test_linf_rejects_integer_inputs(self):
        a, b = integer_matrix_pair(16, seed=83)
        estimator = MatrixProductEstimator(a, b, seed=2)
        with pytest.raises(ValueError):
            estimator.linf()

    def test_linf_kappa_dispatches_on_matrix_type(self):
        a_bin, b_bin = random_binary_pair(32, density=0.2, seed=84)
        a_int, b_int = integer_matrix_pair(32, seed=85)
        binary_result = MatrixProductEstimator(a_bin, b_bin, seed=3).linf_kappa(4)
        general_result = MatrixProductEstimator(a_int, b_int, seed=3).linf_kappa(4)
        assert binary_result.value >= 0
        assert general_result.value >= 0
        assert general_result.cost.rounds == 1

    def test_l0_sample_lands_in_support(self, binary_estimator):
        estimator, c = binary_estimator
        sample = estimator.l0_sample(epsilon=0.3).value
        assert sample.success
        assert c[sample.row, sample.col] != 0

    def test_l1_sample_lands_in_support(self, binary_estimator):
        estimator, c = binary_estimator
        sample = estimator.l1_sample().value
        assert sample.success
        assert c[sample.row, sample.col] != 0

    def test_heavy_hitters_dispatch(self, binary_estimator):
        estimator, _ = binary_estimator
        result = estimator.heavy_hitters(phi=0.1, epsilon=0.05)
        assert hasattr(result.value, "pairs")

    def test_each_query_reports_cost(self, binary_estimator):
        estimator, _ = binary_estimator
        result = estimator.join_size(epsilon=0.4)
        assert result.cost.total_bits > 0
        assert result.cost.rounds >= 1

    def test_seeded_estimators_reproducible(self):
        a, b = random_binary_pair(48, density=0.1, seed=86)
        first = MatrixProductEstimator(a, b, seed=9).join_size(epsilon=0.3)
        second = MatrixProductEstimator(a, b, seed=9).join_size(epsilon=0.3)
        assert first.value == second.value
