"""Tests for the median-trick success-probability booster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.boosting import MedianBoostedProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.matrices import exact_lp_pp, product, random_binary_pair


class TestConstruction:
    def test_invalid_repetitions_rejected(self):
        with pytest.raises(ValueError):
            MedianBoostedProtocol(lambda seed: LpNormProtocol(0.0, 0.3, seed=seed), 0)

    def test_repetitions_for_scales_with_n(self):
        small = MedianBoostedProtocol.repetitions_for(16)
        large = MedianBoostedProtocol.repetitions_for(4096)
        assert large > small
        assert large % 2 == 1  # odd, so the median is a single run's output
        assert MedianBoostedProtocol.repetitions_for(1) == 1


class TestBoosting:
    @pytest.fixture(scope="class")
    def workload(self):
        a, b = random_binary_pair(64, density=0.1, seed=200)
        return a, b, exact_lp_pp(product(a, b), 0)

    def test_median_estimate_accurate(self, workload):
        a, b, truth = workload
        boosted = MedianBoostedProtocol(
            lambda seed: LpNormProtocol(0.0, 0.3, seed=seed), repetitions=7, seed=1
        )
        result = boosted.run(a, b)
        assert result.value == pytest.approx(truth, rel=0.25)
        assert len(result.details["estimates"]) == 7

    def test_cost_scales_with_repetitions(self, workload):
        a, b, _ = workload
        single = LpNormProtocol(0.0, 0.3, seed=2).run(a, b)
        boosted = MedianBoostedProtocol(
            lambda seed: LpNormProtocol(0.0, 0.3, seed=seed), repetitions=5, seed=2
        ).run(a, b)
        assert boosted.cost.total_bits == pytest.approx(5 * single.cost.total_bits, rel=0.3)
        # Copies run in parallel: the round count does not grow.
        assert boosted.cost.rounds == single.cost.rounds

    def test_breakdown_aggregated(self, workload):
        a, b, _ = workload
        boosted = MedianBoostedProtocol(
            lambda seed: LpNormProtocol(0.0, 0.3, seed=seed), repetitions=3, seed=3
        ).run(a, b)
        assert sum(boosted.cost.breakdown.values()) == boosted.cost.total_bits

    def test_boosting_reduces_spread(self, workload):
        """The spread of boosted estimates across seeds is no larger than the
        spread of single-run estimates (median of independent copies)."""
        a, b, truth = workload
        single_errors = [
            abs(LpNormProtocol(0.0, 0.4, seed=seed).run(a, b).value - truth) / truth
            for seed in range(8)
        ]
        boosted_errors = [
            abs(
                MedianBoostedProtocol(
                    lambda s: LpNormProtocol(0.0, 0.4, seed=s), repetitions=5, seed=seed
                )
                .run(a, b)
                .value
                - truth
            )
            / truth
            for seed in range(8)
        ]
        assert np.max(boosted_errors) <= np.max(single_errors) + 1e-9

    def test_deterministic_given_seed(self, workload):
        a, b, _ = workload
        factory = lambda seed: LpNormProtocol(0.0, 0.3, seed=seed)  # noqa: E731
        first = MedianBoostedProtocol(factory, repetitions=3, seed=9).run(a, b)
        second = MedianBoostedProtocol(factory, repetitions=3, seed=9).run(a, b)
        assert first.value == second.value
