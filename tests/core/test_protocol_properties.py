"""Property-based tests (hypothesis) for protocol-level invariants.

The protocols are randomized estimators, so these properties target what must
hold on *every* run regardless of the random coins: exactness of the exact
protocols, additive splits summing to the true product, samples landing in
the support, cost accounting consistency, and scale equivariance.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.l0_sampling import L0SamplingProtocol
from repro.core.l1_exact import ExactL1Protocol, L1SamplingProtocol
from repro.core.linf_binary import TwoPlusEpsilonLinfProtocol
from repro.distmm.sparse_product import SparseProductProtocol

DIM = 12

binary_matrices = hnp.arrays(
    dtype=np.int64, shape=(DIM, DIM), elements=st.integers(min_value=0, max_value=1)
)
nonneg_matrices = hnp.arrays(
    dtype=np.int64, shape=(DIM, DIM), elements=st.integers(min_value=0, max_value=3)
)


@st.composite
def matrix_pairs(draw, strategy=binary_matrices):
    return draw(strategy), draw(strategy)


class TestExactProtocols:
    @given(pair=matrix_pairs(nonneg_matrices))
    @settings(max_examples=30, deadline=None)
    def test_remark2_always_exact(self, pair):
        a, b = pair
        result = ExactL1Protocol(seed=0).run(a, b)
        assert result.value == float((a @ b).sum())
        assert result.cost.rounds == 1

    @given(pair=matrix_pairs(nonneg_matrices))
    @settings(max_examples=20, deadline=None)
    def test_sparse_product_shares_always_sum_to_product(self, pair):
        a, b = pair
        c_alice, c_bob = SparseProductProtocol(seed=1).run(a, b).value
        assert np.array_equal(c_alice + c_bob, a @ b)


class TestSamplingProtocols:
    @given(pair=matrix_pairs(binary_matrices), seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_l1_sample_in_support_or_failure(self, pair, seed):
        a, b = pair
        c = a @ b
        sample = L1SamplingProtocol(seed=seed).run(a, b).value
        if c.sum() == 0:
            assert not sample.success
        elif sample.success:
            assert c[sample.row, sample.col] > 0

    @given(pair=matrix_pairs(binary_matrices), seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_l0_sample_in_support_or_failure(self, pair, seed):
        a, b = pair
        c = a @ b
        sample = L0SamplingProtocol(0.5, seed=seed).run(a, b).value
        if sample.success:
            assert c[sample.row, sample.col] != 0
            assert sample.value == c[sample.row, sample.col]


class TestCostAccounting:
    @given(pair=matrix_pairs(binary_matrices))
    @settings(max_examples=20, deadline=None)
    def test_breakdown_sums_to_total(self, pair):
        a, b = pair
        result = TwoPlusEpsilonLinfProtocol(0.5, seed=3).run(a, b)
        assert sum(result.cost.breakdown.values()) == result.cost.total_bits
        assert result.cost.alice_bits + result.cost.bob_bits == result.cost.total_bits
        assert result.cost.rounds >= 1

    @given(pair=matrix_pairs(binary_matrices), seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_linf_estimate_never_negative_and_zero_iff_zero(self, pair, seed):
        a, b = pair
        c = a @ b
        result = TwoPlusEpsilonLinfProtocol(0.5, seed=seed).run(a, b)
        assert result.value >= 0.0
        if c.max() == 0:
            assert result.value == 0.0


class TestUpperBoundInvariants:
    @given(pair=matrix_pairs(binary_matrices), seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_linf_without_downsampling_is_2_approximation(self, pair, seed):
        """With the default (huge) gamma no sampling happens, so the 2-way
        split is the only loss: the estimate is in [linf/2, linf] exactly."""
        a, b = pair
        c = a @ b
        if c.max() == 0:
            return
        result = TwoPlusEpsilonLinfProtocol(0.5, seed=seed).run(a, b)
        assert result.details["keep_rate"] == 1.0
        assert c.max() / 2 <= result.value <= c.max()
