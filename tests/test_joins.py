"""Tests for the relational layer (Relation, joins, DistributedJoinEstimator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.joins import (
    DistributedJoinEstimator,
    Relation,
    composition,
    composition_size,
    natural_join,
    natural_join_size,
)


@pytest.fixture
def skills_and_jobs():
    """The paper's applicant/job example in miniature."""
    applicants = Relation.from_pairs(
        [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)], num_left=3, num_right=4
    )
    jobs = Relation.from_pairs(
        [(0, 0), (1, 0), (1, 1), (2, 1), (3, 2)], num_left=4, num_right=3
    )
    return applicants, jobs


class TestRelation:
    def test_from_pairs_and_contains(self):
        rel = Relation.from_pairs([(0, 1), (2, 3)], num_left=4, num_right=5)
        assert (0, 1) in rel
        assert (1, 1) not in rel
        assert len(rel) == 2

    def test_out_of_domain_pair_rejected(self):
        with pytest.raises(ValueError):
            Relation.from_pairs([(5, 0)], num_left=3, num_right=3)
        rel = Relation(num_left=3, num_right=3)
        with pytest.raises(ValueError):
            rel.add(0, 9)

    def test_matrix_round_trip(self):
        rel = Relation.from_pairs([(0, 2), (1, 0)], num_left=2, num_right=3)
        assert Relation.from_matrix(rel.to_matrix()).pairs == rel.pairs

    def test_random_relation_density(self):
        rel = Relation.random(50, 50, density=0.2, seed=0)
        assert len(rel) == pytest.approx(0.2 * 2500, rel=0.3)

    def test_left_and_right_sets(self):
        rel = Relation.from_pairs([(0, 1), (0, 2), (1, 2)], num_left=2, num_right=3)
        assert rel.left_sets() == {0: {1, 2}, 1: {2}}
        assert rel.right_sets() == {1: {0}, 2: {0, 1}}

    def test_iteration_sorted(self):
        rel = Relation.from_pairs([(1, 0), (0, 0)], num_left=2, num_right=1)
        assert list(rel) == [(0, 0), (1, 0)]

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            Relation(num_left=0, num_right=3)


class TestExactJoins:
    def test_composition_matches_matrix_l0(self, skills_and_jobs):
        left, right = skills_and_jobs
        c = left.to_matrix() @ right.to_matrix()
        assert composition_size(left, right) == int(np.count_nonzero(c))
        assert composition(left, right) == set(zip(*np.nonzero(c)))

    def test_natural_join_matches_matrix_l1(self, skills_and_jobs):
        left, right = skills_and_jobs
        c = left.to_matrix() @ right.to_matrix()
        assert natural_join_size(left, right) == int(c.sum())

    def test_natural_join_witnesses(self, skills_and_jobs):
        left, right = skills_and_jobs
        for x, y, z in natural_join(left, right):
            assert (x, y) in left
            assert (y, z) in right

    def test_incompatible_relations_rejected(self):
        left = Relation.random(4, 5, seed=1)
        right = Relation.random(6, 4, seed=2)
        with pytest.raises(ValueError):
            composition(left, right)
        with pytest.raises(ValueError):
            DistributedJoinEstimator(left, right)


class TestDistributedJoinEstimator:
    @pytest.fixture
    def estimator(self):
        left = Relation.random(72, 72, density=0.08, seed=3)
        right = Relation.random(72, 72, density=0.08, seed=4)
        return DistributedJoinEstimator(left, right, seed=7), left, right

    def test_composition_size_estimate(self, estimator):
        est, left, right = estimator
        truth = composition_size(left, right)
        result = est.composition_size(epsilon=0.3)
        assert result.value == pytest.approx(truth, rel=0.35)

    def test_natural_join_size_exact(self, estimator):
        est, left, right = estimator
        assert est.natural_join_size().value == natural_join_size(left, right)

    def test_max_overlap_within_factor(self, estimator):
        est, left, right = estimator
        truth = est.exact_sizes()["max_overlap"]
        result = est.max_overlap(epsilon=0.25)
        assert truth / 2.5 <= result.value <= truth * 1.5

    def test_sampled_matching_pair_is_in_composition(self, estimator):
        est, left, right = estimator
        sample = est.sample_matching_pair().value
        assert sample.success
        assert (sample.row, sample.col) in composition(left, right)

    def test_sampled_witness_is_in_composition(self, estimator):
        est, left, right = estimator
        sample = est.sample_join_witness().value
        assert sample.success
        assert (sample.row, sample.col) in composition(left, right)

    def test_heavy_overlaps_reported_with_estimates(self, estimator):
        est, _, _ = estimator
        result = est.heavy_overlaps(phi=0.05, epsilon=0.02)
        assert hasattr(result.value, "pairs")

    def test_exact_sizes_consistent(self, estimator):
        est, left, right = estimator
        sizes = est.exact_sizes()
        assert sizes["composition"] == composition_size(left, right)
        assert sizes["natural_join"] == natural_join_size(left, right)
