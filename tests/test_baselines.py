"""Tests for the baseline protocols ([16] one-round, naive, compressed matmul)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.countsketch_hh import CompressedMatMulHeavyHittersProtocol
from repro.baselines.naive import NaiveExactProtocol, NaiveLinfProtocol
from repro.baselines.one_round import OneRoundLpNormProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.matrices import (
    exact_heavy_hitters,
    exact_linf,
    exact_lp_pp,
    planted_heavy_hitters_pair,
    product,
    random_binary_pair,
    stats,
)


class TestOneRoundBaseline:
    def test_validation(self):
        with pytest.raises(ValueError):
            OneRoundLpNormProtocol(3.0, 0.3)
        with pytest.raises(ValueError):
            OneRoundLpNormProtocol(1.0, 0.0)
        with pytest.raises(ValueError):
            OneRoundLpNormProtocol(1.0, 0.3, seed=0).run(np.ones((2, 3)), np.ones((2, 2)))

    @pytest.mark.parametrize("p", [0.0, 1.0, 2.0])
    def test_accuracy(self, p):
        a, b = random_binary_pair(64, density=0.1, seed=100)
        truth = exact_lp_pp(product(a, b), p)
        result = OneRoundLpNormProtocol(p, 0.3, seed=1).run(a, b)
        assert result.value == pytest.approx(truth, rel=0.35)

    def test_single_round(self):
        a, b = random_binary_pair(32, density=0.1, seed=101)
        result = OneRoundLpNormProtocol(0.0, 0.3, seed=2).run(a, b)
        assert result.cost.rounds == 1

    def test_more_expensive_than_two_round_at_small_epsilon(self):
        a, b = random_binary_pair(64, density=0.1, seed=102)
        eps = 0.15
        baseline = OneRoundLpNormProtocol(0.0, eps, seed=3).run(a, b)
        ours = LpNormProtocol(0.0, eps, seed=3).run(a, b)
        assert baseline.cost.total_bits > ours.cost.total_bits


class TestNaiveBaselines:
    def test_exact_statistic(self):
        a, b = random_binary_pair(32, density=0.1, seed=103)
        protocol = NaiveExactProtocol(lambda c: stats.exact_lp_pp(c, 0), seed=0)
        result = protocol.run(a, b)
        assert result.value == exact_lp_pp(product(a, b), 0)

    def test_naive_linf_exact(self):
        a, b = random_binary_pair(32, density=0.2, seed=104)
        result = NaiveLinfProtocol(seed=0).run(a, b)
        assert result.value == exact_linf(product(a, b))

    def test_cost_is_n_squared_bits_for_binary(self):
        a, b = random_binary_pair(32, density=0.2, seed=105)
        result = NaiveLinfProtocol(seed=0).run(a, b)
        assert result.cost.total_bits == 32 * 32

    def test_one_round(self):
        a, b = random_binary_pair(16, density=0.2, seed=106)
        assert NaiveLinfProtocol(seed=0).run(a, b).cost.rounds == 1


class TestCompressedMatMulBaseline:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompressedMatMulHeavyHittersProtocol(0.1, 0.2)
        with pytest.raises(ValueError):
            CompressedMatMulHeavyHittersProtocol(0.1, 0.05, seed=0).run(
                np.ones((2, 3)), np.ones((2, 2))
            )

    def test_planted_heavy_hitters_found(self):
        a, b, _ = planted_heavy_hitters_pair(
            48, num_heavy=2, heavy_overlap=24, background_density=0.02, seed=107
        )
        c = product(a, b)
        phi, eps = 0.08, 0.04
        must = exact_heavy_hitters(c, phi, p=1)
        result = CompressedMatMulHeavyHittersProtocol(phi, eps, depth=5, seed=1).run(a, b)
        assert must.issubset(result.value.pairs)

    def test_zero_product(self):
        result = CompressedMatMulHeavyHittersProtocol(0.2, 0.1, seed=2).run(
            np.zeros((8, 8)), np.zeros((8, 8))
        )
        assert len(result.value) == 0

    def test_one_round_of_sketches(self):
        a, b = random_binary_pair(24, density=0.2, seed=108)
        result = CompressedMatMulHeavyHittersProtocol(0.2, 0.1, seed=3).run(a, b)
        assert result.cost.rounds == 1

    def test_cost_scales_with_width(self):
        a, b = random_binary_pair(24, density=0.2, seed=109)
        cheap = CompressedMatMulHeavyHittersProtocol(0.2, 0.1, width=16, seed=4).run(a, b)
        costly = CompressedMatMulHeavyHittersProtocol(0.2, 0.1, width=64, seed=4).run(a, b)
        assert costly.cost.total_bits > 2 * cheap.cost.total_bits
