"""E8 — Theorem 5.1: l_1-(phi,eps) heavy hitters for general matrices."""

from repro.experiments import e08_hh_general


def test_e08_hh_general(benchmark, once):
    report = once(
        benchmark,
        e08_hh_general.run,
        n=80,
        phi=0.05,
        epsilons=(0.04, 0.02),
        seed=8,
        include_baseline=True,
    )
    print()
    print(report)
    # Output-set contract: HH_phi ⊆ S ⊆ HH_{phi-eps}.
    assert report.summary["min_recall"] == 1.0
    assert report.summary["min_soundness"] == 1.0
    assert report.summary["rounds"] <= 6
    # The sampling+sparse-recovery protocol undercuts the CountSketch baseline.
    assert report.summary["ours_cheaper_than_baseline"]
