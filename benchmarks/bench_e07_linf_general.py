"""E7 — Theorem 4.8(1): kappa-approximation of ||AB||_inf for integer matrices."""

from repro.experiments import e07_linf_general


def test_e07_linf_general(benchmark, once):
    report = once(
        benchmark,
        e07_linf_general.run,
        n=96,
        kappas=(2.0, 3.0, 4.0, 6.0),
        seed=7,
    )
    print()
    print(report)
    assert report.summary["general_rounds"] == 1
    assert report.summary["all_general_within_2kappa"]
    # Communication falls roughly like 1/kappa^2 (exponent close to -2).
    assert report.summary["general_bits_vs_kappa_exponent"] < -1.2
