"""E3 — Remark 2/3: exact ||AB||_1 and l_1-sampling with O(n log n) bits."""

from repro.experiments import e03_l1_exact


def test_e03_l1_exact(benchmark, once):
    report = once(
        benchmark,
        e03_l1_exact.run,
        sizes=(64, 128, 256),
        samples_per_size=10,
        seed=3,
    )
    print()
    print(report)
    assert report.summary["all_exact"]
    assert report.summary["rounds"] == 1
    # Bits grow roughly linearly in n (exponent ~1, certainly far below 2).
    assert report.summary["bits_vs_n_exponent"] < 1.5
