"""E11 — Theorem 4.5 / Lemma 4.7: SUM reduction gap (kappa-approximation hardness)."""

from repro.experiments import e11_lb_sum


def test_e11_lb_sum(benchmark, once):
    report = once(
        benchmark,
        e11_lb_sum.run,
        n=256,
        kappa=4.0,
        beta_constant=0.2,
        instances=8,
        seed=11,
    )
    print()
    print(report)
    assert report.summary["gap_holds_fraction"] == 1.0
    # The special entry is well separated from the typical background entry.
    assert report.summary["median_special_over_typical"] >= 1.0
