"""A1 — ablation: beta = sqrt(eps) rough estimation + sampling vs beta = eps sketching."""

from repro.experiments import a1_beta_ablation


def test_a1_beta_ablation(benchmark, once):
    report = once(
        benchmark,
        a1_beta_ablation.run,
        n=96,
        epsilons=(0.4, 0.25, 0.15),
        seed=21,
    )
    print()
    print(report)
    # The direct-sketching variant pays an increasing factor as eps shrinks.
    assert report.summary["ratio_grows_as_eps_shrinks"]
    assert report.summary["max_ratio"] > 1.5
