"""E12 — Theorem 4.8(2): Gap-l_inf reduction for general integer matrices."""

from repro.experiments import e12_lb_gap_linf


def test_e12_lb_gap_linf(benchmark, once):
    report = once(
        benchmark,
        e12_lb_gap_linf.run,
        half_sizes=(8, 16, 32),
        kappa=8,
        instances_per_size=16,
        seed=12,
    )
    print()
    print(report)
    assert report.summary["gap_always_holds"]
