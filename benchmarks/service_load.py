#!/usr/bin/env python
"""Multi-tenant service load generator (ISSUE 8 acceptance harness).

Drives a :class:`~repro.service.tenancy.SessionManager` with an *open-loop*
arrival process: every tenant's update batches are stamped with exponential
inter-arrival times up front and the merged event stream is processed in
timestamp order, so a slow tenant cannot throttle the generator (the
classic closed-loop coordination bug in load tests).  Tenant sizes are
Zipf-skewed — a few whales, a long tail — matching the many-users shape
the paper's coordinator model targets.

Two entry points:

* ``python benchmarks/service_load.py`` — the full in-process run
  (default 1000 tenants).  Gates, hard:

  - the run completes (crash-freedom);
  - per-tenant ledger rows sum **exactly** to the aggregate, which equals
    the sum of every session's own network meters
    (:meth:`SessionManager.verify_accounting`);
  - quotas were actually enforced (throttled epochs + rejections > 0);
  - the metrics registry renders and parses back.

* ``python benchmarks/service_load.py --smoke`` — the CI leg: 50 tenants
  over a real loopback socket (``CoordinatorServer(num_sites=0)`` +
  :class:`~repro.service.client.ServiceClient` tenant routes), plus a raw
  HTTP ``GET /metrics`` scrape that must parse as Prometheus text format,
  plus the same quota-enforcement and accounting gates.

The library half (:func:`run_load`) is imported by
``benchmarks/run_benchmarks.py --service`` to append the gated
``service/multi_tenant`` point to ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service.metrics import parse_metrics_text  # noqa: E402
from repro.service.tenancy import (  # noqa: E402
    QuotaExceededError,
    SessionManager,
    TenantQuota,
)

#: Universe shape shared by every tenant (each owns an independent stream).
N, M = 24, 3


def _tenant_plan(num_tenants: int, seed: int, epochs: int):
    """Zipf-skewed batch sizes + exponential arrival stamps, per tenant."""
    rng = np.random.default_rng(seed)
    sizes = np.clip(rng.zipf(1.5, size=num_tenants), 1, 48)
    events = []
    for index in range(num_tenants):
        name = f"tenant-{index:04d}"
        clock = float(rng.exponential(1.0))  # staggered first arrival
        for epoch in range(epochs):
            clock += float(rng.exponential(1.0))
            batch = int(sizes[index])
            rows = rng.integers(0, N, size=batch)
            deltas = rng.integers(-3, 4, size=(batch, N))
            events.append((clock, name, rows, deltas))
    events.sort(key=lambda event: event[0])
    return events


def _quota_for(index: int) -> TenantQuota | None:
    """Every tenth tenant is budget-capped, alternating the two policies."""
    if index % 10 == 3:
        return TenantQuota(byte_budget=2_000, policy="throttle")
    if index % 10 == 7:
        return TenantQuota(byte_budget=2_000, policy="reject")
    return None


def run_load(num_tenants: int = 1000, *, seed: int = 13, epochs: int = 3) -> dict:
    """The in-process load run; returns the gated summary record."""
    rng = np.random.default_rng(seed)
    b = rng.integers(0, 4, size=(N, M))
    events = _tenant_plan(num_tenants, seed, epochs)
    started = time.perf_counter()
    rejections = 0
    with SessionManager(b, seed=seed) as manager:
        for index in range(num_tenants):
            manager.open_tenant(
                f"tenant-{index:04d}", [N], quota=_quota_for(index)
            )
        for position, (_, name, rows, deltas) in enumerate(events):
            try:
                manager.ingest(name, 0, rows, deltas)
                manager.end_epoch(name, force=True)
            except QuotaExceededError:
                rejections += 1
            if position % 500 == 499:
                manager.run_epoch(force=True)  # fairness sweep
        for index in range(0, num_tenants, max(num_tenants // 20, 1)):
            try:
                manager.query(f"tenant-{index:04d}", "lp_norm", p=2.0, epsilon=0.4)
            except QuotaExceededError:  # pragma: no cover - queries unbudgeted
                rejections += 1
        seconds = time.perf_counter() - started

        # --- the gates -------------------------------------------------
        manager.verify_accounting()  # exact per-tenant == aggregate identity
        aggregate = manager.aggregate_report()
        assert aggregate["meters_consistent"], aggregate
        usage = aggregate["usage"]
        assert usage.get("throttled_epochs", 0) > 0, "throttle quota never fired"
        assert usage.get("rejections", 0) > 0, "reject quota never fired"
        parsed = parse_metrics_text(manager.metrics.render())
        assert parsed[("repro_tenants", ())] == num_tenants
        assert sum(
            value
            for (metric, _), value in parsed.items()
            if metric == "repro_ingest_rows_total"
        ) == usage["rows"]

        record = {
            "config": {"tenants": num_tenants, "epochs": epochs, "universe": N},
            "seconds": seconds,
            "rows_per_sec": usage["rows"] / seconds,
            "rows": int(usage["rows"]),
            "shipped_bytes": int(usage["shipped_bytes"]),
            "epochs_shipped": int(usage["epochs"]),
            "throttled_epochs": int(usage["throttled_epochs"]),
            "rejections": int(usage.get("rejections", 0)),
            "queries": int(usage.get("queries", 0)),
            "meters_consistent": True,
        }
    return record


# ------------------------------------------------------------------- smoke
def _http_scrape(port: int, path: str = "/metrics") -> tuple[str, str]:
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\nHost: bench\r\n\r\n".encode())
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    return head.decode().split("\r\n")[0], body.decode()


def run_smoke(num_tenants: int = 50, *, seed: int = 13) -> dict:
    """50 tenants over a real loopback socket + a Prometheus scrape."""
    from repro.service.client import connect
    from repro.service.messages import ServiceError
    from repro.service.server import CoordinatorServer

    rng = np.random.default_rng(seed)
    b = rng.integers(0, 4, size=(N, M))
    started = time.perf_counter()
    server = CoordinatorServer(b, num_sites=0, seed=seed, port=0).start()
    rejections = 0
    try:
        client = connect("127.0.0.1", server.port)
        sizes = np.clip(rng.zipf(1.5, size=num_tenants), 1, 48)
        for index in range(num_tenants):
            quota = _quota_for(index)
            client.query(
                "tenant_open",
                name=f"tenant-{index:04d}",
                row_counts=[N],
                quota=None
                if quota is None
                else {"byte_budget": quota.byte_budget, "policy": quota.policy},
            )
        for epoch in range(2):
            for index in range(num_tenants):
                name = f"tenant-{index:04d}"
                batch = int(sizes[index])
                try:
                    client.query(
                        "tenant_ingest",
                        name=name,
                        site=0,
                        rows=rng.integers(0, N, size=batch),
                        deltas=rng.integers(-3, 4, size=(batch, N)),
                    )
                    client.query("tenant_end_epoch", name=name, force=True)
                except ServiceError as exc:
                    assert "QuotaExceededError" in str(exc), exc
                    rejections += 1
        for index in range(0, num_tenants, 10):
            client.query(
                "tenant_query",
                name=f"tenant-{index:04d}",
                query="lp_norm",
                p=2.0,
                epsilon=0.4,
            )

        aggregate = client.query("aggregate_report")
        assert aggregate["meters_consistent"], aggregate
        usage = aggregate["usage"]
        assert usage.get("throttled_epochs", 0) > 0, "throttle quota never fired"
        assert rejections > 0, "reject quota never fired"

        status, body = _http_scrape(server.port)
        assert status == "HTTP/1.0 200 OK", status
        parsed = parse_metrics_text(body)  # must parse as exposition format
        assert parsed[("repro_tenants", ())] == num_tenants
        client.close()
    finally:
        server.stop()
    seconds = time.perf_counter() - started
    return {
        "config": {"tenants": num_tenants, "transport": "loopback"},
        "seconds": seconds,
        "rows_per_sec": usage["rows"] / seconds,
        "rows": int(usage["rows"]),
        "throttled_epochs": int(usage["throttled_epochs"]),
        "rejections": rejections,
        "scrape_samples": len(parsed),
        "meters_consistent": True,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI leg: 50 tenants over loopback + metrics scrape",
    )
    parser.add_argument("--tenants", type=int, default=None)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()
    if args.smoke:
        record = run_smoke(args.tenants or 50, seed=args.seed)
    else:
        record = run_load(args.tenants or 1000, seed=args.seed)
    print(json.dumps(record, indent=1))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
