"""E16 — runtime conditions: latency/straggler makespans + dropout policies."""

import os

from repro.experiments import e16_runtime_conditions

#: CI smoke mode: one tiny config so the runtime/conditions path is
#: exercised on every change without paying for the full sweep.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def test_e16_runtime_conditions(benchmark, once):
    report = once(
        benchmark,
        e16_runtime_conditions.run,
        n=32 if SMOKE else 64,
        num_sites=4,
        latencies=(0.0, 0.01) if SMOKE else (0.0, 0.005, 0.02, 0.08),
        seed=9,
    )
    print()
    print(report)
    # Shape: conditions only price the transcript (bits/rounds invariant),
    # the latency sweep's makespan slope is exactly the round count, one
    # straggler link dominates the critical path, and both dropout policies
    # behave as declared — fail raises, exclude renormalizes and reports
    # the contributing sites.
    assert report.summary["bits_invariant_under_conditions"]
    assert report.summary["latency_slope_matches_rounds"]
    assert report.summary["straggler_dominates_makespan"]
    assert report.summary["dropout_fail_raises"]
    assert report.summary["dropout_renormalized"]
    assert report.summary["dropout_rel_err"] < 1.0
    assert report.summary["streaming_recovers_bit_exact"]
    latency_rows = [row for row in report.rows if row["scenario"] == "latency"]
    makespans = [row["makespan_s"] for row in latency_rows]
    assert makespans == sorted(makespans)  # monotone in latency
