"""E10 — Theorem 4.4: DISJ reduction gap (2-approximation hardness)."""

from repro.experiments import e10_lb_disj


def test_e10_lb_disj(benchmark, once):
    report = once(
        benchmark,
        e10_lb_disj.run,
        half_sizes=(8, 16, 32),
        instances_per_size=16,
        seed=10,
    )
    print()
    print(report)
    assert report.summary["gap_always_holds"]
