"""E1 — Theorem 3.1: (1+eps)-approximation of ||AB||_p, p in {0,1,2}."""

import os

from repro.experiments import e01_lp_norm

#: CI smoke mode: one tiny config so the perf path is exercised on every
#: change without paying for the full sweep.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def test_e01_lp_norm(benchmark, once):
    report = once(
        benchmark,
        e01_lp_norm.run,
        sizes=(64, 96) if SMOKE else (64, 96, 128),
        epsilons=(0.5, 0.3),
        ps=(0.0, 1.0, 2.0),
        seed=1,
    )
    print()
    print(report)
    # Shape: every estimate within ~eps of the truth, 2 rounds, bits ~ n.
    assert report.summary["rounds"] == 2
    assert report.summary["max_rel_error"] < 0.6
    assert 0.5 < report.summary["bits_vs_n_exponent"] < 1.8
