#!/usr/bin/env python
"""Machine-readable benchmark runner: sketch-kernel microbenches + trajectory.

With ``--runtime`` it additionally benchmarks the message-passing runtime's
executors (serial vs threads vs processes) on k-site ingest and query
wall-clock and appends the record to a second trajectory
(``benchmarks/BENCH_runtime.json``) — the executors are bit-identical in
output, so these numbers are pure wall-clock comparisons.

With ``--tree`` it benchmarks hierarchical aggregation (ISSUE 10): the same
per-site upload round drained through :class:`~repro.comm.network
.TreeNetwork` overlays of growing fan-out vs the flat star, recording drain
wall-clock, aggregator merge time, root-ingress bits and the simulated
tree-model makespan per (k, fan-out) cell, appended to
``benchmarks/BENCH_tree.json`` — root estimates are bit-identical by
contract (pinned in ``tests/engine/test_tree_equivalence.py``), so the
trajectory tracks concentration and wall-clock, not accuracy.

With ``--service`` it benchmarks the real-transport service layer
(coordinator server + site OS processes over loopback sockets): query
round-trip latency against the in-process yardstick and streamed-epoch
ingest throughput, appended to ``benchmarks/BENCH_service.json`` — the
answers are bit-identical to in-process by contract, so these too are pure
wall-clock (transport overhead) numbers.

Measures the kernel layer's three headline numbers and appends them to a
JSON trajectory (``benchmarks/BENCH_sketch.json`` by default), so the bench
history is a committed, diffable artifact instead of folklore:

* **session ingest** — construct a sketch over the universe from a seed and
  push one ``update_many`` batch through it (the unit of work every engine
  query and every streaming site performs; the pre-kernel implementations
  paid ``O(universe)`` construction here).  Where feasible, a faithful
  *legacy* (pre-kernel, dense-table) reimplementation runs the same work
  and the speedup is recorded.
* **steady state** — repeated ``update_many`` after warmup (rows/sec).
* **construction** — constructor latency and resident sketch memory as the
  universe grows to ``2^30`` (the huge-universe capability: time and memory
  must be independent of ``n``).
* **streaming epoch** — ``StreamingSession`` ingest + epoch-close latency.

Modes::

    python benchmarks/run_benchmarks.py                  # full run, appends
    REPRO_BENCH_SMOKE=1 python benchmarks/run_benchmarks.py \
        --no-write --check-regression                    # CI smoke gate

``--check-regression`` compares same-mode, same-config metrics against the
last committed run and fails (exit 1) on a > ``REGRESSION_FACTOR``x
throughput drop — or on any crash, which is the other half of the CI gate.
``--experiments`` additionally runs the per-experiment pytest benches in
assertion-only mode and records their outcome.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.sketch import AmsSketch, CountSketch, L0Sampler, L0Sketch
from repro.sketch.kernels import StackedKWiseHash

#: CI gate: same-config throughput may not drop below baseline / FACTOR.
REGRESSION_FACTOR = 5.0

#: Acceptance floors asserted on full runs (see ISSUE 4 / README).
MIN_SESSION_SPEEDUP = 5.0
MAX_HUGE_CONSTRUCT_SECONDS = 1.0

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_sketch.json"
DEFAULT_RUNTIME_OUTPUT = Path(__file__).resolve().parent / "BENCH_runtime.json"
DEFAULT_SERVICE_OUTPUT = Path(__file__).resolve().parent / "BENCH_service.json"
DEFAULT_TREE_OUTPUT = Path(__file__).resolve().parent / "BENCH_tree.json"

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: (universe, batch, steady-state repeats, construction universes)
if SMOKE:
    UNIVERSE = 1 << 14
    BATCH = 5_000
    REPEATS = 3
    CONSTRUCTION_UNIVERSES = [1 << 10, 1 << 14, 1 << 30]
    LEGACY_AMS_UNIVERSE = 1 << 14
    LEGACY_L0_UNIVERSE = 1 << 12
else:
    UNIVERSE = 1 << 20
    BATCH = 100_000
    REPEATS = 5
    CONSTRUCTION_UNIVERSES = [1 << 10, 1 << 20, 1 << 30]
    LEGACY_AMS_UNIVERSE = 1 << 20
    LEGACY_L0_UNIVERSE = 1 << 16

DEPTH = 5
WIDTH = 256
AMS_ROWS = 64
L0_BUCKETS = 64
SAMPLER_REPS = 8


def timed(fn, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def sketch_memory_bytes(sketch) -> int:
    """Resident ndarray bytes of a sketch (including nested hash objects)."""
    total = 0
    for value in vars(sketch).values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, dict):
            total += sum(
                inner.nbytes for inner in value.values() if isinstance(inner, np.ndarray)
            )
        elif hasattr(value, "__dict__"):
            total += sum(
                inner.nbytes
                for inner in vars(value).values()
                if isinstance(inner, np.ndarray)
            )
    return total


def rows_of(case: str) -> int:
    """The case's true sketch dimension, recorded in its config record."""
    if case.startswith("ams"):
        return AMS_ROWS
    if case.startswith("sampler"):
        return SAMPLER_REPS * 3  # repetitions x (s0, s1, fingerprint) per level
    if case.startswith("l0"):
        return L0_BUCKETS  # buckets per subsampling level
    return DEPTH


def make_stream(n: int, batch: int):
    rng = np.random.default_rng(97)
    indices = rng.integers(0, n, size=batch).astype(np.int64)
    values = rng.integers(-8, 9, size=batch).astype(np.int64)
    return indices, values


# --------------------------------------------------------------------- legacy
# Faithful reimplementations of the pre-kernel (PR 3 era) hot paths, kept
# here so the recorded speedups always compare against the same yardstick.


class LegacyCountSketch:
    """Dense universe-sized bucket/sign tables + per-depth np.add.at."""

    def __init__(self, n: int, width: int, depth: int, rng: np.random.Generator):
        keys = np.arange(n)
        self.width = width
        self.depth = depth
        self.bucket_of = StackedKWiseHash(2, depth, rng).buckets(keys, width)
        self.sign_of = StackedKWiseHash(4, depth, rng).signs(keys)
        self.table = np.zeros((depth, width))

    def update_many(self, indices, deltas):
        for row in range(self.depth):
            np.add.at(
                self.table[row],
                self.bucket_of[row, indices],
                self.sign_of[row, indices] * deltas,
            )


class LegacyAms:
    """Dense +-1 matrix drawn via rng.choice + gather matmul."""

    def __init__(self, n: int, num_rows: int, rng: np.random.Generator):
        self.matrix = rng.choice(np.array([-1.0, 1.0]), size=(num_rows, n))
        self.state = None

    def update_many(self, indices, values):
        contribution = self.matrix[:, indices] @ values
        self.state = contribution if self.state is None else self.state + contribution


class LegacyL0Sketch:
    """Dense (levels * k, n) sketch matrix + gather matmul."""

    def __init__(self, n: int, buckets_per_level: int, rng: np.random.Generator):
        import math

        self.k = buckets_per_level
        self.levels = int(math.ceil(math.log2(max(n, 2)))) + 1
        priorities = rng.uniform(0.0, 1.0, size=n)
        buckets = rng.integers(0, self.k, size=n)
        coefficients = rng.integers(1, 1 << 20, size=n, dtype=np.int64)
        matrix = np.zeros((self.levels * self.k, n), dtype=np.int64)
        thresholds = 2.0 ** (-np.arange(self.levels))
        for level in range(self.levels):
            alive = priorities < thresholds[level]
            rows = level * self.k + buckets[alive]
            matrix[rows, np.flatnonzero(alive)] = coefficients[alive]
        self.matrix = matrix
        self.state = None

    def update_many(self, indices, values):
        contribution = self.matrix[:, indices] @ values
        self.state = contribution if self.state is None else self.state + contribution


# ------------------------------------------------------------------- benches
def bench_session_ingest(metrics: dict) -> None:
    """Construct + one batch + state extraction: the per-query unit of work."""
    indices, values = make_stream(UNIVERSE, BATCH)

    def session(build, update):
        def run():
            sketch = build()
            update(sketch)
            getattr(sketch, "state_array", lambda: getattr(sketch, "state", None))()

        return run

    cases = {
        "countsketch": (
            lambda: CountSketch(UNIVERSE, WIDTH, DEPTH, np.random.default_rng(1)),
            lambda s: s.update_many(indices, values),
        ),
        "countsketch_legacy": (
            lambda: LegacyCountSketch(UNIVERSE, WIDTH, DEPTH, np.random.default_rng(1)),
            lambda s: s.update_many(indices, values),
        ),
        "ams_hash": (
            lambda: AmsSketch(UNIVERSE, AMS_ROWS, np.random.default_rng(1), mode="hash"),
            lambda s: s.update_many(indices, values),
        ),
        "l0_dense": (
            lambda: L0Sketch(UNIVERSE, L0_BUCKETS, np.random.default_rng(1)),
            lambda s: s.update_many(indices, values),
        ),
        "l0_hash": (
            lambda: L0Sketch(UNIVERSE, L0_BUCKETS, np.random.default_rng(1), mode="hash"),
            lambda s: s.update_many(indices, values),
        ),
        "sampler_hash": (
            lambda: L0Sampler(
                UNIVERSE, np.random.default_rng(1), repetitions=SAMPLER_REPS, mode="hash"
            ),
            lambda s: s.update_many(indices, values),
        ),
    }
    for name, (build, update) in cases.items():
        seconds = timed(session(build, update), repeats=2 if "legacy" not in name else 1)
        metrics[f"session_ingest/{name}"] = {
            "config": {"n": UNIVERSE, "batch": BATCH, "rows": rows_of(name)},
            "seconds": seconds,
            "rows_per_sec": BATCH / seconds,
        }

    # The AMS legacy yardstick at the full universe is expensive (rng.choice
    # draws the whole dense matrix — that is the point); run it once.
    ams_idx, ams_vals = make_stream(LEGACY_AMS_UNIVERSE, BATCH)
    seconds = timed(
        session(
            lambda: LegacyAms(LEGACY_AMS_UNIVERSE, AMS_ROWS, np.random.default_rng(1)),
            lambda s: s.update_many(ams_idx, ams_vals),
        )
    )
    metrics["session_ingest/ams_legacy"] = {
        "config": {"n": LEGACY_AMS_UNIVERSE, "batch": BATCH, "rows": AMS_ROWS},
        "seconds": seconds,
        "rows_per_sec": BATCH / seconds,
    }

    # The dense l0 matrix does not fit in memory at 2^20 with the bench's
    # bucket count — which is exactly the capability gap — so its yardstick
    # runs at a smaller universe and is recorded as such.
    l0_idx, l0_vals = make_stream(LEGACY_L0_UNIVERSE, BATCH)
    seconds = timed(
        session(
            lambda: LegacyL0Sketch(LEGACY_L0_UNIVERSE, 16, np.random.default_rng(1)),
            lambda s: s.update_many(l0_idx, l0_vals),
        )
    )
    metrics["session_ingest/l0_legacy"] = {
        "config": {"n": LEGACY_L0_UNIVERSE, "batch": BATCH, "buckets": 16},
        "seconds": seconds,
        "rows_per_sec": BATCH / seconds,
    }


def bench_steady_state(metrics: dict) -> None:
    indices, values = make_stream(UNIVERSE, BATCH)
    cases = {
        "countsketch": CountSketch(UNIVERSE, WIDTH, DEPTH, np.random.default_rng(2)),
        "ams_hash": AmsSketch(UNIVERSE, AMS_ROWS, np.random.default_rng(2), mode="hash"),
        "l0_dense": L0Sketch(UNIVERSE, L0_BUCKETS, np.random.default_rng(2)),
        "sampler_hash": L0Sampler(
            UNIVERSE, np.random.default_rng(2), repetitions=SAMPLER_REPS, mode="hash"
        ),
    }
    for name, sketch in cases.items():
        warmups = 12 if name == "countsketch" else 2  # let the dense cache kick in
        for _ in range(warmups):
            sketch.update_many(indices, values)
        seconds = timed(lambda s=sketch: s.update_many(indices, values), REPEATS)
        metrics[f"steady_state/{name}"] = {
            "config": {"n": UNIVERSE, "batch": BATCH, "rows": rows_of(name)},
            "seconds": seconds,
            "rows_per_sec": BATCH / seconds,
        }


def bench_construction(metrics: dict) -> None:
    builders = {
        "countsketch": lambda n: CountSketch(n, WIDTH, DEPTH, np.random.default_rng(3)),
        "ams_hash": lambda n: AmsSketch(n, AMS_ROWS, np.random.default_rng(3), mode="hash"),
        "l0_hash": lambda n: L0Sketch(n, L0_BUCKETS, np.random.default_rng(3), mode="hash"),
        "sampler_hash": lambda n: L0Sampler(
            n, np.random.default_rng(3), repetitions=SAMPLER_REPS, mode="hash"
        ),
    }
    for name, build in builders.items():
        for n in CONSTRUCTION_UNIVERSES:
            seconds = timed(lambda: build(n), repeats=3)
            metrics[f"construction/{name}/n={n}"] = {
                "config": {"n": n},
                "seconds": seconds,
                "memory_bytes": sketch_memory_bytes(build(n)),
            }


def bench_streaming_epoch(metrics: dict) -> None:
    from repro.engine.streaming import StreamingSession

    rows = 256 if SMOKE else 1024
    inner = 32
    session = StreamingSession([rows // 2, rows // 2], np.eye(inner, dtype=np.int64), seed=5)
    rng = np.random.default_rng(6)
    deltas = rng.integers(-2, 3, size=(rows // 2, inner)).astype(np.int64)

    def one_epoch():
        for site in range(2):
            offset = session.sites[site].row_offset
            session.ingest(site, offset + np.arange(rows // 2), deltas)
        session.end_epoch()

    one_epoch()  # warm
    seconds = timed(one_epoch, REPEATS)
    metrics["streaming/epoch"] = {
        "config": {"rows": rows, "inner": inner, "sites": 2},
        "seconds": seconds,
        "rows_per_sec": rows / seconds,
    }


def bench_runtime_executors(metrics: dict) -> None:
    """Serial vs threads vs processes: k-site ingest, query and epoch clock.

    *Ingest* is the one-round ``l0_sample`` protocol (every site pushes its
    whole shard through two sketches — the engine's ``update_many`` fan-out);
    *query* is the two-round ``lp_norm(p=2)`` protocol (matmul-heavy per-site
    round 2); *stream epoch* is a full ``StreamingSession`` epoch (ingest
    every site + close), additionally run in **resident mode**
    (``persistent=True``: pinned workers + shared-memory state, the
    ``-persistent`` variants).  All executors produce bit-identical
    transcripts (pinned in ``tests/engine/test_runtime.py`` and
    ``tests/engine/test_runtime_pool.py``), so the only thing that varies
    here is wall-clock.  Every record carries ``workers`` and
    ``rows_per_sec_per_worker`` so scaling efficiency is first-class;
    speedups are recorded relative to serial — on single-core hosts they
    hover around 1x, which the run record states honestly via its top-level
    ``cpu_count`` field.
    """
    from repro.engine import Runtime, StreamingSession
    from repro.multiparty import ClusterEstimator

    k = 4
    rows = 512 if SMOKE else 4096
    inner = 48 if SMOKE else 192
    repeats = 2 if SMOKE else 3
    rng = np.random.default_rng(11)
    a = rng.integers(0, 3, size=(rows, inner)).astype(np.int64)
    b = rng.integers(0, 3, size=(inner, inner)).astype(np.int64)

    legs = {
        "ingest_l0_sample": lambda cluster: cluster.l0_sample(0.3),
        "query_lp2": lambda cluster: cluster.lp_norm(2.0, 0.3),
    }
    for executor in ("serial", "threads", "processes"):
        runtime = Runtime(executor, max_workers=k)
        workers = 1 if executor == "serial" else k
        cluster = ClusterEstimator.from_matrix(a, b, k, seed=11, runtime=runtime)
        for leg, query in legs.items():
            seconds = timed(lambda q=query, c=cluster: q(c), repeats)
            # cpu_count is recorded on the run record, NOT in this config:
            # the regression gate only compares same-config metrics, and a
            # host property in the config would silently retire the gate on
            # any machine unlike the baseline's.
            metrics[f"runtime/{leg}/{executor}"] = {
                "config": {"rows": rows, "inner": inner, "sites": k},
                "seconds": seconds,
                "rows_per_sec": rows / seconds,
                "workers": workers,
                "rows_per_sec_per_worker": rows / seconds / workers,
            }
        runtime.close()

    # Streaming epoch: serial, plain pools, and the resident
    # (persistent=True) mode the pools exist for.
    variants = [
        ("serial", "serial", False),
        ("threads", "threads", False),
        ("threads-persistent", "threads", True),
        ("processes", "processes", False),
        ("processes-persistent", "processes", True),
    ]
    site_rows = rows // k
    row_starts = [k_i * site_rows for k_i in range(k)]
    batch = rng.integers(-2, 3, size=(site_rows, inner)).astype(np.int64)
    for variant, executor, persistent in variants:
        runtime = (
            None
            if executor == "serial"
            else Runtime(executor, max_workers=k, persistent=persistent)
        )
        workers = 1 if executor == "serial" else k
        session = StreamingSession([site_rows] * k, b, seed=11, runtime=runtime)

        def one_epoch():
            for site, start in enumerate(row_starts):
                session.ingest(site, start + np.arange(site_rows), batch)
            session.end_epoch()

        one_epoch()  # warm (resident workers spin up here)
        seconds = timed(one_epoch, repeats)
        metrics[f"runtime/stream_epoch/{variant}"] = {
            "config": {"rows": rows, "inner": inner, "sites": k},
            "seconds": seconds,
            "rows_per_sec": rows / seconds,
            "workers": workers,
            "rows_per_sec_per_worker": rows / seconds / workers,
        }
        session.close()
        if runtime is not None:
            runtime.close()


def bench_service(metrics: dict) -> None:
    """The service layer over real loopback sockets: latency and throughput.

    Spawns one coordinator server plus k site OS processes
    (:func:`repro.service.client.local_cluster`) and measures:

    * **ping** — an ``info`` query round trip (pure service overhead: two
      frames, no protocol traffic);
    * **query** — ``lp_norm(p=2)`` end-to-end over the sockets, with the
      same query on an in-process estimator as the yardstick (the answers
      are bit-identical by contract, so the gap is purely transport);
    * **stream ingest** — a full streamed epoch (ingest every site + sync),
      deltas travelling as real wire bytes.
    """
    from repro.multiparty import ClusterEstimator
    from repro.service.client import local_cluster

    k = 4
    rows = 128 if SMOKE else 512
    inner = 24 if SMOKE else 64
    repeats = 2 if SMOKE else 3
    rng = np.random.default_rng(13)
    a = rng.integers(0, 3, size=(rows, inner)).astype(np.int64)
    b = rng.integers(0, 3, size=(inner, inner)).astype(np.int64)
    shards = np.array_split(a, k, axis=0)
    config = {"rows": rows, "inner": inner, "sites": k}

    reference = ClusterEstimator(shards, b, seed=13)
    seconds = timed(lambda: reference.lp_norm(2.0, 0.3), repeats)
    metrics["service/query_lp2_inprocess"] = {
        "config": config,
        "seconds": seconds,
        "rows_per_sec": rows / seconds,
    }

    with local_cluster(shards, b, seed=13) as (_server, client):
        seconds = timed(lambda: client.query("info"), repeats=max(repeats, 3))
        metrics["service/ping"] = {"config": {"sites": k}, "seconds": seconds}

        seconds = timed(lambda: client.query("lp_norm", p=2.0, epsilon=0.3), repeats)
        report = client.last_service
        metrics["service/query_lp2"] = {
            "config": config,
            "seconds": seconds,
            "rows_per_sec": rows / seconds,
            "observed_bytes": report["observed_bytes"],
        }

        client.query("stream_open")
        offsets = np.cumsum([0] + [shard.shape[0] for shard in shards])

        def one_epoch():
            for index, shard in enumerate(shards):
                client.query(
                    "stream_ingest",
                    site=index,
                    rows=offsets[index] + np.arange(shard.shape[0]),
                    deltas=shard,
                )
            client.query("stream_sync")

        one_epoch()  # warm
        seconds = timed(one_epoch, repeats)
        metrics["service/stream_epoch"] = {
            "config": config,
            "seconds": seconds,
            "rows_per_sec": rows / seconds,
        }

    # Multi-tenant load generator (ISSUE 8): Zipf-skewed tenants, open-loop
    # arrivals, in-process SessionManager.  run_load gates crash-freedom,
    # exact per-tenant==aggregate accounting, quota enforcement and a
    # parseable metrics render; the record rides the same regression gate.
    from service_load import run_load

    metrics["service/multi_tenant"] = run_load(50 if SMOKE else 1000, seed=13)


def bench_tree(metrics: dict) -> None:
    """Tree-aggregation scaling: drain wall-clock + concentration per cell.

    One upload round per (k, fan-out) cell: every site ships a mergeable
    summary upstream and the staged groups drain bottom-up.  ``seconds`` is
    the measured wall-clock of the full upload + drain (``rows_per_sec`` =
    sites drained per second — the gated throughput), ``merge_seconds`` the
    aggregators' summing time within it, and the bit columns record the
    fan-in concentration the tree exists for.  The ``flat`` cell is the
    depth-1 spec priced under the SAME tree makespan model, so the
    ``makespan_s`` comparison is honest.
    """
    from repro.comm.conditions import LinkModel, NetworkConditions
    from repro.comm.network import TreeNetwork
    from repro.comm.tree import TreeSpec

    k_values = (100, 1_000) if SMOKE else (100, 1_000, 10_000)
    fan_outs = (2, 8) if SMOKE else (2, 8, 32)
    per_site_bits = 16_384 if SMOKE else 65_536
    repeats = 2 if SMOKE else 3
    conditions = NetworkConditions(LinkModel(latency=1e-3, bandwidth=1e6))
    summary = np.ones(4, dtype=np.int64)

    for k in k_values:
        names = [f"site-{i}" for i in range(k)]
        cells: list[tuple[str, object]] = [("flat", TreeSpec.flat(names))]
        cells += [
            (f"fan{fan_out}", TreeSpec.regular(names, fan_out))
            for fan_out in fan_outs
            if fan_out < k
        ]
        for label, tree in cells:
            last = {}

            def one_round():
                network = TreeNetwork(tree, conditions=conditions)
                for name in names:
                    network.send(
                        name, tree.root, summary, label="partial", bits=per_site_bits
                    )
                network._drain()
                last["network"] = network

            seconds = timed(one_round, repeats)
            network = last["network"]
            makespan, _ = network.simulate()
            metrics[f"tree/upload/k={k}/{label}"] = {
                "config": {"k": k, "shape": label, "per_site_bits": per_site_bits},
                "seconds": seconds,
                "rows_per_sec": k / seconds,  # sites drained per second
                "merge_seconds": network.merge_seconds,
                "merges": network.merges,
                "total_bits": network.total_bits,
                "root_ingress_bits": sum(network.root_link_bits().values()),
                "max_root_link_bits": network.max_root_link_bits,
                "makespan_s": makespan,
            }


def compute_tree_gains(metrics: dict) -> dict:
    """Flat-vs-tree ratios per k: makespan speedup and fan-in concentration."""
    gains: dict[str, float] = {}
    flat = {
        record["config"]["k"]: record
        for key, record in metrics.items()
        if key.startswith("tree/upload/") and key.endswith("/flat")
    }
    for key, record in metrics.items():
        if not key.startswith("tree/upload/") or key.endswith("/flat"):
            continue
        base = flat.get(record["config"]["k"])
        if not base:
            continue
        cell = f"k={record['config']['k']}/{record['config']['shape']}"
        if record["makespan_s"]:
            gains[f"{cell}/makespan_speedup"] = (
                base["makespan_s"] / record["makespan_s"]
            )
        gains[f"{cell}/root_ingress_reduction"] = (
            base["root_ingress_bits"] / record["root_ingress_bits"]
        )
    return gains


def compute_service_overheads(metrics: dict) -> dict:
    """Socket-vs-in-process wall-clock ratio (>= 1: transport overhead)."""
    served = metrics.get("service/query_lp2")
    inprocess = metrics.get("service/query_lp2_inprocess")
    if served and inprocess:
        return {"query_lp2/socket_overhead": served["seconds"] / inprocess["seconds"]}
    return {}


def compute_runtime_speedups(metrics: dict) -> dict:
    """Speedup over serial per leg, plus per-worker parallel efficiency.

    ``<leg>/<variant>`` is wall-clock speedup vs the serial leg;
    ``<leg>/<variant>/efficiency`` divides it by the worker count (1.0 =
    perfect linear scaling; ~1/workers on a single-core host).
    """
    speedups = {}
    variants = (
        "threads",
        "processes",
        "threads-persistent",
        "processes-persistent",
    )
    for leg in ("ingest_l0_sample", "query_lp2", "stream_epoch"):
        base = metrics.get(f"runtime/{leg}/serial")
        for variant in variants:
            record = metrics.get(f"runtime/{leg}/{variant}")
            if base and record:
                speedup = base["seconds"] / record["seconds"]
                speedups[f"{leg}/{variant}"] = speedup
                workers = record.get("workers")
                if workers:
                    speedups[f"{leg}/{variant}/efficiency"] = speedup / workers
    return speedups


def run_experiment_benches(metrics: dict) -> None:
    """Run the per-experiment pytest benches (assertion-only) and record."""
    bench_dir = Path(__file__).resolve().parent
    targets = [
        bench_dir / "bench_e01_lp_norm.py",
        bench_dir / "bench_e14_multiparty.py",
        bench_dir / "bench_e15_streaming.py",
    ]
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", *map(str, targets)],
        capture_output=True,
        text=True,
    )
    metrics["experiments/pytest_benches"] = {
        "config": {"targets": [t.name for t in targets]},
        "seconds": time.perf_counter() - start,
        "passed": proc.returncode == 0,
    }
    if proc.returncode != 0:
        print(proc.stdout[-2000:], file=sys.stderr)
        raise SystemExit("per-experiment benches failed")


# ------------------------------------------------------------------ plumbing
def compute_speedups(metrics: dict) -> dict:
    speedups = {}
    pairs = {
        "countsketch": ("session_ingest/countsketch", "session_ingest/countsketch_legacy"),
        "ams": ("session_ingest/ams_hash", "session_ingest/ams_legacy"),
        "l0": ("session_ingest/l0_hash", "session_ingest/l0_legacy"),
    }
    for name, (new, old) in pairs.items():
        if new in metrics and old in metrics:
            speedups[name] = metrics[old]["seconds"] / metrics[new]["seconds"]
    return speedups


def check_acceptance(metrics: dict, speedups: dict) -> list[str]:
    failures = []
    if not SMOKE:
        for family in ("countsketch", "ams"):
            if speedups.get(family, 0.0) < MIN_SESSION_SPEEDUP:
                failures.append(
                    f"session-ingest speedup for {family} is "
                    f"{speedups.get(family, 0.0):.1f}x < {MIN_SESSION_SPEEDUP}x"
                )
    for key, record in metrics.items():
        if key.startswith("construction/") and key.endswith(f"n={1 << 30}"):
            if record["seconds"] > MAX_HUGE_CONSTRUCT_SECONDS:
                failures.append(f"{key} took {record['seconds']:.2f}s > 1s")
            if record["memory_bytes"] > 64 << 20:
                failures.append(f"{key} resides in {record['memory_bytes']} bytes")
    return failures


def check_regression(metrics: dict, baseline_runs: list[dict], mode: str) -> list[str]:
    """Same-mode, same-config throughput must stay within REGRESSION_FACTOR."""
    previous = None
    for run in reversed(baseline_runs):
        if run.get("mode") == mode:
            previous = run
            break
    if previous is None:
        return []
    failures = []
    for key, record in metrics.items():
        base = previous["metrics"].get(key)
        if not base:
            print(f"regression gate: no baseline for {key}; not compared", file=sys.stderr)
            continue
        if base.get("config") != record.get("config"):
            # Fail-open is acceptable only if it is loud: a config change
            # (or a relabel) must not silently retire a gated metric.
            print(
                f"regression gate: config changed for {key} "
                f"({base.get('config')} -> {record.get('config')}); not compared",
                file=sys.stderr,
            )
            continue
        new_rate = record.get("rows_per_sec")
        old_rate = base.get("rows_per_sec")
        if new_rate and old_rate and new_rate < old_rate / REGRESSION_FACTOR:
            failures.append(
                f"{key}: {new_rate:,.0f} rows/s is more than "
                f"{REGRESSION_FACTOR}x below baseline {old_rate:,.0f} rows/s"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--no-write", action="store_true", help="do not append the run to the trajectory"
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="fail on >%sx throughput drop vs the last same-mode baseline run"
        % REGRESSION_FACTOR,
    )
    parser.add_argument(
        "--experiments", action="store_true", help="also run the pytest experiment benches"
    )
    parser.add_argument(
        "--runtime",
        action="store_true",
        help="also run the executor benches (serial/threads/processes), "
        "tracked in their own trajectory file",
    )
    parser.add_argument("--runtime-output", type=Path, default=DEFAULT_RUNTIME_OUTPUT)
    parser.add_argument(
        "--service",
        action="store_true",
        help="also benchmark the service layer over real loopback sockets "
        "(coordinator server + site processes), tracked in its own "
        "trajectory file",
    )
    parser.add_argument("--service-output", type=Path, default=DEFAULT_SERVICE_OUTPUT)
    parser.add_argument(
        "--tree",
        action="store_true",
        help="also benchmark hierarchical aggregation (flat star vs fan-out "
        "trees up to k=10^4 sites), tracked in its own trajectory file",
    )
    parser.add_argument("--tree-output", type=Path, default=DEFAULT_TREE_OUTPUT)
    args = parser.parse_args()

    mode = "smoke" if SMOKE else "full"
    metrics: dict = {}
    bench_session_ingest(metrics)
    bench_steady_state(metrics)
    bench_construction(metrics)
    bench_streaming_epoch(metrics)
    if args.experiments:
        run_experiment_benches(metrics)

    speedups = compute_speedups(metrics)

    def stamp(run_metrics: dict, run_speedups: dict) -> dict:
        return {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "mode": mode,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "metrics": run_metrics,
            "speedups": run_speedups,
        }

    def load_history(path: Path) -> dict:
        if path.exists():
            return json.loads(path.read_text())
        return {"schema": 1, "runs": []}

    history = load_history(args.output)

    failures = check_acceptance(metrics, speedups)
    if args.check_regression:
        failures += check_regression(metrics, history.get("runs", []), mode)

    runtime_metrics: dict = {}
    runtime_speedups: dict = {}
    runtime_history: dict = {}
    if args.runtime:
        bench_runtime_executors(runtime_metrics)
        runtime_speedups = compute_runtime_speedups(runtime_metrics)
        runtime_history = load_history(args.runtime_output)
        if args.check_regression:
            failures += check_regression(
                runtime_metrics, runtime_history.get("runs", []), mode
            )

    service_metrics: dict = {}
    service_speedups: dict = {}
    service_history: dict = {}
    if args.service:
        bench_service(service_metrics)
        service_speedups = compute_service_overheads(service_metrics)
        service_history = load_history(args.service_output)
        if args.check_regression:
            failures += check_regression(
                service_metrics, service_history.get("runs", []), mode
            )

    tree_metrics: dict = {}
    tree_gains: dict = {}
    tree_history: dict = {}
    if args.tree:
        bench_tree(tree_metrics)
        tree_gains = compute_tree_gains(tree_metrics)
        tree_history = load_history(args.tree_output)
        if args.check_regression:
            failures += check_regression(
                tree_metrics, tree_history.get("runs", []), mode
            )

    for table, table_speedups in (
        (metrics, speedups),
        (runtime_metrics, runtime_speedups),
        (service_metrics, service_speedups),
        (tree_metrics, tree_gains),
    ):
        for key in sorted(table):
            record = table[key]
            rate = record.get("rows_per_sec")
            extra = f"  {rate:>12,.0f} rows/s" if rate else ""
            print(f"{key:<45} {record['seconds']*1e3:>10.2f} ms{extra}")
        for name, factor in sorted(table_speedups.items()):
            print(f"speedup/{name:<37} {factor:>10.1f} x")

    if not args.no_write:
        history.setdefault("runs", []).append(stamp(metrics, speedups))
        args.output.write_text(json.dumps(history, indent=1) + "\n")
        print(f"appended {mode} run to {args.output}")
        if args.runtime:
            from repro.engine.runtime import _default_workers
            from repro.sketch._native import current_backend

            runtime_record = stamp(runtime_metrics, runtime_speedups)
            runtime_record["cpu_count"] = os.cpu_count() or 1
            runtime_record["default_workers"] = _default_workers()
            runtime_record["kernel_backend"] = current_backend()
            runtime_history.setdefault("runs", []).append(runtime_record)
            args.runtime_output.write_text(json.dumps(runtime_history, indent=1) + "\n")
            print(f"appended {mode} run to {args.runtime_output}")
        if args.service:
            service_record = stamp(service_metrics, service_speedups)
            service_record["cpu_count"] = os.cpu_count() or 1
            service_history.setdefault("runs", []).append(service_record)
            args.service_output.write_text(json.dumps(service_history, indent=1) + "\n")
            print(f"appended {mode} run to {args.service_output}")
        if args.tree:
            tree_record = stamp(tree_metrics, tree_gains)
            tree_record["cpu_count"] = os.cpu_count() or 1
            tree_history.setdefault("runs", []).append(tree_record)
            args.tree_output.write_text(json.dumps(tree_history, indent=1) + "\n")
            print(f"appended {mode} run to {args.tree_output}")

    if failures:
        print("\nBENCH FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
