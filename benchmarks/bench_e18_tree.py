"""E18 — tree aggregation scaling: root fan-in, makespan, merge wall-clock."""

import os

from repro.experiments import e18_tree_scaling

#: CI smoke mode: shrink k so the tree overlay is exercised on every change
#: without paying for the 10^4-site sweep.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def test_e18_tree_scaling(benchmark, once):
    report = once(
        benchmark,
        e18_tree_scaling.run,
        k_values=(100, 1_000) if SMOKE else (100, 1_000, 10_000),
        fan_outs=(2, 8) if SMOKE else (2, 8, 32),
        per_site_bits=16_384 if SMOKE else 65_536,
        anchor_sites=16 if SMOKE else 32,
        anchor_fan_out=4,
        seed=18,
    )
    print()
    print(report)
    # Shape: the busiest root ingress edge carries one merged summary
    # whatever k is, total root ingress is bounded by the fan-out while the
    # flat star's grows linearly in k, every charted tree undercuts the
    # flat-star makespan at k >= 10^3 under uniform links, and a real
    # protocol routed through the tree answers bit-identically.
    assert report.summary["max_root_link_bits_k_invariant"]
    assert report.summary["root_ingress_tracks_fan_out"]
    assert report.summary["flat_root_ingress_tracks_k"]
    assert report.summary["tree_beats_flat_at_1e3"]
    assert report.summary["anchor_bit_identical"]
    assert (
        report.summary["best_tree_makespan_at_kmax_s"]
        < report.summary["flat_makespan_at_kmax_s"]
    )
    scaling = [row for row in report.rows if row["scenario"] == "scaling"]
    # Makespan at the largest k is monotone in fan-out within the charted
    # range (transfer-dominated regime): smaller fan-out, more parallelism.
    largest = max(row["k"] for row in scaling)
    by_fan = {
        row["fan_out"]: row["makespan_s"]
        for row in scaling
        if row["k"] == largest and row["fan_out"] != "flat"
    }
    fans = sorted(by_fan)
    assert all(by_fan[a] < by_fan[b] for a, b in zip(fans, fans[1:]))
