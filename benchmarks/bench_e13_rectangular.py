"""E13 — Section 6: the protocols on rectangular matrices."""

from repro.experiments import e13_rectangular


def test_e13_rectangular(benchmark, once):
    report = once(
        benchmark,
        e13_rectangular.run,
        n=64,
        m_values=(64, 128, 192),
        epsilon=0.35,
        kappa=8.0,
        seed=13,
    )
    print()
    print(report)
    assert report.summary["l1_always_exact"]
    assert report.summary["max_lp_rel_error"] < 0.6
    # The binary l_inf protocol's cost grows with m but stays sub-quadratic.
    assert report.summary["linf_bits_vs_m_exponent"] < 2.0
