"""E5 — Theorem 4.1: (2+eps)-approximation of ||AB||_inf for binary matrices."""

from repro.experiments import e05_linf_2eps


def test_e05_linf_2eps(benchmark, once):
    report = once(
        benchmark,
        e05_linf_2eps.run,
        sizes=(64, 128, 192, 256),
        epsilon=0.25,
        seed=5,
    )
    print()
    print(report)
    # Approximation never exceeds the allowed (2+eps) factor (with slack for
    # the laptop-scale constants).
    assert report.summary["max_approx_ratio"] <= report.summary["allowed_ratio"] + 0.5
    # Our communication grows strictly slower than the naive n^2 exchange.
    assert (
        report.summary["ours_bits_vs_n_exponent"]
        < report.summary["naive_bits_vs_n_exponent"]
    )
