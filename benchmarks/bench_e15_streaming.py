"""E15 — streaming monitoring: wire bytes per epoch, refresh policies, sync equivalence."""

import os

from repro.experiments import e15_streaming_monitoring

#: CI smoke mode: one tiny config so the streaming path is exercised on
#: every change without paying for the full sweep.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def test_e15_streaming_monitoring(benchmark, once):
    report = once(
        benchmark,
        e15_streaming_monitoring.run,
        n=48 if SMOKE else 64,
        num_sites=4,
        epochs=4 if SMOKE else 8,
        seed=5,
    )
    print()
    print(report)
    # Shape: on the skewed workload the threshold policy ships strictly
    # fewer bytes than every-epoch refresh (quiet sites stay silent), the
    # post-sync live estimates are within the monitor accuracy, and the
    # final one-shot query is bit-identical to the batch protocol.
    assert report.summary["threshold_strictly_fewer"]
    assert report.summary["threshold_bytes"] < report.summary["every_epoch_bytes"]
    assert report.summary["synced_f2_rel_err"] < 0.5
    assert report.summary["synced_l0_rel_err"] < 0.5
    assert report.summary["sync_matches_one_shot"]
    # Every epoch reports its bytes on the wire, for both policies.
    assert {row["policy"] for row in report.rows} == {"every-epoch", "threshold"}
    assert all("bytes" in row and "cum_bytes" in row for row in report.rows)
