#!/usr/bin/env python
"""CI gate for the parallel ingest path (the ``parallel-smoke`` job).

Runs the same streamed workload through a serial session and through
resident-mode sessions (``Runtime(persistent=True)``, threads and
processes), under whatever kernel backend ``REPRO_KERNELS`` selects, and
gates on three things:

1. **No crashes** — resident workers, shared-memory arenas and the
   compiled kernels must survive a real multi-epoch run with the worker
   count ``REPRO_WORKERS`` requests.
2. **Bit-exactness** — every epoch report, the byte meter and all merged
   summary states must equal the serial run's, byte for byte.  Resident
   mode and the compiled kernels are performance modes, never semantics.
3. **Parallel efficiency** — on hosts with at least two usable cores the
   resident ``processes`` run must not fall below
   ``REPRO_PARALLEL_FLOOR`` (default 1.0) times serial throughput: a
   regression that makes parallel ingest *slower* than serial fails CI.
   Single-core hosts skip the floor (the honest expectation there is
   ~1/workers) but still enforce crash-freedom and exactness.

Exit code 0 = all gates pass.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.engine.runtime import Runtime, _default_workers
from repro.engine.streaming import StreamingSession
from repro.sketch._native import current_backend

EPOCHS = 4
BATCHES_PER_EPOCH = 8
ROWS_PER_BATCH = 2_000
INNER = 24
M = 16
SEED = 20260808


def build_workload(sites: int):
    """One deterministic multi-epoch turnstile workload, shared by all runs."""
    rng = np.random.default_rng(SEED)
    site_rows = 50_000
    plan = []  # (site, rows, deltas) in ingestion order
    for _ in range(EPOCHS):
        epoch = []
        for batch in range(BATCHES_PER_EPOCH):
            site = batch % sites
            low = site * site_rows
            rows = rng.integers(low, low + site_rows, size=ROWS_PER_BATCH)
            deltas = rng.integers(-5, 6, size=(ROWS_PER_BATCH, INNER))
            epoch.append((site, rows, deltas))
        plan.append(epoch)
    b = rng.integers(-2, 3, size=(INNER, M))
    return [site_rows] * sites, b, plan


def run(runtime: Runtime | None, row_counts, b, plan):
    session = StreamingSession(row_counts, b, seed=SEED, runtime=runtime)
    start = time.perf_counter()
    for epoch in plan:
        for site, rows, deltas in epoch:
            session.ingest(site, rows, deltas)
        session.end_epoch()
    session.sync()
    seconds = time.perf_counter() - start
    transcript = (
        [(r.shipped, r.upload_bytes, r.total_bytes) for r in session.history],
        session.network.total_bits,
        {k: s.state_array().tobytes() for k, s in session.merged.items()},
    )
    session.close()
    return transcript, seconds


def main() -> int:
    workers = _default_workers()
    cores = len(os.sched_getaffinity(0))
    floor = float(os.environ.get("REPRO_PARALLEL_FLOOR", "1.0"))
    total_rows = EPOCHS * BATCHES_PER_EPOCH * ROWS_PER_BATCH
    print(
        f"parallel smoke: kernel backend={current_backend()!r} "
        f"workers={workers} cores={cores}"
    )

    row_counts, b, plan = build_workload(sites=max(workers, 2))
    reference, serial_seconds = run(None, row_counts, b, plan)
    print(f"  serial:               {total_rows / serial_seconds:>12,.0f} rows/s")

    failures = []
    speedups = {}
    for executor in ("threads", "processes"):
        with Runtime(executor, persistent=True) as runtime:
            transcript, seconds = run(runtime, row_counts, b, plan)
        speedups[executor] = serial_seconds / seconds
        print(
            f"  {executor + '-persistent:':<22}{total_rows / seconds:>12,.0f} rows/s"
            f"  ({speedups[executor]:.2f}x serial)"
        )
        if transcript != reference:
            failures.append(
                f"resident {executor} run diverged from the serial transcript"
            )

    if cores >= 2:
        if speedups["processes"] < floor:
            failures.append(
                f"resident processes ingest is {speedups['processes']:.2f}x serial "
                f"on a {cores}-core host (floor: {floor:.2f}x)"
            )
    else:
        print(f"  single usable core: efficiency floor skipped (exactness gated)")

    if failures:
        print("\nPARALLEL SMOKE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("parallel smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
