#!/usr/bin/env python
"""Chaos smoke: one real loopback cluster under injected faults (ISSUE 9 gate).

One coordinator, four ``repro-site`` OS processes, simulated conditions with
one straggler link and a ``quorum=(4, 1)`` policy — then faults, in order:

* **quorum one-shot** — the straggler's 5 s simulated link leaves the
  critical path: the answer names ``site-3`` as the excluded straggler, its
  simulated makespan beats the straggler latency, the wall clock beats the
  coordinator deadline, and the value is bit-identical to an in-process
  reference running the same quorum policy;
* **transient refusal** — ``site-2 --flaky 1`` refuses its first protocol
  request; the link retries and ``repro_link_retries_total`` counts it;
* **mid-stream timeout** — ``site-1 --delay 6 --delay-after 2`` naps through
  its first epoch-boundary upload, past the 3 s coordinator deadline: the
  boundary degrades (``ServiceError`` + structured degradation report,
  site-1 dropped from the session) instead of wedging;
* **restore + late merge** — site-1 is restored, the next boundary closes
  with quorum met, and the straggler's previous-epoch delta is folded in
  (``late_merged``), with ``collect_late`` draining the rest;
* **bit-exact recovery** — after the drop/restore and the late folds, the
  live estimates equal the in-process reference session exactly;
* **SIGKILL** — site-0 dies; the next query answers *degraded* over the
  surviving sub-cluster within the deadline budget, never an error;
* **scrape** — ``GET /metrics`` parses as Prometheus text and shows the
  quorum shortfalls, late merges, retries, and (zero) quarantined sites.

Run: ``python benchmarks/chaos_smoke.py`` (CI: the chaos-smoke job).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.comm.conditions import LinkModel, NetworkConditions  # noqa: E402
from repro.engine.runtime import QuorumPolicy, Runtime  # noqa: E402
from repro.multiparty import ClusterEstimator  # noqa: E402
from repro.service.client import connect  # noqa: E402
from repro.service.messages import ServiceError  # noqa: E402
from repro.service.metrics import parse_metrics_text  # noqa: E402
from repro.service.server import CoordinatorServer  # noqa: E402

SEED = 7
NUM_SITES = 4
#: Coordinator per-site reply deadline, real seconds.
DEADLINE = 3.0
#: site-1's injected mid-stream nap — longer than DEADLINE, so the epoch
#: boundary's upload request times out for real.
SITE_DELAY = 6.0
#: site-3's *simulated* link latency — past the simulated deadline below,
#: so it is the every-epoch straggler and the one-shot quorum victim.
STRAGGLER_LATENCY = 5.0

#: Per-site chaos flags (see ``repro-site --help``).  site-1's counter:
#: the baseline one-shot costs it two protocol requests (downstream round
#: + upstream echo), so ``--delay-after 2`` makes exactly its *first
#: epoch-boundary upload* the one that naps.
SITE_CHAOS = {
    1: ["--delay", str(SITE_DELAY), "--delay-after", "2", "--delay-count", "1"],
    2: ["--flaky", "1"],
}


def _conditions() -> NetworkConditions:
    return NetworkConditions(
        LinkModel(latency=0.01),
        overrides={f"site-{NUM_SITES - 1}": LinkModel(latency=STRAGGLER_LATENCY)},
        deadline=1.0,
    )


def _data():
    rng = np.random.default_rng(11)
    a = rng.integers(0, 3, size=(40, 24))
    b = rng.integers(0, 3, size=(24, 16))
    return np.array_split(a, NUM_SITES, axis=0), b


def _epoch_batches(shards):
    """Two epochs per site: first and second half of each shard's rows."""
    batches: dict[int, list] = {1: [], 2: []}
    offset = 0
    for index, shard in enumerate(shards):
        half = shard.shape[0] // 2
        rows = offset + np.arange(shard.shape[0])
        batches[1].append((index, rows[:half], shard[:half]))
        batches[2].append((index, rows[half:], shard[half:]))
        offset += shard.shape[0]
    return batches


def _reference(shards, b, batches):
    """The in-process replay the remote run must match bit-exactly.

    Same seed, same conditions, same quorum runtime, same call sequence.
    The remote run's extra drama (site-1's timed-out boundary upload,
    drop + restore) must not change state: the boundary merges every
    on-time delta *before* any real send, and drop/restore only toggle
    connectivity.  So the clean replay is the ground truth.
    """
    estimator = ClusterEstimator(
        shards,
        b,
        seed=SEED,
        runtime=Runtime(quorum=QuorumPolicy.coerce((NUM_SITES, 1))),
        conditions=_conditions(),
    )
    out = {"baseline": estimator.lp_norm(p=2.0, epsilon=0.3)}
    session = estimator.stream()
    for epoch in (1, 2):
        for index, rows, deltas in batches[epoch]:
            session.ingest(index, rows, deltas)
        session.end_epoch(force=True)
    session.collect_late()
    out["live_lp"] = session.live_lp_norm(p=2.0)
    out["live_hh"] = session.live_heavy_hitters(phi=0.3)
    return out


def _spawn(tmp: str, shards, b):
    """The live cluster: a server in-process, four site OS processes."""
    server = CoordinatorServer(
        b,
        num_sites=NUM_SITES,
        expected_row_counts=[shard.shape[0] for shard in shards],
        seed=SEED,
        host="127.0.0.1",
        port=0,
        conditions=_conditions(),
        deadline=DEADLINE,
        retries=2,
        backoff=0.05,
        quorum=(NUM_SITES, 1),
    ).start()
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    processes = []
    for index, shard in enumerate(shards):
        shard_path = Path(tmp) / f"shard-{index}.npy"
        np.save(shard_path, shard)
        processes.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.service.cli", "site",
                    "--host", "127.0.0.1", "--port", str(server.port),
                    "--index", str(index), "--shard", str(shard_path),
                    *SITE_CHAOS.get(index, []),
                ],
                env=env,
            )
        )
    if not server.wait_ready(60.0):
        raise TimeoutError("cluster did not become ready within 60 s")
    return server, processes


def _scrape(port: int) -> str:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(b"GET /metrics HTTP/1.0\r\nHost: chaos\r\n\r\n")
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = head.decode().split("\r\n")[0]
    assert status == "HTTP/1.0 200 OK", f"scrape failed: {status}"
    return body.decode()


def _gate(name: str, ok: bool, detail: str = "") -> None:
    print(f"  [{'PASS' if ok else 'FAIL'}] {name}" + (f" ({detail})" if detail else ""))
    assert ok, f"chaos gate failed: {name} {detail}"


def main() -> int:
    shards, b = _data()
    batches = _epoch_batches(shards)
    reference = _reference(shards, b, batches)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        server, processes = _spawn(tmp, shards, b)
        client = connect("127.0.0.1", server.port)
        try:
            # --- quorum one-shot beats the straggler -----------------------
            print("stage 1: quorum one-shot under a straggler link")
            start = time.monotonic()
            baseline = client.query("lp_norm", p=2.0, epsilon=0.3)
            elapsed = time.monotonic() - start
            stragglers = baseline.details.get("dropout", {}).get("stragglers", [])
            _gate("answer is clean (not degraded)", client.last_degraded is None)
            _gate(
                "wall clock beats the coordinator deadline",
                elapsed < DEADLINE,
                f"{elapsed:.2f}s < {DEADLINE}s",
            )
            _gate("straggler excluded by quorum", stragglers == [f"site-{NUM_SITES - 1}"])
            _gate(
                "simulated makespan beats the straggler latency",
                baseline.cost.makespan < STRAGGLER_LATENCY,
                f"{baseline.cost.makespan:.3f}s < {STRAGGLER_LATENCY}s",
            )
            _gate(
                "bit-identical to the in-process quorum reference",
                baseline.value == reference["baseline"].value,
            )

            # --- transient refusal retried and metered ---------------------
            print("stage 2: flaky site's transient refusal is retried")
            parsed = parse_metrics_text(_scrape(server.port))
            retries = parsed.get(("repro_link_retries_total", (("site", "site-2"),)), 0)
            _gate("repro_link_retries_total{site-2} >= 1", retries >= 1, f"{retries}")

            # --- mid-stream timeout degrades the boundary ------------------
            print("stage 3: epoch boundary with a site napping past the deadline")
            client.query("stream_open")
            for index, rows, deltas in batches[1]:
                client.query("stream_ingest", site=index, rows=rows, deltas=deltas)
            start = time.monotonic()
            degradation = None
            try:
                client.query("stream_end_epoch", force=True)
            except ServiceError as exc:
                degradation = getattr(exc, "degradation", None)
            elapsed = time.monotonic() - start
            _gate("boundary raised with a degradation report", degradation is not None)
            _gate(
                "degradation within the deadline budget",
                elapsed < 3 * DEADLINE,
                f"{elapsed:.2f}s < {3 * DEADLINE}s",
            )
            _gate("timed-out site named", degradation["failed_sites"] == ["site-1"])
            _gate("reason is the timeout", degradation["reason"] == "timeout")
            _gate("policy is exclude", degradation["policy"] == "exclude")
            _gate(
                "surviving count reported",
                degradation["surviving_sites"] == NUM_SITES - 1,
            )

            # Let site-1 finish its nap (its stale reply is written off on
            # arrival) before reconnecting it.
            time.sleep(max(0.0, SITE_DELAY - elapsed) + 1.0)

            # --- restore + late merge --------------------------------------
            print("stage 4: restore the napper; next boundary folds the straggler")
            restored = client.query("stream_restore_site", site=1)
            _gate("no sites dropped after restore", restored["dropped"] == [])
            for index, rows, deltas in batches[2]:
                client.query("stream_ingest", site=index, rows=rows, deltas=deltas)
            report = client.query("stream_end_epoch", force=True)
            _gate("quorum met at the boundary", report.quorum_met is True)
            _gate("straggler late again", report.late == [f"site-{NUM_SITES - 1}"])
            _gate(
                "previous epoch's straggler delta late-merged",
                report.late_merged == [f"site-{NUM_SITES - 1}"],
            )
            folded = client.query("stream_collect_late")
            _gate(
                "collect_late drains the in-flight delta",
                folded.get(f"site-{NUM_SITES - 1}", 0) > 0,
                str(folded),
            )
            _gate("nothing left in flight", client.query("stream_late_pending") == [])

            # --- bit-exact recovery ----------------------------------------
            print("stage 5: live state equals the clean in-process replay")
            live_lp = client.query("stream_live_lp_norm", p=2.0)
            live_hh = client.query("stream_live_heavy_hitters", phi=0.3)
            _gate(
                "live lp_norm bit-identical",
                live_lp == reference["live_lp"],
                f"{live_lp!r}",
            )
            _gate(
                "live heavy hitters identical",
                live_hh == reference["live_hh"],
            )

            # --- SIGKILL -> degraded quorum answer -------------------------
            print("stage 6: SIGKILL one site; queries degrade, not fail")
            clean = client.query("lp_norm", p=2.0, epsilon=0.3)
            _gate("pre-kill query is clean", clean.value > 0 and client.last_degraded is None)
            processes[0].send_signal(signal.SIGKILL)
            processes[0].wait(timeout=10)
            start = time.monotonic()
            degraded = client.query("lp_norm", p=2.0, epsilon=0.3)
            elapsed = time.monotonic() - start
            killed = client.last_degraded
            _gate("degraded answer has a value", degraded.value > 0)
            _gate(
                "degraded answer within the deadline budget",
                elapsed < 3 * DEADLINE,
                f"{elapsed:.2f}s < {3 * DEADLINE}s",
            )
            _gate("killed site named", killed is not None and killed["failed_sites"] == ["site-0"])
            _gate("reason is the loss", killed["reason"] in ("disconnect", "timeout"))
            _gate("surviving count reported", killed["surviving_sites"] == NUM_SITES - 1)

            # --- final scrape ----------------------------------------------
            print("stage 7: Prometheus scrape shows the chaos")
            parsed = parse_metrics_text(_scrape(server.port))
            shortfalls = parsed.get(("repro_quorum_shortfall_total", ()), 0)
            late = parsed.get(("repro_late_merges_total", ()), 0)
            _gate("quorum shortfalls counted", shortfalls >= 2, f"{shortfalls}")
            _gate("late merges counted", late >= 2, f"{late}")
            _gate(
                "quarantine gauge scraped (and zero: no corrupt frames here)",
                parsed.get(("repro_quarantined_sites", ())) == 0,
            )
            _gate(
                "retry counter scraped",
                parsed.get(("repro_link_retries_total", (("site", "site-2"),)), 0) >= 1,
            )
        finally:
            client.close()
            for process in processes:
                if process.poll() is None:
                    process.terminate()
            for process in processes:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()
            server.stop()

    print("chaos smoke: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
