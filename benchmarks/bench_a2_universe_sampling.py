"""A2 — ablation: Algorithm 3's universe-sampling step."""

from repro.experiments import a2_universe_sampling


def test_a2_universe_sampling(benchmark, once):
    report = once(
        benchmark,
        a2_universe_sampling.run,
        n=128,
        kappas=(8.0, 16.0, 32.0),
        seed=22,
    )
    print()
    print(report)
    assert report.summary["sampling_always_cheaper"]
    assert report.summary["all_within_kappa"]
