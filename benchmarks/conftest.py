"""Shared helpers for the benchmark suite.

Every file in this directory regenerates one experiment from EXPERIMENTS.md
(on a laptop-scale workload), measures its wall-clock cost via
pytest-benchmark, and asserts the qualitative *shape* of the paper's claim
(who wins, how communication scales).  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing.

    Experiment drivers are deterministic (seeded) and relatively expensive,
    so a single round is both sufficient and necessary to keep the suite
    fast; the interesting output is the driver's report, which is attached
    to the benchmark record via ``extra_info``.
    """
    report = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = report.experiment
    benchmark.extra_info["summary"] = {k: str(v) for k, v in report.summary.items()}
    return report


@pytest.fixture
def once():
    return run_once
