"""E14 — coordinator-model scaling: bits, link load and wall-clock vs k sites."""

import os

from repro.experiments import e14_multiparty_scaling

#: CI smoke mode: one tiny config so the perf path is exercised on every
#: change without paying for the full sweep.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def test_e14_multiparty_scaling(benchmark, once):
    report = once(
        benchmark,
        e14_multiparty_scaling.run,
        n=64 if SMOKE else 96,
        ks=(2, 4) if SMOKE else (2, 4, 8),
        epsilon=0.3,
        seed=3,
    )
    print()
    print(report)
    # Shape: every protocol keeps its two-party round count at every k, total
    # bits grow at most linearly in k, and the busiest coordinator-site link
    # does not grow with k (the star parallelizes).
    assert report.summary["rounds_k_invariant"]
    assert report.summary["join_bits_growth"] <= report.summary["k_growth"] + 0.25
    assert report.summary["max_link_growth"] < 1.5
    assert report.summary["max_rel_error"] < 0.6
