"""E6 — Theorem 4.3: kappa-approximation of ||AB||_inf, O~(n^1.5/kappa) bits."""

from repro.experiments import e06_linf_kappa


def test_e06_linf_kappa(benchmark, once):
    report = once(
        benchmark,
        e06_linf_kappa.run,
        n=128,
        kappas=(4.0, 8.0, 16.0, 32.0),
        seed=6,
    )
    print()
    print(report)
    assert report.summary["all_within_kappa"]
    assert report.summary["bits_non_increasing_in_kappa"]
