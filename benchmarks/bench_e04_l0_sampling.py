"""E4 — Theorem 3.2: one-round l_0-sampling over the support of AB."""

from repro.experiments import e04_l0_sampling


def test_e04_l0_sampling(benchmark, once):
    report = once(
        benchmark,
        e04_l0_sampling.run,
        n=48,
        num_samples=120,
        epsilon=0.3,
        seed=4,
    )
    print()
    print(report)
    row = report.rows[0]
    assert row["rounds"] == 1
    assert report.summary["failure_rate"] < 0.15
    # Every successful sample lands on a non-zero entry of C.
    assert row["valid_fraction"] == 1.0
    # No evidence of gross non-uniformity (chi-square test not rejected at 1%).
    assert row["uniformity_p_value"] > 0.01
