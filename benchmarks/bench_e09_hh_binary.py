"""E9 — Theorem 5.3: heavy hitters for binary matrices, O~(n + phi/eps^2) bits."""

from repro.experiments import e09_hh_binary


def test_e09_hh_binary(benchmark, once):
    report = once(
        benchmark,
        e09_hh_binary.run,
        sizes=(64, 96, 128),
        phi=0.05,
        epsilon=0.025,
        seed=9,
    )
    print()
    print(report)
    assert report.summary["min_recall"] == 1.0
    assert report.summary["min_soundness"] == 1.0
    assert report.summary["rounds"] <= 8
    # Bits grow near-linearly in n (the n term dominates at these sizes).
    assert report.summary["bits_vs_n_exponent"] < 1.9
