"""E17 — robust aggregation: Byzantine accuracy bounds + quorum makespans."""

import os

from repro.experiments import e17_robust_aggregation

#: CI smoke mode: one tiny config so the robust/quorum path is exercised
#: on every change without paying for the full sweep.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def test_e17_robust_aggregation(benchmark, once):
    report = once(
        benchmark,
        e17_robust_aggregation.run,
        # rows_per_site stays at 160 even in smoke: the flip-sign-vs-bound
        # separation needs per-site column sums concentrated enough that
        # two flipped uploads displace the plain merge past k*(max-min).
        rows_per_site=160,
        n=48 if SMOKE else 64,
        num_sites=8,
        max_corrupt=2 if SMOKE else 3,
        seed=17,
    )
    print()
    print(report)
    # Shape: the headline Byzantine scenario (k=8, f=2 flip-sign corrupt
    # sites) answers lp_norm and l1-exact within the charted k*(max-min)
    # error bound via trimmed-mean while the plain entrywise merge violates
    # it, and quorum execution at n-f strictly beats the full fan-in's
    # simulated makespan (monotonically in f).
    assert report.summary["flip_sign_f2_trimmed_within_bound"]
    assert report.summary["flip_sign_f2_plain_violates_bound"]
    assert report.summary["quorum_makespan_strictly_decreasing"]
    assert report.summary["quorum_f_max_speedup"] > 1.0
    corruption_rows = [
        row for row in report.rows if row["scenario"] == "corruption"
    ]
    # Plain-merge displacement grows with the number of corrupt sites
    # within each family; the trimmed estimate never leaves the bound.
    for family in ("lp_norm", "l1-exact"):
        family_rows = [row for row in corruption_rows if row["family"] == family]
        plain = [row["plain_dev"] for row in family_rows]
        assert plain == sorted(plain)
        assert all(row["trimmed_within_bound"] for row in family_rows)
