"""E2 — two-round O~(n/eps) vs one-round O~(n/eps^2) separation (p = 0)."""

from repro.experiments import e02_round_separation


def test_e02_round_separation(benchmark, once):
    report = once(
        benchmark,
        e02_round_separation.run,
        n=96,
        epsilons=(0.6, 0.4, 0.25, 0.15),
        seed=2,
    )
    print()
    print(report)
    # Shape: the baseline's cost grows roughly one power of 1/eps faster.
    assert report.summary["baseline_minus_ours_exponent"] > 0.5
    # Ours is never more expensive at the smallest epsilon.
    smallest = min(report.rows, key=lambda r: r["eps"])
    assert smallest["ours_bits"] < smallest["baseline_bits"]
