"""Distributed recovery of a sparse matrix product (Lemma 2.5 substitute)."""

from repro.distmm.sparse_product import SparseProductProtocol, sparse_product_shares

__all__ = ["SparseProductProtocol", "sparse_product_shares"]
