"""Distributed sparse matrix product: ``C_A + C_B = A B`` exactly.

This is the repo's substitute for Lemma 2.5 of the paper ([16]): a protocol
after which Alice holds ``C_A`` and Bob holds ``C_B`` with
``C_A + C_B = A B`` exactly, using communication that grows with the
sparsity of the product rather than with ``n^2``.

Construction (the per-item "cheaper side ships its sets" exchange, the same
primitive used inside Algorithms 2 and 3 of the paper):

* The product decomposes over the shared attribute:
  ``A B = sum_j outer(A_{*,j}, B_{j,*})``.
* For every shared item ``j``, let ``u_j`` / ``v_j`` be the number of
  non-zero entries of Alice's column ``A_{*,j}`` / Bob's row ``B_{j,*}``.
* Alice announces all ``u_j`` (round 1); Bob replies with his non-zero
  (index, value) lists for every item where ``v_j < u_j`` (round 2); Alice
  sends her lists for the remaining items (round 3).
* Whoever ends up knowing *both* sides of item ``j`` accumulates the outer
  product ``outer(A_{*,j}, B_{j,*})`` into their share.

The communication is ``O(n log n + sum_j min(u_j, v_j) * w)`` bits (``w`` =
bits per transmitted pair), which is at most ``O~(n sqrt(||A B||_1))`` by
Cauchy–Schwarz and matches the paper's ``O~(n sqrt(||A B||_0))`` on the
(heavily subsampled, near-binary) inputs where the paper invokes Lemma 2.5.
The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol


def _nonzero_lists(matrix: np.ndarray, axis: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-item (indices, values) of ``A``'s columns (axis=0) or ``B``'s rows (axis=1)."""
    matrix = np.asarray(matrix)
    lists = []
    n_items = matrix.shape[1] if axis == 0 else matrix.shape[0]
    for j in range(n_items):
        vector = matrix[:, j] if axis == 0 else matrix[j, :]
        indices = np.flatnonzero(vector)
        lists.append((indices, vector[indices]))
    return lists


def sparse_product_shares(
    a: np.ndarray, b: np.ndarray, *, owner_is_bob: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``A B`` into ``C_A + C_B`` according to a per-item ownership mask.

    ``owner_is_bob[j]`` is True when Bob accumulates item ``j``'s outer
    product (because Alice shipped her column ``j`` to him), and False when
    Alice accumulates it.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    owner_is_bob = np.asarray(owner_is_bob, dtype=bool)
    if owner_is_bob.shape[0] != a.shape[1]:
        raise ValueError("ownership mask must have one entry per shared item")
    c_bob = a[:, owner_is_bob] @ b[owner_is_bob, :]
    c_alice = a[:, ~owner_is_bob] @ b[~owner_is_bob, :]
    return c_alice, c_bob


class SparseProductProtocol(Protocol):
    """Exact distributed sparse product ``C_A + C_B = A B`` (Lemma 2.5 substitute).

    ``run(A, B)`` returns a result whose value is the tuple
    ``(C_A, C_B)``; ``details['ownership']`` records which party accumulated
    each shared item.
    """

    name = "distributed-sparse-product"

    def _execute(self, alice: Party, bob: Party):
        a = np.asarray(alice.data, dtype=np.int64)
        b = np.asarray(bob.data, dtype=np.int64)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n_items = a.shape[1]
        values_are_binary = bool(np.all((a == 0) | (a == 1)) and np.all((b == 0) | (b == 1)))
        value_bits = 0 if values_are_binary else bitcost.INT_ENTRY_BITS

        alice_lists = _nonzero_lists(a, axis=0)
        bob_lists = _nonzero_lists(b, axis=1)
        u = np.array([len(idx) for idx, _ in alice_lists], dtype=np.int64)
        v = np.array([len(idx) for idx, _ in bob_lists], dtype=np.int64)

        # Round 1: Alice announces her per-item counts.
        alice.send(
            bob,
            u,
            label="round1/item-counts",
            bits=n_items * bitcost.bits_for_index(max(a.shape[0] + 1, 2)),
        )

        # Round 2: Bob ships his lists for items where his side is smaller.
        bob_ships = v < u
        bob_payload = {int(j): bob_lists[j] for j in np.flatnonzero(bob_ships)}
        bob_bits = n_items  # the ownership bitmap
        for indices, _values in bob_payload.values():
            bob_bits += len(indices) * (bitcost.bits_for_index(max(b.shape[1], 1)) + value_bits)
        bob.send(alice, bob_payload, label="round2/bob-lists", bits=bob_bits)

        # Round 3: Alice ships her lists for the remaining items (where they
        # are non-empty on both sides; empty items contribute nothing).
        alice_ships = (~bob_ships) & (u > 0) & (v > 0)
        alice_payload = {int(j): alice_lists[j] for j in np.flatnonzero(alice_ships)}
        alice_bits = 0
        for indices, _values in alice_payload.values():
            alice_bits += len(indices) * (bitcost.bits_for_index(max(a.shape[0], 1)) + value_bits)
        alice.send(bob, alice_payload, label="round3/alice-lists", bits=alice_bits)

        # Ownership: Bob accumulates items whose Alice-column he received.
        owner_is_bob = alice_ships.copy()
        c_alice, c_bob = sparse_product_shares(a, b, owner_is_bob=owner_is_bob)
        details = {
            "ownership": owner_is_bob,
            "exchanged_pairs": int(np.sum(np.minimum(u, v)[(u > 0) & (v > 0)])),
        }
        return (c_alice, c_bob), details
