"""Set interpretation of binary matrices.

The paper identifies the rows of ``A`` with sets ``A_i = {k : A_{ik} = 1}``
and the columns of ``B`` with sets ``B_j = {k : B_{kj} = 1}``; the entries of
``C = A B`` are then the intersection sizes ``|A_i ∩ B_j|``.  These helpers
convert between the two views; they are used by the join layer and by the
index-exchange steps of Algorithms 2/3.
"""

from __future__ import annotations

import numpy as np


def row_sets(a: np.ndarray) -> list[np.ndarray]:
    """``A_i = {k : A_{ik} != 0}`` for every row ``i`` (as index arrays)."""
    a = np.asarray(a)
    return [np.flatnonzero(a[i]) for i in range(a.shape[0])]


def column_sets(b: np.ndarray) -> list[np.ndarray]:
    """``B_j = {k : B_{kj} != 0}`` for every column ``j`` (as index arrays)."""
    b = np.asarray(b)
    return [np.flatnonzero(b[:, j]) for j in range(b.shape[1])]


def sets_to_row_matrix(sets: list, universe: int) -> np.ndarray:
    """Build a binary matrix whose row ``i`` is the indicator of ``sets[i]``."""
    matrix = np.zeros((len(sets), universe), dtype=np.int64)
    for i, members in enumerate(sets):
        members = np.asarray(list(members), dtype=int)
        if members.size and (members.min() < 0 or members.max() >= universe):
            raise ValueError(f"set {i} has items outside [0, {universe})")
        matrix[i, members] = 1
    return matrix


def sets_to_column_matrix(sets: list, universe: int) -> np.ndarray:
    """Build a binary matrix whose column ``j`` is the indicator of ``sets[j]``."""
    return sets_to_row_matrix(sets, universe).T


def item_incidence(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-item incidence counts ``u_j`` and ``v_j`` used by Algorithms 2/3.

    ``u_j`` = number of rows of ``A`` containing item ``j`` (column sum of
    ``A``); ``v_j`` = number of columns of ``B`` containing item ``j`` (row
    sum of ``B``).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    return a.sum(axis=0).astype(np.int64), b.sum(axis=1).astype(np.int64)
