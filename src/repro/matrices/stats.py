"""Exact (centralised) statistics of a matrix product, used as ground truth.

Everything here computes on ``C = A @ B`` directly and is only used for
verification and for measuring the approximation error of the distributed
protocols; the protocols themselves never touch these functions.
"""

from __future__ import annotations

import numpy as np


def product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The integer matrix product ``C = A @ B``."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    return a.astype(np.int64) @ b.astype(np.int64)


def exact_lp_pp(c: np.ndarray, p: float) -> float:
    """Exact ``||C||_p^p`` with the paper's convention ``||C||_0^0 = ||C||_0``."""
    c = np.asarray(c, dtype=float)
    if p == 0:
        return float(np.count_nonzero(c))
    return float(np.sum(np.abs(c) ** p))


def exact_lp_norm(c: np.ndarray, p: float) -> float:
    """Exact ``||C||_p`` (for ``p = 0`` this is the number of non-zeros)."""
    value = exact_lp_pp(c, p)
    if p == 0:
        return value
    return value ** (1.0 / p)


def exact_linf(c: np.ndarray) -> float:
    """Exact ``||C||_inf`` = the largest absolute entry."""
    c = np.asarray(c)
    if c.size == 0:
        return 0.0
    return float(np.max(np.abs(c)))


def exact_support(c: np.ndarray) -> list[tuple[int, int]]:
    """All (row, column) positions of non-zero entries."""
    rows, cols = np.nonzero(np.asarray(c))
    return [(int(i), int(j)) for i, j in zip(rows, cols)]


def exact_heavy_hitters(c: np.ndarray, phi: float, p: float) -> set[tuple[int, int]]:
    """Exact ``HH^p_phi(C) = {(i,j) : |C_ij|^p >= phi * ||C||_p^p}``."""
    if not 0 < phi <= 1:
        raise ValueError(f"phi must be in (0, 1], got {phi}")
    c = np.asarray(c, dtype=float)
    total = exact_lp_pp(c, p)
    if total == 0:
        return set()
    threshold = phi * total
    mask = np.abs(c) ** p >= threshold
    rows, cols = np.nonzero(mask)
    return {(int(i), int(j)) for i, j in zip(rows, cols)}
