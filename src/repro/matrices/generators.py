"""Synthetic workload generators.

The paper's motivating workloads are set-intersection joins: rows of ``A``
and columns of ``B`` are sets over a universe of size ``n``.  The generators
below produce binary and integer matrix pairs with controllable structure:

* uniform sparse sets (the "typical" join-size estimation workload),
* Zipfian set sizes (skewed relations),
* planted heavy hitters (a few pairs of sets with large overlap),
* planted maximum-overlap pair (for ``l_inf`` experiments),
* rectangular variants (Section 6 of the paper),
* general integer matrices with polynomially bounded entries (Section 4.3).

All generators return ``(A, B)`` with ``A`` of shape ``(m1, n)`` and ``B`` of
shape ``(n, m2)`` so that ``C = A @ B`` is the matrix the statistics refer
to.  Square workloads use ``m1 = m2 = n``.
"""

from __future__ import annotations

import numpy as np


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_binary_pair(
    n: int,
    *,
    density: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform sparse binary matrices: each entry is 1 with prob ``density``."""
    if not 0 <= density <= 1:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = _rng(seed)
    a = (rng.uniform(size=(n, n)) < density).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < density).astype(np.int64)
    return a, b


def zipfian_sets_pair(
    n: int,
    *,
    exponent: float = 1.2,
    max_set_size: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Skewed sets: set sizes follow a Zipf-like law, items drawn uniformly.

    Row ``i`` of ``A`` (and column ``j`` of ``B``) is a random set whose size
    is proportional to ``1 / rank^exponent``, capped at ``max_set_size``
    (default ``n // 4``).  This models skewed relations where a few
    applicants/jobs have very many skills/requirements.
    """
    rng = _rng(seed)
    if max_set_size is None:
        max_set_size = max(1, n // 4)
    ranks = np.arange(1, n + 1, dtype=float)
    sizes = np.maximum(1, (max_set_size / ranks**exponent)).astype(int)
    rng.shuffle(sizes)

    a = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        items = rng.choice(n, size=min(sizes[i], n), replace=False)
        a[i, items] = 1

    rng.shuffle(sizes)
    b = np.zeros((n, n), dtype=np.int64)
    for j in range(n):
        items = rng.choice(n, size=min(sizes[j], n), replace=False)
        b[items, j] = 1
    return a, b


def planted_heavy_hitters_pair(
    n: int,
    *,
    num_heavy: int = 3,
    heavy_overlap: int | None = None,
    background_density: float = 0.02,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, list[tuple[int, int]]]:
    """Sparse background plus ``num_heavy`` planted pairs with large overlap.

    Returns ``(A, B, planted)`` where ``planted`` lists the (row, column)
    pairs whose intersection was boosted.  Heavy pairs share a common block
    of ``heavy_overlap`` items (default ``n // 4``).
    """
    rng = _rng(seed)
    if heavy_overlap is None:
        heavy_overlap = max(2, n // 4)
    a = (rng.uniform(size=(n, n)) < background_density).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < background_density).astype(np.int64)
    planted: list[tuple[int, int]] = []
    rows = rng.choice(n, size=num_heavy, replace=False)
    cols = rng.choice(n, size=num_heavy, replace=False)
    for row, col in zip(rows, cols):
        shared = rng.choice(n, size=min(heavy_overlap, n), replace=False)
        a[row, shared] = 1
        b[shared, col] = 1
        planted.append((int(row), int(col)))
    return a, b, planted


def planted_max_overlap_pair(
    n: int,
    *,
    overlap: int | None = None,
    background_density: float = 0.02,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, tuple[int, int]]:
    """Sparse background plus one pair of sets with a large planted overlap.

    Returns ``(A, B, (row, col))`` where ``(row, col)`` realises (with high
    probability) the maximum entry of ``A @ B``.
    """
    rng = _rng(seed)
    if overlap is None:
        overlap = max(2, n // 3)
    a, b, planted = planted_heavy_hitters_pair(
        n,
        num_heavy=1,
        heavy_overlap=overlap,
        background_density=background_density,
        seed=rng,
    )
    return a, b, planted[0]


def integer_matrix_pair(
    n: int,
    *,
    max_value: int = 10,
    density: float = 0.1,
    planted_value: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """General integer matrices with polynomially bounded entries.

    Entries are zero with probability ``1 - density`` and otherwise uniform
    in ``[1, max_value]``.  If ``planted_value`` is given, one aligned
    row/column pair is filled with that value so ``A @ B`` has a very large
    entry (used by the general-matrix ``l_inf`` experiments).
    """
    rng = _rng(seed)
    a = rng.integers(1, max_value + 1, size=(n, n))
    b = rng.integers(1, max_value + 1, size=(n, n))
    a *= rng.uniform(size=(n, n)) < density
    b *= rng.uniform(size=(n, n)) < density
    if planted_value is not None:
        row = int(rng.integers(0, n))
        col = int(rng.integers(0, n))
        a[row, :] = planted_value
        b[:, col] = planted_value
    return a.astype(np.int64), b.astype(np.int64)


def rectangular_binary_pair(
    m1: int,
    n: int,
    m2: int,
    *,
    density: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Rectangular binary matrices ``A in {0,1}^{m1 x n}``, ``B in {0,1}^{n x m2}``.

    Section 6 of the paper: the algorithms carry over with ``n`` replaced by
    ``m`` in the appropriate places.
    """
    if not 0 <= density <= 1:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = _rng(seed)
    a = (rng.uniform(size=(m1, n)) < density).astype(np.int64)
    b = (rng.uniform(size=(n, m2)) < density).astype(np.int64)
    return a, b
