"""Synthetic matrix workloads and exact (ground-truth) statistics."""

from repro.matrices.generators import (
    integer_matrix_pair,
    planted_heavy_hitters_pair,
    planted_max_overlap_pair,
    random_binary_pair,
    rectangular_binary_pair,
    zipfian_sets_pair,
)
from repro.matrices.stats import (
    exact_heavy_hitters,
    exact_linf,
    exact_lp_norm,
    exact_lp_pp,
    exact_support,
    product,
)
from repro.matrices.setview import column_sets, row_sets

__all__ = [
    "integer_matrix_pair",
    "planted_heavy_hitters_pair",
    "planted_max_overlap_pair",
    "random_binary_pair",
    "rectangular_binary_pair",
    "zipfian_sets_pair",
    "exact_heavy_hitters",
    "exact_linf",
    "exact_lp_norm",
    "exact_lp_pp",
    "exact_support",
    "product",
    "column_sets",
    "row_sets",
]
