"""E11 — Theorem 4.5 / Lemma 4.7: the SUM reduction behind the Omega~(n^1.5/kappa) bound.

What is verified at laptop scale:

* equation (9): when ``SUM = 1`` the reduced matrices have
  ``||A B||_inf >= floor(n/k)`` — always, witnessed by the special block's
  diagonal entry;
* the structural zero side: when ``SUM = 0`` no DISJ block intersects, so
  every diagonal entry of ``A B`` is zero;
* the measured separation between the special entry and the typical
  (median) off-diagonal entry, which is what a ``kappa``-approximation must
  resolve.

The paper's equation (8) (*all* entries ``<= 2 beta^2 n`` w.h.p.) relies on
the asymptotic choice ``beta^2 = 50 log n / n``; at the small ``n`` used here
off-diagonal coincidences between tiled blocks can exceed that bound, so the
driver reports the worst-case off-diagonal entry rather than asserting it —
see EXPERIMENTS.md for the discussion.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentReport
from repro.lowerbounds.sum_problem import sample_sum_instance, sum_to_linf_matrices

CLAIM = (
    "Theorem 4.5 via Lemma 4.7: matrices built from a SUM instance have "
    "||AB||_inf >= n/k when SUM = 1 (and the zero side stays small under the paper's "
    "asymptotic parameters), so kappa-approximation inherits Omega~(n^1.5/kappa)."
)


def run(
    *,
    n: int = 256,
    kappa: float = 4.0,
    beta_constant: float = 0.2,
    instances: int = 10,
    seed: int = 11,
) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    rows = []
    for index in range(instances):
        force = index % 2
        instance = sample_sum_instance(
            n, kappa, force_sum=force, beta_constant=beta_constant, seed=rng
        )
        a, b = sum_to_linf_matrices(instance)
        c = a @ b
        linf = float(c.max())
        special_entry = float(c[instance.special_block, instance.special_block])
        off_diag = c[~np.eye(c.shape[0], dtype=bool)]
        typical = float(np.median(off_diag[off_diag > 0])) if np.any(off_diag > 0) else 0.0
        one_side_bound = instance.n // instance.k

        if force == 1:
            gap_ok = linf >= one_side_bound
        else:
            gap_ok = bool(np.all(np.diag(c) == 0))
        rows.append(
            {
                "instance": index,
                "sum": instance.sum_value,
                "linf": linf,
                "special_entry": special_entry,
                "typical_offdiag": typical,
                "one_side_bound": one_side_bound,
                "k": instance.k,
                "beta": round(instance.beta, 4),
                "gap_holds": bool(gap_ok),
            }
        )
    one_rows = [r for r in rows if r["sum"] == 1]
    summary = {
        "gap_holds_fraction": sum(r["gap_holds"] for r in rows) / len(rows),
        "kappa": kappa,
        "median_special_over_typical": (
            round(
                float(
                    np.median(
                        [
                            r["special_entry"] / max(r["typical_offdiag"], 1.0)
                            for r in one_rows
                        ]
                    )
                ),
                2,
            )
            if one_rows
            else 0.0
        ),
    }
    return ExperimentReport(experiment="E11", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
