"""E16 — runtime conditions: latency sweep, straggler link, site dropout.

The message-passing runtime (:mod:`repro.engine.runtime`) plus the network
condition models (:mod:`repro.comm.conditions`) add a *time* dimension and
a *fault* dimension to every experiment.  This driver exercises both on the
``lp_norm`` / ``join_size`` family:

* **Latency sweep** — the same query under uniform
  :class:`~repro.comm.conditions.LinkModel` conditions of increasing
  latency: bits and rounds are condition-invariant (conditions only price
  the transcript, never change it), while the simulated makespan grows by
  exactly one latency per round and always dominates the bandwidth bound
  ``max_link_bits / bandwidth + latency``.
* **Straggler** — one site's link override with a much larger latency: the
  critical path runs through the straggler, so the makespan jumps to (at
  least) the straggler's latency times its active rounds while every byte
  meter stays put.
* **Dropout** — one site declared dropped.  The default ``"fail"`` policy
  refuses to answer; ``Runtime(dropout="exclude")`` estimates from the
  survivors and renormalizes the additive ``join_size`` estimate by the
  inverse surviving row fraction, reporting exactly which sites
  contributed.
* **Streaming dropout** — a :class:`~repro.engine.streaming
  .StreamingSession` with a site dropped mid-stream: epoch reports list
  the partitioned site, live estimates go stale by its un-shipped drift,
  and the first sync after restoration recovers the streamed == one-shot
  summary identity bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.comm.conditions import LinkModel, NetworkConditions
from repro.engine.runtime import Runtime, SiteDroppedError
from repro.engine.streaming import StreamingSession
from repro.experiments.harness import ExperimentReport, cost_summary, relative_error
from repro.multiparty import ClusterEstimator

CLAIM = (
    "Network conditions price protocol transcripts into simulated makespans "
    "without perturbing a single bit or round: latency sweeps scale the "
    "makespan by rounds, a straggler link dominates the critical path, and "
    "dropped sites either fail the query or are excluded with renormalized "
    "estimates that report exactly which sites contributed."
)


def _workload(n: int, density: float, rng: np.random.Generator):
    a = (rng.uniform(size=(n, n)) < density).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < density).astype(np.int64)
    return a, b


def run(
    *,
    n: int = 64,
    num_sites: int = 4,
    epsilon: float = 0.3,
    density: float = 0.15,
    latencies: tuple[float, ...] = (0.0, 0.005, 0.02, 0.08),
    bandwidth: float = 1e6,
    straggler_latency: float = 0.5,
    seed: int = 9,
) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    a, b = _workload(n, density, rng)
    truth = float(np.count_nonzero(a @ b))
    rows = []

    # --- Latency sweep: same transcript, growing makespan -------------------
    baseline_bits = None
    sweep_makespans = []
    for latency in latencies:
        conditions = NetworkConditions(LinkModel(latency=latency, bandwidth=bandwidth))
        cluster = ClusterEstimator.from_matrix(
            a, b, num_sites, seed=seed, conditions=conditions
        )
        result = cluster.join_size(epsilon)
        cost = cost_summary(result)
        if baseline_bits is None:
            baseline_bits = cost["bits"]
        sweep_makespans.append(cost["makespan_s"])
        rows.append(
            {
                "scenario": "latency",
                "latency_s": latency,
                **cost,
                "rel_err": round(relative_error(result.value, truth), 4),
            }
        )
    bits_invariant = all(row["bits"] == baseline_bits for row in rows)
    rounds = rows[0]["rounds"]
    # One latency hit per round, links in parallel: the sweep grows by
    # exactly rounds * delta-latency on a uniform-link star.
    latency_slope_ok = all(
        abs(
            (sweep_makespans[i] - sweep_makespans[0])
            - rounds * (latencies[i] - latencies[0])
        )
        < 1e-9
        for i in range(len(latencies))
    )

    # --- Straggler: one slow link dominates the critical path ---------------
    uniform = NetworkConditions(LinkModel(latency=latencies[1], bandwidth=bandwidth))
    straggler = NetworkConditions(
        LinkModel(latency=latencies[1], bandwidth=bandwidth),
        overrides={"site-0": LinkModel(latency=straggler_latency, bandwidth=bandwidth)},
    )
    uniform_result = ClusterEstimator.from_matrix(
        a, b, num_sites, seed=seed, conditions=uniform
    ).join_size(epsilon)
    straggler_result = ClusterEstimator.from_matrix(
        a, b, num_sites, seed=seed, conditions=straggler
    ).join_size(epsilon)
    for label, result in (("uniform", uniform_result), ("straggler", straggler_result)):
        rows.append({"scenario": label, **cost_summary(result)})
    straggler_dominates = (
        straggler_result.cost.makespan
        >= straggler_latency
        > uniform_result.cost.makespan
    )
    transcripts_match = (
        straggler_result.cost.total_bits == uniform_result.cost.total_bits
        and straggler_result.value == uniform_result.value
    )

    # --- Dropout: fail vs exclude-with-renormalization ----------------------
    dropped = NetworkConditions(dropped={"site-1"})
    fail_raises = False
    try:
        ClusterEstimator.from_matrix(
            a, b, num_sites, seed=seed, conditions=dropped
        ).join_size(epsilon)
    except SiteDroppedError:
        fail_raises = True
    excluded = ClusterEstimator.from_matrix(
        a,
        b,
        num_sites,
        seed=seed,
        runtime=Runtime(dropout="exclude"),
        conditions=dropped,
    ).join_size(epsilon)
    dropout_info = excluded.details["dropout"]
    rows.append(
        {
            "scenario": "dropout-exclude",
            **cost_summary(excluded),
            "rel_err": round(relative_error(excluded.value, truth), 4),
        }
    )

    # --- Streaming dropout: stale while partitioned, exact after restore ----
    session = StreamingSession(
        [shard.shape[0] for shard in np.array_split(a, num_sites, axis=0)],
        b,
        seed=seed,
    )
    reference = StreamingSession(
        [shard.shape[0] for shard in np.array_split(a, num_sites, axis=0)],
        b,
        seed=seed,
    )
    offsets = np.cumsum([0] + [s.shape[0] for s in np.array_split(a, num_sites, axis=0)])
    for index in range(num_sites):
        shard = a[offsets[index] : offsets[index + 1]]
        shard_rows = offsets[index] + np.arange(shard.shape[0])
        session.ingest(index, shard_rows, shard)
        reference.ingest(index, shard_rows, shard)
    session.drop_site(1)
    stale_report = session.end_epoch()
    stale_l0 = session.live_l0()
    session.restore_site(1)
    session.sync()
    reference.sync()
    recovered = all(
        np.array_equal(
            session.merged[key].state_array(), reference.merged[key].state_array()
        )
        for key in session.merged
    )
    exact_l0 = float(np.count_nonzero(a @ b))
    rows.append(
        {
            "scenario": "streaming-dropout",
            "dropped": ",".join(stale_report.dropped),
            "stale_l0_rel_err": round(relative_error(stale_l0, exact_l0), 4),
            "recovered_bit_exact": recovered,
        }
    )

    summary = {
        "bits_invariant_under_conditions": bits_invariant and transcripts_match,
        "latency_slope_matches_rounds": latency_slope_ok,
        "straggler_dominates_makespan": straggler_dominates,
        "dropout_fail_raises": fail_raises,
        "dropout_contributing_sites": ",".join(dropout_info["contributing_sites"]),
        "dropout_renormalized": dropout_info["renormalized"],
        "dropout_rel_err": round(relative_error(excluded.value, truth), 4),
        "streaming_recovers_bit_exact": recovered,
    }
    return ExperimentReport(experiment="E16", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
