"""Canonical workloads used by the experiment drivers and benchmarks.

Workload sizes default to laptop scale (protocol asymptotics are checked via
shape fits, not absolute numbers); every driver accepts overrides.
"""

from __future__ import annotations

import numpy as np

from repro.matrices import generators


def join_workload(n: int, *, density: float = 0.08, seed: int = 0):
    """Uniform sparse binary pair — the default join-size workload."""
    return generators.random_binary_pair(n, density=density, seed=seed)


def skewed_join_workload(n: int, *, seed: int = 0):
    """Zipfian set sizes — the skewed-relation workload."""
    return generators.zipfian_sets_pair(n, seed=seed)


def max_overlap_workload(n: int, *, seed: int = 0):
    """Sparse background plus one planted maximum-overlap pair."""
    return generators.planted_max_overlap_pair(n, seed=seed)


def heavy_hitter_workload(n: int, *, num_heavy: int = 3, seed: int = 0):
    """Sparse background plus planted heavy pairs.

    The planted overlap is ``n // 2`` so the planted pairs clear typical
    ``phi`` thresholds (``phi ~ 0.05``) even after the background mass is
    added — i.e. the exact heavy-hitter set is non-empty and the recall
    numbers in E8/E9 are meaningful.
    """
    return generators.planted_heavy_hitters_pair(
        n, num_heavy=num_heavy, heavy_overlap=max(2, n // 2), seed=seed
    )


def integer_workload(n: int, *, planted_value: int | None = None, seed: int = 0):
    """General integer matrices (Section 4.3 / Theorem 4.8)."""
    return generators.integer_matrix_pair(n, density=0.1, planted_value=planted_value, seed=seed)


def rectangular_workload(m: int, n: int, *, density: float = 0.08, seed: int = 0):
    """Rectangular matrices for the Section 6 experiments."""
    return generators.rectangular_binary_pair(m, n, m, density=density, seed=seed)


def dense_overlap_workload(n: int, *, density: float = 0.4, seed: int = 0):
    """Dense binary pair: exercises the down-sampling levels of Algorithm 2/3."""
    rng = np.random.default_rng(seed)
    a = (rng.uniform(size=(n, n)) < density).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < density).astype(np.int64)
    return a, b
