"""Shared harness for the experiment drivers: sweeps, fits, tables."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / |truth|``.

    Edge cases: 0 when both are 0 (or both the same infinity), inf when
    exactly one is 0 or infinite, NaN when either input is NaN.  Negative
    truths are measured against their magnitude, so an exact estimate of a
    negative quantity reports error 0, not a sign artefact.
    """
    if math.isnan(estimate) or math.isnan(truth):
        return math.nan
    if truth == 0:
        return 0.0 if estimate == 0 else math.inf
    if math.isinf(truth):
        return 0.0 if estimate == truth else math.inf
    if math.isinf(estimate):
        return math.inf
    return abs(estimate - truth) / abs(truth)


def approx_ratio(estimate: float, truth: float) -> float:
    """Symmetric approximation ratio ``max(|e|/|t|, |t|/|e|)`` (>= 1).

    Defined for same-signed pairs (an estimator of a negative quantity that
    lands on the correct sign is rated by magnitude); sign disagreement,
    exactly one zero, or exactly one infinity rate as inf, matching infinities
    as 1, and NaN inputs propagate.
    """
    if math.isnan(estimate) or math.isnan(truth):
        return math.nan
    if truth == 0 and estimate == 0:
        return 1.0
    if truth == 0 or estimate == 0:
        return math.inf
    if (truth < 0) != (estimate < 0):
        return math.inf
    if math.isinf(truth) or math.isinf(estimate):
        return 1.0 if estimate == truth else math.inf
    magnitude_e, magnitude_t = abs(estimate), abs(truth)
    return max(magnitude_e / magnitude_t, magnitude_t / magnitude_e)


def cost_summary(result) -> dict:
    """Standard cost columns of a :class:`~repro.comm.protocol.ProtocolResult`.

    Returns ``bits`` / ``rounds`` / ``makespan_s`` (the simulated end-to-end
    seconds under the run's network conditions — 0 on ideal links) plus
    ``max_link_bits`` for cluster runs, so experiment tables report the time
    dimension alongside the communication meters uniformly.
    """
    cost = result.cost
    row = {
        "bits": cost.total_bits,
        "rounds": cost.rounds,
        "makespan_s": round(float(getattr(cost, "makespan", 0.0)), 6),
    }
    if hasattr(cost, "max_link_bits"):
        row["max_link_bits"] = cost.max_link_bits
    return row


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y ~= c * x^alpha`` in log-log space.

    Returns ``(alpha, c)``.  Used to check the *shape* of communication
    curves (e.g. bits vs. ``1/eps`` should have exponent ~1 for Algorithm 1
    and ~2 for the one-round baseline).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need at least two matching points to fit")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    slope, intercept = np.polyfit(np.log(x), np.log(y), 1)
    return float(slope), float(math.exp(intercept))


def format_table(rows: Iterable[dict], columns: Sequence[str] | None = None) -> str:
    """Plain-text table (used for EXPERIMENTS.md and the drivers' __main__)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table)) for i, col in enumerate(columns)]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in table
    )
    return f"{header}\n{separator}\n{body}"


@dataclass
class ExperimentReport:
    """Outcome of one experiment driver."""

    experiment: str
    claim: str
    rows: list[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)

    def table(self, columns: Sequence[str] | None = None) -> str:
        return format_table(self.rows, columns)

    def __str__(self) -> str:  # pragma: no cover - display helper
        lines = [f"Experiment {self.experiment}", f"Paper claim: {self.claim}", ""]
        lines.append(self.table())
        if self.summary:
            lines.append("")
            lines.append("Summary: " + ", ".join(f"{k}={v}" for k, v in self.summary.items()))
        return "\n".join(lines)
