"""Experiment drivers that regenerate every result listed in EXPERIMENTS.md.

Each ``eNN_*`` module exposes a ``run(...)`` function returning an
:class:`repro.experiments.harness.ExperimentReport`; the corresponding file
in ``benchmarks/`` executes it (scaled to laptop sizes) and asserts the
qualitative shape the paper claims (who wins, how costs scale).  The drivers
can also be run directly::

    python -m repro.experiments.e01_lp_norm
"""

from repro.experiments.harness import (
    ExperimentReport,
    approx_ratio,
    cost_summary,
    fit_power_law,
    format_table,
    relative_error,
)

__all__ = [
    "ExperimentReport",
    "approx_ratio",
    "cost_summary",
    "fit_power_law",
    "format_table",
    "relative_error",
]
