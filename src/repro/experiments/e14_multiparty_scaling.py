"""E14 — coordinator-model scaling: bits, link load and wall-clock vs k sites.

The k-party runtime (:mod:`repro.multiparty`) re-runs the paper's protocols
with the rows of ``A`` sharded across k sites around a coordinator holding
``B``.  The claims this driver checks:

* *rounds are k-invariant* — merging k site summaries costs no extra
  interaction, so every protocol keeps its two-party round count;
* *total bits grow (sub)linearly in k* — the broadcast and the k uploads
  each carry a per-site copy of an O~(n)-sized summary;
* *the busiest link stays ~flat* — per-link load does not grow with k, which
  is what lets the star parallelize (the makespan is bounded by
  ``max_link_bits``, not ``total_bits``).

The per-round bit breakdown (``Channel.bits_per_round`` contract, shared by
the network) attributes the growth: the downstream broadcast round scales
with k while each site's upload shrinks with its shard.
"""

from __future__ import annotations

import time

from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, relative_error
from repro.matrices import exact_heavy_hitters, exact_lp_pp, product
from repro.multiparty import ClusterEstimator

CLAIM = (
    "Coordinator model, k sites: round counts match the two-party protocols "
    "for every k, total bits grow at most linearly in k, and the busiest "
    "coordinator-site link carries no more than the two-party channel did."
)


def run(
    *,
    n: int = 96,
    ks: tuple[int, ...] = (2, 4, 8),
    epsilon: float = 0.3,
    phi: float = 0.05,
    hh_epsilon: float = 0.03,
    density: float = 0.08,
    seed: int = 3,
) -> ExperimentReport:
    a, b = workloads.join_workload(n, density=density, seed=seed)
    c = product(a, b)
    join_truth = exact_lp_pp(c, 0.0)
    hh_truth = exact_heavy_hitters(c, phi, p=1.0)
    hh_slack = exact_heavy_hitters(c, phi - hh_epsilon, p=1.0)

    rows = []
    for k in ks:
        cluster = ClusterEstimator.from_matrix(a, b, k, seed=seed)

        start = time.perf_counter()
        join = cluster.join_size(epsilon)
        join_wall = time.perf_counter() - start
        per_round = join.cost.per_round
        rows.append(
            {
                "k": k,
                "query": "join_size",
                "rel_error": relative_error(join.value, join_truth),
                "bits": join.cost.total_bits,
                "rounds": join.cost.rounds,
                "max_link_bits": join.cost.max_link_bits,
                "round1_bits": per_round.get(1, 0),
                "round2_bits": per_round.get(2, 0),
                "wall_ms": join_wall * 1e3,
            }
        )

        start = time.perf_counter()
        sample = cluster.l0_sample(epsilon)
        sample_wall = time.perf_counter() - start
        valid = bool(sample.value.success and c[sample.value.row, sample.value.col] != 0)
        rows.append(
            {
                "k": k,
                "query": "l0_sample",
                "rel_error": 0.0 if valid else float("inf"),
                "bits": sample.cost.total_bits,
                "rounds": sample.cost.rounds,
                "max_link_bits": sample.cost.max_link_bits,
                "round1_bits": sample.cost.per_round.get(1, 0),
                "round2_bits": sample.cost.per_round.get(2, 0),
                "wall_ms": sample_wall * 1e3,
            }
        )

        start = time.perf_counter()
        heavy = cluster.heavy_hitters(phi, hh_epsilon)
        heavy_wall = time.perf_counter() - start
        # Correct iff complete (every exact heavy hitter reported) and sound
        # (nothing outside the (phi - eps) slack set reported).
        hh_correct = hh_truth <= heavy.value.pairs <= hh_slack
        rows.append(
            {
                "k": k,
                "query": "heavy_hitters",
                "rel_error": 0.0 if hh_correct else float("inf"),
                "bits": heavy.cost.total_bits,
                "rounds": heavy.cost.rounds,
                "max_link_bits": heavy.cost.max_link_bits,
                "round1_bits": heavy.cost.per_round.get(1, 0),
                "round2_bits": heavy.cost.per_round.get(2, 0),
                "wall_ms": heavy_wall * 1e3,
            }
        )

    by_query: dict[str, list[dict]] = {}
    for row in rows:
        by_query.setdefault(row["query"], []).append(row)

    smallest_k, largest_k = min(ks), max(ks)
    join_rows = by_query["join_size"]
    bits_small = next(r["bits"] for r in join_rows if r["k"] == smallest_k)
    bits_large = next(r["bits"] for r in join_rows if r["k"] == largest_k)
    link_small = next(r["max_link_bits"] for r in join_rows if r["k"] == smallest_k)
    link_large = next(r["max_link_bits"] for r in join_rows if r["k"] == largest_k)

    summary = {
        "rounds_k_invariant": all(
            len({r["rounds"] for r in q_rows}) == 1 for q_rows in by_query.values()
        ),
        "join_bits_growth": round(bits_large / bits_small, 2),
        "k_growth": round(largest_k / smallest_k, 2),
        "max_link_growth": round(link_large / max(link_small, 1), 2),
        "max_rel_error": round(max(r["rel_error"] for r in rows), 3),
    }
    return ExperimentReport(experiment="E14", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
