"""E4 — Theorem 3.2: one-round ``l_0``-sampling over the support of ``A B``."""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.core.l0_sampling import L0SamplingProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport
from repro.matrices import product

CLAIM = (
    "Theorem 3.2: l_0-sampling on C = AB succeeds with constant probability in one "
    "round and O~(n/eps^2) bits; the sampled entry is (1±eps)-uniform over the support."
)


def run(
    *,
    n: int = 64,
    density: float = 0.06,
    num_samples: int = 300,
    epsilon: float = 0.3,
    seed: int = 4,
) -> ExperimentReport:
    a, b = workloads.join_workload(n, density=density, seed=seed)
    c = product(a, b)
    support = list(zip(*np.nonzero(c)))
    support_size = len(support)

    counts: dict[tuple[int, int], int] = {}
    failures = 0
    bits = 0
    rounds = 0
    for i in range(num_samples):
        result = L0SamplingProtocol(epsilon, seed=seed * 10_000 + i).run(a, b)
        bits = result.cost.total_bits
        rounds = result.cost.rounds
        sample = result.value
        if not sample.success:
            failures += 1
            continue
        pair = (int(sample.row), int(sample.col))
        counts[pair] = counts.get(pair, 0) + 1

    successes = num_samples - failures
    in_support = sum(count for pair, count in counts.items() if c[pair] != 0)

    # Uniformity check at column granularity (per-cell expected counts are
    # far below the chi-square validity threshold, so aggregate): under
    # uniform support sampling, the number of samples landing in column j is
    # proportional to that column's support size.
    column_support = np.count_nonzero(c, axis=0).astype(float)
    observed_columns = np.zeros(c.shape[1])
    for (row, col), count in counts.items():
        observed_columns[col] += count
    nonempty = column_support > 0
    if successes > 0 and np.count_nonzero(nonempty) > 1:
        expected = successes * column_support[nonempty] / column_support[nonempty].sum()
        chi2, p_value = scipy_stats.chisquare(observed_columns[nonempty], expected)
    else:
        chi2, p_value = 0.0, 1.0

    rows = [
        {
            "n": n,
            "support_size": support_size,
            "samples": num_samples,
            "failures": failures,
            "valid_fraction": in_support / max(successes, 1),
            "chi2": float(chi2),
            "uniformity_p_value": float(p_value),
            "bits": bits,
            "rounds": rounds,
        }
    ]
    summary = {
        "failure_rate": round(failures / num_samples, 3),
        "uniformity_p_value": round(float(p_value), 3),
        "rounds": rounds,
    }
    return ExperimentReport(experiment="E4", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
