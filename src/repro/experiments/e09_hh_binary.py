"""E9 — Theorem 5.3: heavy hitters for binary matrices with O~(n + phi/eps^2) bits."""

from __future__ import annotations

from repro.core.heavy_hitters_binary import BinaryHeavyHittersProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, fit_power_law
from repro.matrices import exact_heavy_hitters, product

CLAIM = (
    "Theorem 5.3: for binary matrices the l_p-(phi,eps) heavy hitters of AB can be "
    "computed with O~(n + phi/eps^2) bits and O(1) rounds."
)


def run(
    *,
    sizes: tuple[int, ...] = (64, 96, 128, 192),
    phi: float = 0.05,
    epsilon: float = 0.025,
    seed: int = 9,
) -> ExperimentReport:
    rows = []
    for n in sizes:
        a, b, _planted = workloads.heavy_hitter_workload(n, num_heavy=3, seed=seed)
        c = product(a, b)
        must = exact_heavy_hitters(c, phi, p=1)
        may = exact_heavy_hitters(c, phi - epsilon, p=1)

        result = BinaryHeavyHittersProtocol(phi, epsilon, p=1.0, seed=seed).run(a, b)
        reported = result.value.pairs
        recall = 1.0 if not must else len(reported & must) / len(must)
        soundness = 1.0 if not reported else len(reported & may) / len(reported)
        rows.append(
            {
                "n": n,
                "true_heavy": len(must),
                "reported": len(reported),
                "recall": recall,
                "soundness": soundness,
                "bits": result.cost.total_bits,
                "rounds": result.cost.rounds,
            }
        )

    exponent, _ = fit_power_law([r["n"] for r in rows], [r["bits"] for r in rows])
    summary = {
        "min_recall": round(min(r["recall"] for r in rows), 3),
        "min_soundness": round(min(r["soundness"] for r in rows), 3),
        "bits_vs_n_exponent": round(exponent, 2),
        "rounds": max(r["rounds"] for r in rows),
    }
    return ExperimentReport(experiment="E9", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
