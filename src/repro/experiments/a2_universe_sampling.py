"""A2 — ablation: the universe-sampling step of Algorithm 3.

Algorithm 3 = Algorithm 2's level sampling *plus* an initial universe
sampling of the shared items at rate ``q = min(alpha/kappa, 1)``.  The paper
credits this extra step with improving the bound from ``O~(n^1.5/sqrt(kappa))``
to ``O~(n^1.5/kappa)``.  The ablation compares Algorithm 3 against Algorithm 2
run at a matching accuracy target on dense workloads, measuring the index
exchange volume with and without universe sampling.
"""

from __future__ import annotations

from repro.core.linf_binary import KappaApproxLinfProtocol, TwoPlusEpsilonLinfProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, approx_ratio
from repro.matrices import exact_linf, product

CLAIM = (
    "Ablation of Section 4.1.2: the universe-sampling step is what reduces the index "
    "exchange from O~(n^1.5/sqrt(kappa)) to O~(n^1.5/kappa); without it (Algorithm 2) "
    "the exchange volume is larger at every kappa."
)


def run(
    *,
    n: int = 192,
    kappas: tuple[float, ...] = (8.0, 16.0, 32.0),
    seed: int = 22,
) -> ExperimentReport:
    a, b = workloads.dense_overlap_workload(n, density=0.35, seed=seed)
    truth = exact_linf(product(a, b))

    without = TwoPlusEpsilonLinfProtocol(0.5, seed=seed).run(a, b)
    rows = []
    for kappa in kappas:
        with_sampling = KappaApproxLinfProtocol(kappa, seed=seed).run(a, b)
        rows.append(
            {
                "kappa": kappa,
                "with_universe_sampling_bits": with_sampling.cost.total_bits,
                "without_bits": without.cost.total_bits,
                "with_exchanged_indices": with_sampling.details.get("exchanged_indices", 0),
                "without_exchanged_indices": without.details.get("exchanged_indices", 0),
                "with_ratio": approx_ratio(with_sampling.value, truth),
                "without_ratio": approx_ratio(without.value, truth),
            }
        )

    summary = {
        "sampling_always_cheaper": all(
            r["with_universe_sampling_bits"] <= r["without_bits"] for r in rows
        ),
        "all_within_kappa": all(r["with_ratio"] <= r["kappa"] for r in rows),
    }
    return ExperimentReport(experiment="A2", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
