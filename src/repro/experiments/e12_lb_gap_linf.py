"""E12 — Theorem 4.8(2): the Gap-l_inf reduction for general integer matrices."""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentReport
from repro.lowerbounds.gap_linf import gap_linf_to_matrices, random_gap_linf_instance

CLAIM = (
    "Theorem 4.8(2): integer matrices built from a Gap-l_inf instance have "
    "||AB||_inf >= kappa in the far case and <= 1 in the close case, so a "
    "kappa-approximation solves Gap-l_inf and needs Omega~(n^2/kappa^2) bits."
)


def run(
    *,
    half_sizes: tuple[int, ...] = (8, 16, 32),
    kappa: int = 8,
    instances_per_size: int = 20,
    seed: int = 12,
) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    rows = []
    for half in half_sizes:
        length = half * half
        correct = 0
        for index in range(instances_per_size):
            far = bool(index % 2)
            instance = random_gap_linf_instance(length, kappa, far=far, seed=rng)
            a, b = gap_linf_to_matrices(instance)
            linf = float(np.max(np.abs(a @ b)))
            predicted_far = linf >= kappa
            correct += predicted_far == instance.is_far
        rows.append(
            {
                "n": 2 * half,
                "kappa": kappa,
                "instances": instances_per_size,
                "gap_holds_fraction": correct / instances_per_size,
            }
        )
    summary = {"gap_always_holds": all(r["gap_holds_fraction"] == 1.0 for r in rows)}
    return ExperimentReport(experiment="E12", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
