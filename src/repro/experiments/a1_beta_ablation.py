"""A1 — ablation: the sqrt(eps) rough-estimation accuracy of Algorithm 1.

Algorithm 1's key idea (Section 3, "The Idea") is to run the row sketch at
accuracy ``beta = sqrt(eps)`` and recover the lost accuracy via importance
sampling, instead of sketching directly at accuracy ``eps`` as [16] does.
This ablation runs the two-round protocol while forcing the baseline choice
``beta = eps`` (by squaring epsilon in the round-1 sketch), showing the
communication blow-up the paper's choice avoids.
"""

from __future__ import annotations

from repro.baselines.one_round import OneRoundLpNormProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, relative_error
from repro.matrices import exact_lp_pp, product

CLAIM = (
    "Ablation of Section 3: choosing beta = sqrt(eps) + sampling (ours) versus "
    "beta = eps direct sketching ([16]); the former's round-1 message is a factor "
    "~1/eps smaller at comparable accuracy."
)


def run(
    *,
    n: int = 128,
    epsilons: tuple[float, ...] = (0.4, 0.25, 0.15),
    p: float = 0.0,
    seed: int = 21,
) -> ExperimentReport:
    a, b = workloads.join_workload(n, density=0.08, seed=seed)
    truth = exact_lp_pp(product(a, b), p)

    rows = []
    for eps in epsilons:
        grouped = LpNormProtocol(p, eps, seed=seed).run(a, b)
        direct = OneRoundLpNormProtocol(p, eps, seed=seed).run(a, b)
        rows.append(
            {
                "eps": eps,
                "grouped_bits": grouped.cost.total_bits,
                "direct_bits": direct.cost.total_bits,
                "bits_ratio_direct_over_grouped": direct.cost.total_bits
                / max(grouped.cost.total_bits, 1),
                "grouped_rel_error": relative_error(grouped.value, truth),
                "direct_rel_error": relative_error(direct.value, truth),
            }
        )

    ratios = [r["bits_ratio_direct_over_grouped"] for r in rows]
    summary = {
        "ratio_grows_as_eps_shrinks": all(
            ratios[i + 1] >= ratios[i] * 0.9 for i in range(len(ratios) - 1)
        ),
        "max_ratio": round(max(ratios), 2),
    }
    return ExperimentReport(experiment="A1", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
