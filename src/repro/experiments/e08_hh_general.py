"""E8 — Theorem 5.1 / Corollary 5.2: heavy hitters for general matrices."""

from __future__ import annotations

from repro.baselines.countsketch_hh import CompressedMatMulHeavyHittersProtocol
from repro.core.heavy_hitters_general import GeneralHeavyHittersProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport
from repro.matrices import exact_heavy_hitters, product

CLAIM = (
    "Theorem 5.1: l_1-(phi,eps) heavy hitters of AB can be found with O~((sqrt(phi)/eps) n) "
    "bits and O(1) rounds; the CountSketch (compressed matmul) baseline needs Theta~(n/eps^2)."
)


def _recall_and_soundness(
    reported: set[tuple[int, int]],
    must_report: set[tuple[int, int]],
    may_report: set[tuple[int, int]],
) -> tuple[float, float]:
    recall = 1.0 if not must_report else len(reported & must_report) / len(must_report)
    soundness = 1.0 if not reported else len(reported & may_report) / len(reported)
    return recall, soundness


def run(
    *,
    n: int = 96,
    phi: float = 0.05,
    epsilons: tuple[float, ...] = (0.04, 0.025, 0.0125),
    seed: int = 8,
    include_baseline: bool = True,
) -> ExperimentReport:
    a, b, _planted = workloads.heavy_hitter_workload(n, num_heavy=3, seed=seed)
    c = product(a, b)

    rows = []
    for eps in epsilons:
        must = exact_heavy_hitters(c, phi, p=1)
        may = exact_heavy_hitters(c, phi - eps, p=1)
        ours = GeneralHeavyHittersProtocol(phi, eps, p=1.0, seed=seed).run(a, b)
        recall, soundness = _recall_and_soundness(ours.value.pairs, must, may)
        row = {
            "phi": phi,
            "eps": eps,
            "true_heavy": len(must),
            "reported": len(ours.value.pairs),
            "recall": recall,
            "soundness": soundness,
            "bits": ours.cost.total_bits,
            "rounds": ours.cost.rounds,
        }
        if include_baseline:
            baseline = CompressedMatMulHeavyHittersProtocol(phi, eps, seed=seed).run(a, b)
            b_recall, b_soundness = _recall_and_soundness(baseline.value.pairs, must, may)
            row.update(
                {
                    "baseline_bits": baseline.cost.total_bits,
                    "baseline_recall": b_recall,
                    "baseline_soundness": b_soundness,
                }
            )
        rows.append(row)

    summary = {
        "min_recall": round(min(r["recall"] for r in rows), 3),
        "min_soundness": round(min(r["soundness"] for r in rows), 3),
        "rounds": max(r["rounds"] for r in rows),
    }
    if include_baseline:
        summary["ours_cheaper_than_baseline"] = all(
            r["bits"] <= r["baseline_bits"] for r in rows
        )
    return ExperimentReport(experiment="E8", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
