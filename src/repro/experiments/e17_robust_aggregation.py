"""E17 — robust aggregation: Byzantine accuracy and quorum makespans.

ISSUE 9's robustness layer adds two levers to every additive protocol
family and this driver charts both:

* **Accuracy vs corrupt sites** — a k-site cluster answers ``lp_norm``
  (Algorithm 1's additive per-site shares) and ``l1-exact`` (Remark 2's
  mergeable column sums) while ``c`` sites upload adversarially corrupted
  contributions (:class:`~repro.engine.robust.FaultPlan`).  The plain
  entrywise merge is displaced without bound; the trimmed-mean and median
  estimators (:mod:`repro.engine.robust`) stay within the charted
  :func:`~repro.engine.robust.robust_error_bound` ``k * (max - min)`` of
  the clean answer whenever ``c <= f``.  The headline row is flip-sign at
  ``c = f = 2`` on ``k = 8``: trimmed-mean lands inside the bound, the
  plain merge violates it — for both families.
* **Quorum size vs makespan** — the same query under heterogeneous link
  latencies with ``Runtime(quorum=(n, f))``: the coordinator answers from
  the fastest ``n - f`` responders, so the simulated makespan is set by
  the ``(n - f)``-th fastest link instead of the slowest, strictly
  decreasing as ``f`` grows, while survivor renormalization keeps the
  estimate on target and the details name the excluded stragglers.
"""

from __future__ import annotations

import numpy as np

from repro.comm.conditions import LinkModel, NetworkConditions
from repro.engine.l1 import StarExactL1Protocol
from repro.engine.lp_norm import StarLpNormProtocol
from repro.engine.robust import FaultPlan, RobustPolicy, robust_error_bound
from repro.engine.runtime import QuorumPolicy, Runtime
from repro.experiments.harness import ExperimentReport, relative_error

CLAIM = (
    "Trimmed-mean and median recombination of per-site additive summaries "
    "tolerate up to f arbitrarily corrupted sites: the robust answer stays "
    "within the k*(max-min) honest-range bound while the plain merge is "
    "displaced without bound, and quorum execution answers from the fastest "
    "n-f responders with a strictly smaller simulated makespan than the "
    "full fan-in."
)


def _workload(rows: int, n: int, density: float, rng: np.random.Generator):
    a = (rng.uniform(size=(rows, n)) < density).astype(np.int64)
    b = (rng.uniform(size=(n, n)) < density).astype(np.int64)
    return a, b


def _deviation_rows(
    family: str,
    results: dict[str, float],
    clean: float,
    bound: float,
    corrupt: int,
) -> dict:
    """One accuracy row: absolute displacement of each merge vs the bound."""
    row = {"scenario": "corruption", "family": family, "corrupt": corrupt}
    for label, value in results.items():
        row[f"{label}_dev"] = round(abs(value - clean), 2)
    row["bound"] = round(bound, 2)
    row["plain_within_bound"] = abs(results["plain"] - clean) <= bound
    row["trimmed_within_bound"] = abs(results["trimmed"] - clean) <= bound
    return row


def run(
    *,
    rows_per_site: int = 160,
    n: int = 64,
    num_sites: int = 8,
    epsilon: float = 0.3,
    density: float = 0.2,
    max_corrupt: int = 3,
    adversary: str = "flip-sign",
    base_latency: float = 0.01,
    latency_step: float = 0.04,
    seed: int = 17,
) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    a, b = _workload(rows_per_site * num_sites, n, density, rng)
    shards = np.array_split(a, num_sites, axis=0)
    c = a @ b
    rows: list[dict] = []

    # --- Accuracy vs corrupt sites, per additive family ---------------------
    # Same seed everywhere: the transcript (sampling, sketches) is identical
    # across the plain/trimmed/median runs, so displacement is purely the
    # combiner's doing.
    def lp_run(policy, faults):
        conditions = NetworkConditions(faults=faults) if faults is not None else None
        return StarLpNormProtocol(2.0, epsilon, seed=seed, robust=policy).run(
            shards, b, conditions=conditions
        )

    def l1_run(policy, faults):
        conditions = NetworkConditions(faults=faults) if faults is not None else None
        return StarExactL1Protocol(seed=seed, robust=policy).run(
            shards, b, conditions=conditions
        )

    # Clean references (robust f=0 is the plain in-order sum, bit for bit)
    # also expose the honest per-site contributions the error bound needs.
    lp_clean = lp_run(RobustPolicy(0), None)
    lp_site_estimates = lp_clean.details["site_estimates"]
    l1_clean = l1_run(RobustPolicy(0), None)
    l1_site_sums = [shard.sum(axis=0).astype(float) for shard in shards]
    b_row_sums = b.sum(axis=1).astype(float)

    headline = {}
    for corrupt in range(max_corrupt + 1):
        plan = {f"site-{i}": adversary for i in range(corrupt)}
        for family, runner, bound in (
            (
                "lp_norm",
                lp_run,
                float(robust_error_bound(lp_site_estimates, corrupt)),
            ),
            (
                "l1-exact",
                l1_run,
                # Coordinatewise column-sum bound, priced through Remark 2's
                # inner product with B's row sums.
                float(
                    np.dot(
                        np.asarray(robust_error_bound(l1_site_sums, corrupt)),
                        b_row_sums,
                    )
                ),
            ),
        ):
            clean = lp_clean.value if family == "lp_norm" else l1_clean.value
            results = {
                "plain": runner(None, FaultPlan(plan, seed=seed)).value,
                "trimmed": runner(
                    RobustPolicy(corrupt), FaultPlan(plan, seed=seed)
                ).value,
                "median": runner(
                    RobustPolicy(corrupt, strategy="median"),
                    FaultPlan(plan, seed=seed),
                ).value,
            }
            row = _deviation_rows(family, results, clean, bound, corrupt)
            rows.append(row)
            if corrupt == 2:
                headline[family] = row

    # --- Quorum size vs makespan under heterogeneous latencies --------------
    # Distinct per-site latencies: the f slowest links leave the critical
    # path, so each extra unit of tolerance strictly shortens the makespan.
    overrides = {
        f"site-{i}": LinkModel(latency=base_latency + i * latency_step)
        for i in range(num_sites)
    }
    conditions = NetworkConditions(LinkModel(latency=base_latency), overrides=overrides)
    truth = float(np.sum(np.abs(c) ** 2))
    makespans = []
    for f in range(max_corrupt + 1):
        runtime = Runtime(quorum=QuorumPolicy(f=f), dropout="exclude")
        result = StarLpNormProtocol(2.0, epsilon, seed=seed).run(
            shards, b, runtime=runtime, conditions=conditions
        )
        makespans.append(result.cost.makespan)
        dropout = result.details.get("dropout", {})
        rows.append(
            {
                "scenario": "quorum",
                "family": "lp_norm",
                "f": f,
                "required": num_sites - f,
                "makespan_s": round(result.cost.makespan, 6),
                "bits": result.cost.total_bits,
                "rel_err": round(relative_error(result.value, truth), 4),
                "stragglers": ",".join(dropout.get("stragglers", [])),
            }
        )

    summary = {
        "flip_sign_f2_trimmed_within_bound": all(
            row["trimmed_within_bound"] for row in headline.values()
        ),
        "flip_sign_f2_plain_violates_bound": all(
            not row["plain_within_bound"] for row in headline.values()
        ),
        "quorum_makespan_strictly_decreasing": all(
            makespans[i + 1] < makespans[i] for i in range(len(makespans) - 1)
        ),
        "quorum_f_max_speedup": round(makespans[0] / makespans[-1], 3),
    }
    return ExperimentReport(experiment="E17", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
