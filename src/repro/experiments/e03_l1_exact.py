"""E3 — Remark 2/3: exact ``||A B||_1`` and ``l_1``-sampling in one round, O(n log n) bits."""

from __future__ import annotations

import numpy as np

from repro.core.l1_exact import ExactL1Protocol, L1SamplingProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, fit_power_law
from repro.matrices import product

CLAIM = (
    "Remark 2: ||AB||_1 can be computed exactly with O(n log n) bits in one round; "
    "Remark 3: an l_1-sample costs the same."
)


def run(
    *,
    sizes: tuple[int, ...] = (64, 128, 256, 384),
    density: float = 0.08,
    samples_per_size: int = 30,
    seed: int = 3,
) -> ExperimentReport:
    rows = []
    for n in sizes:
        a, b = workloads.join_workload(n, density=density, seed=seed)
        c = product(a, b)
        truth = float(c.sum())

        exact = ExactL1Protocol(seed=seed).run(a, b)

        # l_1 samples should land on entries proportionally to their value:
        # check the aggregate by comparing the mean sampled value with the
        # value-weighted mean sum(C_ij^2)/sum(C_ij).
        sampled_values = []
        for i in range(samples_per_size):
            sample = L1SamplingProtocol(seed=seed * 1000 + i).run(a, b)
            if sample.value.success:
                sampled_values.append(float(c[sample.value.row, sample.value.col]))
        expected_mean = float((c.astype(float) ** 2).sum() / truth) if truth else 0.0
        rows.append(
            {
                "n": n,
                "exact_value": exact.value,
                "truth": truth,
                "exact_matches": bool(exact.value == truth),
                "bits": exact.cost.total_bits,
                "rounds": exact.cost.rounds,
                "mean_sampled_value": float(np.mean(sampled_values)) if sampled_values else 0.0,
                "value_weighted_mean": expected_mean,
            }
        )

    exponent, _ = fit_power_law([r["n"] for r in rows], [r["bits"] for r in rows])
    summary = {
        "all_exact": all(r["exact_matches"] for r in rows),
        "bits_vs_n_exponent": round(exponent, 2),
        "rounds": max(r["rounds"] for r in rows),
    }
    return ExperimentReport(experiment="E3", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
