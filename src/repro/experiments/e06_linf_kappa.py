"""E6 — Theorem 4.3: kappa-approximation of ``||A B||_inf`` with O~(n^1.5/kappa) bits."""

from __future__ import annotations

from repro.core.linf_binary import KappaApproxLinfProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, approx_ratio
from repro.matrices import exact_linf, product

CLAIM = (
    "Theorem 4.3: for binary matrices and kappa in [4, n], ||AB||_inf can be "
    "kappa-approximated with O~(n^1.5/kappa) bits; communication decreases as kappa grows."
)


def run(
    *,
    n: int = 192,
    kappas: tuple[float, ...] = (4.0, 8.0, 16.0, 32.0),
    seed: int = 6,
) -> ExperimentReport:
    a, b = workloads.dense_overlap_workload(n, density=0.3, seed=seed)
    truth = exact_linf(product(a, b))

    rows = []
    for kappa in kappas:
        result = KappaApproxLinfProtocol(kappa, seed=seed).run(a, b)
        rows.append(
            {
                "kappa": kappa,
                "estimate": result.value,
                "truth": truth,
                "approx_ratio": approx_ratio(result.value, truth),
                "within_kappa": approx_ratio(result.value, truth) <= kappa,
                "bits": result.cost.total_bits,
                "rounds": result.cost.rounds,
            }
        )

    bits = [r["bits"] for r in rows]
    summary = {
        "bits_non_increasing_in_kappa": all(
            bits[i + 1] <= bits[i] * 1.05 for i in range(len(bits) - 1)
        ),
        "all_within_kappa": all(r["within_kappa"] for r in rows),
    }
    return ExperimentReport(experiment="E6", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
