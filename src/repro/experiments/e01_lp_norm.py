"""E1 — Theorem 3.1: (1+eps)-approximation of ``||A B||_p`` in 2 rounds, ``O~(n/eps)`` bits."""

from __future__ import annotations

from repro.core.lp_norm import LpNormProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, fit_power_law, relative_error
from repro.matrices import exact_lp_pp, product

CLAIM = (
    "Theorem 3.1: for p in [0,2] the two-round protocol (1+eps)-approximates "
    "||AB||_p^p with O~(n/eps) bits of communication."
)


def run(
    *,
    sizes: tuple[int, ...] = (64, 128, 192),
    epsilons: tuple[float, ...] = (0.5, 0.35, 0.25),
    ps: tuple[float, ...] = (0.0, 1.0, 2.0),
    density: float = 0.08,
    seed: int = 1,
) -> ExperimentReport:
    rows = []
    for p in ps:
        for n in sizes:
            a, b = workloads.join_workload(n, density=density, seed=seed)
            truth = exact_lp_pp(product(a, b), p)
            for eps in epsilons:
                result = LpNormProtocol(p, eps, seed=seed).run(a, b)
                rows.append(
                    {
                        "p": p,
                        "n": n,
                        "eps": eps,
                        "estimate": result.value,
                        "truth": truth,
                        "rel_error": relative_error(result.value, truth),
                        "bits": result.cost.total_bits,
                        "rounds": result.cost.rounds,
                    }
                )

    # Shape check: bits vs n at fixed eps should be ~linear.
    fixed_eps = epsilons[-1]
    per_n = [r for r in rows if r["eps"] == fixed_eps and r["p"] == ps[0]]
    if len(per_n) >= 2:
        exponent_n, _ = fit_power_law([r["n"] for r in per_n], [r["bits"] for r in per_n])
    else:
        exponent_n = float("nan")
    summary = {
        "bits_vs_n_exponent": round(exponent_n, 2),
        "max_rel_error": round(max(r["rel_error"] for r in rows), 3),
        "rounds": max(r["rounds"] for r in rows),
    }
    return ExperimentReport(experiment="E1", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
