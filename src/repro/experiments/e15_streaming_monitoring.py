"""E15 — streaming continuous monitoring: wire bytes per epoch vs refresh policy.

The streaming runtime (:mod:`repro.engine.streaming`) turns the one-shot
coordinator protocols into continuous monitoring: sites ingest batched
turnstile updates to their rows of ``A`` over epochs and ship serialized
sketch deltas upstream, metered in *actual encoded bytes* on the wire.  The
claims this driver checks:

* *threshold refresh ships strictly fewer bytes than every-epoch refresh on
  a skewed workload* — quiet sites' drift stays below the threshold, so
  they stay silent while the hot site keeps re-syncing;
* *live estimates track the truth* — after a sync, the coordinator's merged
  summaries estimate ``||C||_2^2`` and ``||C||_0`` within the monitor
  accuracy, under either policy;
* *the streamed run degrades nothing* — a one-shot query on the session
  after ingestion equals, bit for bit, the same query on a fresh
  ``ClusterEstimator`` over the final shards (the equivalence discipline
  pinned in ``tests/engine/test_streaming.py``).
"""

from __future__ import annotations

import numpy as np

from repro.engine.streaming import StreamingSession
from repro.experiments.harness import ExperimentReport, relative_error
from repro.multiparty import ClusterEstimator

CLAIM = (
    "Streaming monitoring over the star: threshold-triggered refresh ships "
    "strictly fewer wire bytes than every-epoch refresh on a skewed site "
    "workload, live estimates stay within the monitor accuracy after syncs, "
    "and a final one-shot query matches the batch protocol bit for bit."
)


def _update_schedule(
    n: int, bounds: np.ndarray, epochs: int, density: float, rng: np.random.Generator
) -> list[list[tuple[int, np.ndarray, np.ndarray]]]:
    """A skewed epoch schedule: site 0 is hot, the rest trickle.

    ``bounds`` is the site partition of the rows (``num_sites + 1`` edges).
    Returns, per epoch, a list of ``(site, rows, deltas)`` ingestion batches
    (global row indices, integer row-deltas).
    """
    num_sites = len(bounds) - 1
    schedule = []
    for _ in range(epochs):
        batches = []
        for site in range(num_sites):
            low, high = bounds[site], bounds[site + 1]
            if high <= low:
                continue  # zero-row site: nothing to update
            # The hot site updates about half its rows per epoch; quiet
            # sites touch a single row.
            num_rows = max(1, (high - low) // 2) if site == 0 else 1
            rows = rng.choice(np.arange(low, high), size=num_rows, replace=False)
            deltas = (rng.uniform(size=(num_rows, n)) < density).astype(np.int64)
            batches.append((site, rows, deltas))
        schedule.append(batches)
    return schedule


def run(
    *,
    n: int = 64,
    num_sites: int = 4,
    epochs: int = 8,
    density: float = 0.1,
    b_density: float = 0.1,
    threshold: float = 0.3,
    monitor_epsilon: float = 0.25,
    epsilon: float = 0.3,
    seed: int = 5,
) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    b = (rng.uniform(size=(n, n)) < b_density).astype(np.int64)
    bounds = np.linspace(0, n, num_sites + 1).astype(int)
    schedule = _update_schedule(n, bounds, epochs, density, rng)

    row_counts = np.diff(bounds).tolist()
    sessions = {
        policy: StreamingSession(
            row_counts,
            b,
            seed=seed,
            refresh=policy,
            threshold=threshold,
            monitor_epsilon=monitor_epsilon,
        )
        for policy in ("every-epoch", "threshold")
    }

    a = np.zeros((n, n), dtype=np.int64)
    rows = []
    for batches in schedule:
        for site, update_rows, deltas in batches:
            np.add.at(a, update_rows, deltas)
            for session in sessions.values():
                session.ingest(site, update_rows, deltas)
        c = a @ b
        exact_f2 = float((c.astype(float) ** 2).sum())
        exact_l0 = float(np.count_nonzero(c))
        for policy, session in sessions.items():
            report = session.end_epoch()
            rows.append(
                {
                    # 1-based, matching EpochReport.epoch / session.history.
                    "epoch": report.epoch,
                    "policy": policy,
                    "sites_shipped": sum(report.shipped.values()),
                    "bytes": report.total_bytes,
                    "cum_bytes": report.cumulative_bytes,
                    "f2_rel_err": relative_error(session.live_lp_norm(2.0), exact_f2),
                    "l0_rel_err": relative_error(session.live_l0(), exact_l0),
                }
            )

    # Final sync: every pending delta lands, so live estimates of both
    # policies read the same merged summaries.
    for session in sessions.values():
        session.sync()
    c = a @ b
    exact_f2 = float((c.astype(float) ** 2).sum())
    exact_l0 = float(np.count_nonzero(c))
    synced_f2_err = relative_error(sessions["threshold"].live_lp_norm(2.0), exact_f2)
    synced_l0_err = relative_error(sessions["threshold"].live_l0(), exact_l0)

    # Equivalence: a one-shot query on the streamed session matches the
    # batch protocol over the final shards, bit for bit.
    batch = ClusterEstimator(sessions["threshold"].shards(), b, seed=seed)
    streamed_result = sessions["threshold"].join_size(epsilon)
    batch_result = batch.join_size(epsilon)
    sync_matches = bool(
        streamed_result.value == batch_result.value
        and streamed_result.cost.total_bits == batch_result.cost.total_bits
        and streamed_result.cost.rounds == batch_result.cost.rounds
    )

    every_epoch_bytes = sessions["every-epoch"].total_upload_bytes
    threshold_bytes = sessions["threshold"].total_upload_bytes
    summary = {
        "every_epoch_bytes": every_epoch_bytes,
        "threshold_bytes": threshold_bytes,
        "threshold_strictly_fewer": threshold_bytes < every_epoch_bytes,
        "byte_ratio": round(threshold_bytes / max(every_epoch_bytes, 1), 3),
        "synced_f2_rel_err": round(synced_f2_err, 4),
        "synced_l0_rel_err": round(synced_l0_err, 4),
        "sync_matches_one_shot": sync_matches,
    }
    return ExperimentReport(experiment="E15", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
