"""E5 — Theorem 4.1: (2+eps)-approximation of ``||A B||_inf`` in 3 rounds, O~(n^1.5/eps) bits."""

from __future__ import annotations

from repro.baselines.naive import NaiveLinfProtocol
from repro.core.linf_binary import TwoPlusEpsilonLinfProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, approx_ratio, fit_power_law
from repro.matrices import exact_linf, product

CLAIM = (
    "Theorem 4.1: for binary matrices, ||AB||_inf can be (2+eps)-approximated with "
    "O~(n^1.5/eps) bits and 3 rounds, versus the naive n^2 exchange."
)


def run(
    *,
    sizes: tuple[int, ...] = (64, 128, 192, 256),
    epsilon: float = 0.25,
    seed: int = 5,
) -> ExperimentReport:
    rows = []
    for n in sizes:
        a, b, _ = workloads.max_overlap_workload(n, seed=seed)
        truth = exact_linf(product(a, b))
        ours = TwoPlusEpsilonLinfProtocol(epsilon, seed=seed).run(a, b)
        naive = NaiveLinfProtocol(seed=seed).run(a, b)
        rows.append(
            {
                "n": n,
                "estimate": ours.value,
                "truth": truth,
                "approx_ratio": approx_ratio(ours.value, truth),
                "bits": ours.cost.total_bits,
                "naive_bits": naive.cost.total_bits,
                "rounds": ours.cost.rounds,
            }
        )

    ours_exp, _ = fit_power_law([r["n"] for r in rows], [r["bits"] for r in rows])
    naive_exp, _ = fit_power_law([r["n"] for r in rows], [r["naive_bits"] for r in rows])
    summary = {
        "ours_bits_vs_n_exponent": round(ours_exp, 2),
        "naive_bits_vs_n_exponent": round(naive_exp, 2),
        "max_approx_ratio": round(max(r["approx_ratio"] for r in rows), 2),
        "allowed_ratio": 2 + epsilon,
    }
    return ExperimentReport(experiment="E5", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
