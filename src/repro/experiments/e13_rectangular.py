"""E13 — Section 6: the protocols on rectangular matrices ``A in {0,1}^{m x n}``, ``B in {0,1}^{n x m}``."""

from __future__ import annotations

from repro.core.l1_exact import ExactL1Protocol
from repro.core.linf_binary import KappaApproxLinfProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, fit_power_law, relative_error
from repro.matrices import exact_lp_pp, product

CLAIM = (
    "Section 6: on rectangular matrices (A m x n, B n x m) the l_p protocol stays "
    "O~(n/eps) (independent of m up to the row payloads), while the binary l_inf "
    "protocols scale as O~(m^1.5/kappa)."
)


def run(
    *,
    n: int = 96,
    m_values: tuple[int, ...] = (96, 192, 288),
    epsilon: float = 0.3,
    kappa: float = 8.0,
    seed: int = 13,
) -> ExperimentReport:
    rows = []
    for m in m_values:
        a, b = workloads.rectangular_workload(m, n, density=0.08, seed=seed)
        c = product(a, b)
        truth0 = exact_lp_pp(c, 0)

        lp = LpNormProtocol(0.0, epsilon, seed=seed).run(a, b)
        l1 = ExactL1Protocol(seed=seed).run(a, b)
        linf = KappaApproxLinfProtocol(kappa, seed=seed).run(a, b)
        rows.append(
            {
                "m": m,
                "n": n,
                "lp_rel_error": relative_error(lp.value, truth0),
                "lp_bits": lp.cost.total_bits,
                "l1_exact": bool(l1.value == exact_lp_pp(c, 1)),
                "l1_bits": l1.cost.total_bits,
                "linf_bits": linf.cost.total_bits,
            }
        )

    linf_exp, _ = fit_power_law([r["m"] for r in rows], [r["linf_bits"] for r in rows])
    summary = {
        "l1_always_exact": all(r["l1_exact"] for r in rows),
        "linf_bits_vs_m_exponent": round(linf_exp, 2),
        "max_lp_rel_error": round(max(r["lp_rel_error"] for r in rows), 3),
    }
    return ExperimentReport(experiment="E13", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
