"""E18 — tree aggregation at scale: the coordinator fan-in bottleneck.

The flat star asks one coordinator to absorb k upload bursts back to back
every round; at k in the thousands the root's ingress — not the protocol's
information cost — is the binding constraint.  This driver routes the SAME
per-site uploads through :class:`~repro.comm.network.TreeNetwork` overlays
of growing fan-out and charts what the hierarchy changes and what it
provably cannot:

* **Root ingress** — with exact-mergeable summaries every aggregator
  forwards ONE merged message per round, so the root receives ``fan_out``
  bursts (``root_ingress_bits = fan_out * per_site_bits``) instead of k.
  The busiest root edge carries the same bits as one site, whatever k is.
* **Total bits** — the tree *pays* for its relays: every level re-ships a
  summary, so total bits grow by roughly ``depth`` over the star.  The
  win is concentration, not volume.
* **Makespan** — under uniform bandwidth-limited links the flat star's
  root drains ``k * B / bw`` serialized; a fan-out-F tree drains
  ``depth * F * B / bw`` (levels sequential, siblings parallel).  The
  crossover is exactly where ``depth * F < k`` — by ``k = 10^3`` every
  charted fan-out is far below the star.  The flat baseline is priced
  under the SAME tree makespan model (a depth-1 spec), so the comparison
  is apples to apples.
* **Merge wall-clock** — the aggregators' actual summing time
  (``merge_seconds``), the compute the coordinator no longer does alone.
* **Bit-identity anchor** — a real ``lp_norm`` protocol at a moderate k
  answers through a tree and must match the flat star bit for bit; the
  overlay reroutes and re-meters, never recomputes.
"""

from __future__ import annotations

import numpy as np

from repro.comm.conditions import LinkModel, NetworkConditions
from repro.comm.network import TreeNetwork
from repro.comm.tree import TreeSpec
from repro.experiments.harness import ExperimentReport
from repro.multiparty import ClusterEstimator

CLAIM = (
    "Routing a k-site star's uploads through a fan-out-F aggregation tree "
    "leaves every root estimate bit-identical while the root's ingress "
    "shrinks from k bursts to F merged bursts per round: max root-link "
    "bits grow with the fan-out, not with k, and under uniform "
    "bandwidth-limited links the simulated makespan falls below the flat "
    "star once depth * F < k (decisively by k = 10^3)."
)


def _upload_round(tree: TreeSpec, conditions, per_site_bits: int) -> TreeNetwork:
    """One upload round: every site ships a mergeable summary upstream."""
    network = TreeNetwork(tree, conditions=conditions)
    summary = np.ones(4, dtype=np.int64)  # stand-in partial; bits are explicit
    for name in tree.site_names:
        network.send(name, tree.root, summary, label="partial", bits=per_site_bits)
    network._drain()
    return network


def run(
    *,
    k_values: tuple[int, ...] = (100, 1_000, 10_000),
    fan_outs: tuple[int, ...] = (2, 8, 32),
    per_site_bits: int = 65_536,
    bandwidth: float = 1e6,
    latency: float = 1e-3,
    anchor_sites: int = 32,
    anchor_fan_out: int = 4,
    seed: int = 18,
) -> ExperimentReport:
    conditions = NetworkConditions(LinkModel(latency=latency, bandwidth=bandwidth))
    rows: list[dict] = []
    makespans: dict[tuple[int, object], float] = {}
    root_maxes: dict[tuple[int, object], int] = {}
    root_totals: dict[tuple[int, object], int] = {}

    for k in k_values:
        names = [f"site-{i}" for i in range(k)]
        shapes: list[tuple[object, TreeSpec]] = [("flat", TreeSpec.flat(names))]
        shapes += [
            (fan_out, TreeSpec.regular(names, fan_out))
            for fan_out in fan_outs
            if fan_out < k
        ]
        for fan_out, tree in shapes:
            network = _upload_round(tree, conditions, per_site_bits)
            makespan, _ = network.simulate()
            root_bits = network.root_link_bits()
            makespans[(k, fan_out)] = makespan
            root_maxes[(k, fan_out)] = network.max_root_link_bits
            root_totals[(k, fan_out)] = sum(root_bits.values())
            rows.append(
                {
                    "scenario": "scaling",
                    "k": k,
                    "fan_out": fan_out,
                    "depth": tree.depth,
                    "aggregators": len(tree.aggregators),
                    "total_bits": network.total_bits,
                    "root_ingress_bits": sum(root_bits.values()),
                    "max_root_link_bits": network.max_root_link_bits,
                    "merges": network.merges,
                    "merge_s": round(network.merge_seconds, 6),
                    "makespan_s": round(makespan, 6),
                }
            )

    # --- Bit-identity anchor: a real protocol through a real tree -----------
    rng = np.random.default_rng(seed)
    a = (rng.uniform(size=(anchor_sites * 4, 48)) < 0.2).astype(np.int64)
    b = (rng.uniform(size=(48, 32)) < 0.2).astype(np.int64)
    shards = list(np.array_split(a, anchor_sites, axis=0))
    anchor_tree = TreeSpec.regular(
        [f"site-{i}" for i in range(anchor_sites)], anchor_fan_out
    )
    flat_result = ClusterEstimator(shards, b, seed=seed).lp_norm(p=2.0, epsilon=0.3)
    tree_result = ClusterEstimator(shards, b, seed=seed, tree=anchor_tree).lp_norm(
        p=2.0, epsilon=0.3
    )
    rows.append(
        {
            "scenario": "anchor",
            "k": anchor_sites,
            "fan_out": anchor_fan_out,
            "depth": anchor_tree.depth,
            "aggregators": len(anchor_tree.aggregators),
            "total_bits": tree_result.cost.total_bits,
            "root_ingress_bits": sum(
                tree_result.cost.link_bits[child]
                for child in anchor_tree.children[anchor_tree.root]
            ),
            "max_root_link_bits": max(
                tree_result.cost.link_bits[child]
                for child in anchor_tree.children[anchor_tree.root]
            ),
            "merges": 0,
            "merge_s": 0.0,
            "makespan_s": 0.0,
        }
    )

    largest = max(k_values)
    summary = {
        # The busiest root edge is one merged summary: identical across k.
        "max_root_link_bits_k_invariant": all(
            len({root_maxes[(k, f)] for k in k_values if (k, f) in root_maxes}) == 1
            for f in fan_outs
        ),
        # Root ingress totals are bounded by the fan-out, the star's by k.
        "root_ingress_tracks_fan_out": all(
            root_totals[(k, f)] <= f * per_site_bits
            for k in k_values
            for f in fan_outs
            if (k, f) in root_totals
        ),
        "flat_root_ingress_tracks_k": all(
            root_totals[(k, "flat")] == k * per_site_bits for k in k_values
        ),
        # The headline: every tree beats the star's makespan at k >= 10^3.
        "tree_beats_flat_at_1e3": all(
            makespans[(k, f)] < makespans[(k, "flat")]
            for k in k_values
            if k >= 1_000
            for f in fan_outs
            if (k, f) in makespans
        ),
        "flat_makespan_at_kmax_s": round(makespans[(largest, "flat")], 6),
        "best_tree_makespan_at_kmax_s": round(
            min(
                makespans[(largest, f)]
                for f in fan_outs
                if (largest, f) in makespans
            ),
            6,
        ),
        "anchor_bit_identical": tree_result.value == flat_result.value
        and tree_result.cost.rounds == flat_result.cost.rounds,
    }
    return ExperimentReport(experiment="E18", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
