"""E10 — Theorem 4.4: the DISJ reduction's promise gap (2-approximation hardness)."""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentReport
from repro.lowerbounds.disj import disj_to_linf_matrices, random_disj_instance

CLAIM = (
    "Theorem 4.4: a 2-approximation of ||AB||_inf for binary matrices decides "
    "set-disjointness (||AB||_inf = 2 iff the sets intersect, 1 otherwise), hence "
    "needs Omega(n^2) bits."
)


def run(
    *,
    half_sizes: tuple[int, ...] = (8, 16, 32),
    instances_per_size: int = 20,
    seed: int = 10,
) -> ExperimentReport:
    rng = np.random.default_rng(seed)
    rows = []
    for half in half_sizes:
        length = half * half
        correct = 0
        for index in range(instances_per_size):
            force = bool(index % 2)
            instance = random_disj_instance(length, force_intersecting=force, seed=rng)
            a, b = disj_to_linf_matrices(instance)
            linf = float((a @ b).max())
            predicted_intersecting = linf >= 2
            correct += predicted_intersecting == instance.intersecting
        rows.append(
            {
                "n": 2 * half,
                "instances": instances_per_size,
                "gap_holds_fraction": correct / instances_per_size,
            }
        )
    summary = {"gap_always_holds": all(r["gap_holds_fraction"] == 1.0 for r in rows)}
    return ExperimentReport(experiment="E10", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
