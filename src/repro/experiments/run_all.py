"""Run every experiment driver and write a combined markdown report.

Usage::

    python -m repro.experiments.run_all                # print to stdout
    python -m repro.experiments.run_all --out results.md

The benchmark-sized parameter defaults of each driver are used, so a full
run takes on the order of a minute on a laptop.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    a1_beta_ablation,
    a2_universe_sampling,
    e01_lp_norm,
    e02_round_separation,
    e03_l1_exact,
    e04_l0_sampling,
    e05_linf_2eps,
    e06_linf_kappa,
    e07_linf_general,
    e08_hh_general,
    e09_hh_binary,
    e10_lb_disj,
    e11_lb_sum,
    e12_lb_gap_linf,
    e13_rectangular,
    e14_multiparty_scaling,
    e15_streaming_monitoring,
    e16_runtime_conditions,
    e17_robust_aggregation,
    e18_tree_scaling,
)
from repro.experiments.harness import ExperimentReport

#: Every driver in EXPERIMENTS.md order.
ALL_DRIVERS: list[Callable[..., ExperimentReport]] = [
    e01_lp_norm.run,
    e02_round_separation.run,
    e03_l1_exact.run,
    e04_l0_sampling.run,
    e05_linf_2eps.run,
    e06_linf_kappa.run,
    e07_linf_general.run,
    e08_hh_general.run,
    e09_hh_binary.run,
    e10_lb_disj.run,
    e11_lb_sum.run,
    e12_lb_gap_linf.run,
    e13_rectangular.run,
    e14_multiparty_scaling.run,
    e15_streaming_monitoring.run,
    e16_runtime_conditions.run,
    e17_robust_aggregation.run,
    e18_tree_scaling.run,
    a1_beta_ablation.run,
    a2_universe_sampling.run,
]


def run_all(drivers: list[Callable[..., ExperimentReport]] | None = None) -> list[ExperimentReport]:
    """Execute every driver with its default (laptop-scale) parameters."""
    reports = []
    for driver in drivers if drivers is not None else ALL_DRIVERS:
        reports.append(driver())
    return reports


def to_markdown(reports: list[ExperimentReport]) -> str:
    """Render the reports as a single markdown document."""
    lines = ["# Experiment results", ""]
    for report in reports:
        lines.append(f"## {report.experiment}")
        lines.append("")
        lines.append(report.claim)
        lines.append("")
        lines.append("```")
        lines.append(report.table())
        lines.append("```")
        if report.summary:
            lines.append("")
            lines.append(
                "Summary: " + ", ".join(f"{key}={value}" for key, value in report.summary.items())
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write the markdown report to this file")
    args = parser.parse_args(argv)

    reports = run_all()
    document = to_markdown(reports)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document)
        print(f"wrote {args.out} ({len(reports)} experiments)")
    else:
        print(document)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
