"""E7 — Theorem 4.8(1): kappa-approximation of ``||A B||_inf`` for integer matrices.

Also demonstrates the binary-vs-general contrast the paper highlights: for
binary inputs the cost scales like ``n^1.5/kappa``, for general integer
inputs like ``n^2/kappa^2``.
"""

from __future__ import annotations

from repro.core.linf_binary import KappaApproxLinfProtocol
from repro.core.linf_general import GeneralMatrixLinfProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, approx_ratio, fit_power_law
from repro.matrices import exact_linf, product

CLAIM = (
    "Theorem 4.8: for general integer matrices a kappa-approximation of ||AB||_inf "
    "takes Theta~(n^2/kappa^2) bits (one round), versus O~(n^1.5/kappa) for binary."
)


def run(
    *,
    n: int = 128,
    kappas: tuple[float, ...] = (2.0, 3.0, 4.0, 6.0),
    seed: int = 7,
) -> ExperimentReport:
    a_int, b_int = workloads.integer_workload(n, planted_value=8, seed=seed)
    truth_int = exact_linf(product(a_int, b_int))
    a_bin, b_bin = workloads.dense_overlap_workload(n, density=0.3, seed=seed)
    truth_bin = exact_linf(product(a_bin, b_bin))

    rows = []
    for kappa in kappas:
        general = GeneralMatrixLinfProtocol(kappa, seed=seed).run(a_int, b_int)
        binary = KappaApproxLinfProtocol(max(kappa, 4.0), seed=seed).run(a_bin, b_bin)
        rows.append(
            {
                "kappa": kappa,
                "general_estimate": general.value,
                "general_truth": truth_int,
                "general_ratio": approx_ratio(general.value, truth_int),
                "general_bits": general.cost.total_bits,
                "general_rounds": general.cost.rounds,
                "binary_bits": binary.cost.total_bits,
                "binary_ratio": approx_ratio(binary.value, truth_bin),
            }
        )

    exponent, _ = fit_power_law(
        [r["kappa"] for r in rows], [r["general_bits"] for r in rows]
    )
    summary = {
        "general_bits_vs_kappa_exponent": round(exponent, 2),
        "all_general_within_2kappa": all(
            r["general_ratio"] <= 2 * r["kappa"] for r in rows
        ),
        "general_rounds": max(r["general_rounds"] for r in rows),
    }
    return ExperimentReport(experiment="E7", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
