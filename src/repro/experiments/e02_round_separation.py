"""E2 — two rounds beat one: Algorithm 1 (O~(n/eps)) vs the [16] baseline (O~(n/eps^2))."""

from __future__ import annotations

from repro.baselines.one_round import OneRoundLpNormProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.experiments import workloads
from repro.experiments.harness import ExperimentReport, fit_power_law, relative_error
from repro.matrices import exact_lp_pp, product

CLAIM = (
    "Section 1.2: for p = 0 the two-round protocol uses O~(n/eps) bits versus the "
    "one-round O~(n/eps^2) of [16]; communication as a function of 1/eps grows "
    "roughly linearly for ours and quadratically for the baseline."
)


def run(
    *,
    n: int = 128,
    epsilons: tuple[float, ...] = (0.6, 0.45, 0.3, 0.2),
    p: float = 0.0,
    density: float = 0.08,
    seed: int = 2,
) -> ExperimentReport:
    a, b = workloads.join_workload(n, density=density, seed=seed)
    truth = exact_lp_pp(product(a, b), p)

    rows = []
    for eps in epsilons:
        ours = LpNormProtocol(p, eps, seed=seed).run(a, b)
        baseline = OneRoundLpNormProtocol(p, eps, seed=seed).run(a, b)
        rows.append(
            {
                "eps": eps,
                "ours_bits": ours.cost.total_bits,
                "baseline_bits": baseline.cost.total_bits,
                "ours_rounds": ours.cost.rounds,
                "baseline_rounds": baseline.cost.rounds,
                "ours_rel_error": relative_error(ours.value, truth),
                "baseline_rel_error": relative_error(baseline.value, truth),
            }
        )

    inv_eps = [1.0 / r["eps"] for r in rows]
    ours_exp, _ = fit_power_law(inv_eps, [r["ours_bits"] for r in rows])
    base_exp, _ = fit_power_law(inv_eps, [r["baseline_bits"] for r in rows])
    summary = {
        "ours_bits_vs_inv_eps_exponent": round(ours_exp, 2),
        "baseline_bits_vs_inv_eps_exponent": round(base_exp, 2),
        "baseline_minus_ours_exponent": round(base_exp - ours_exp, 2),
    }
    return ExperimentReport(experiment="E2", claim=CLAIM, rows=rows, summary=summary)


if __name__ == "__main__":  # pragma: no cover
    print(run())
