"""Real-transport service layer: the coordinator as an asyncio TCP server.

Everything below :mod:`repro.engine` treats the network as an in-process
simulation: messages are Python objects handed across a metered
:class:`~repro.comm.network.Network`.  This package stands the coordinator
up as an actual server and the sites as independent client *processes*, so
a cluster estimate runs over real localhost (or LAN) sockets:

* :mod:`repro.service.messages` — the service's small message schema
  (hello/assign, round open, metered message push/echo, task fan-out,
  query/answer, error) over the length-prefixed framing of
  :mod:`repro.comm.framing`; payloads travel in the byte-exact wire codec
  of :mod:`repro.comm.wire` (arrays and bundles) with a pickle fallback
  for composite protocol payloads.
* :mod:`repro.service.transport` — :class:`~repro.service.transport
  .RemoteNetwork` (a :class:`~repro.comm.network.Network` whose ``send``
  also ships the encoded payload over the site's TCP connection and
  counts **observed** wire bytes per link per round) and
  :class:`~repro.service.transport.RemoteRuntime` (a
  :class:`~repro.engine.runtime.Runtime` that fans per-site tasks out to
  the site processes).
* :mod:`repro.service.server` — the asyncio coordinator server.
* :mod:`repro.service.client` — the site-agent process loop and the
  client-side query proxy (:func:`repro.service.client.connect`).
* :mod:`repro.service.cli` — the ``repro-serve`` / ``repro-site``
  console entry points.
* :mod:`repro.service.tenancy` — the multi-tenant
  :class:`~repro.service.tenancy.SessionManager`: N independent streaming
  sessions multiplexed over one shared runtime with per-tenant quotas and
  billing-grade cost reports.
* :mod:`repro.service.metrics` — a dependency-free Prometheus
  text-exposition registry, scrapeable from the coordinator's port with a
  plain ``GET /metrics``.

The contract the test suite pins (``tests/service/``): a k-site cluster
over real sockets produces **bit-identical estimates and bit/round meters**
to the in-process serial runtime, and the observed socket bytes satisfy
``observed_bytes * 8 == wire-metered bits`` on every link — exactly, with
the streamed session's delta uploads additionally matching the in-process
simulated meter byte for byte (streaming bits *are* encoded bytes).
"""

from repro.service.client import AggregatorAgent, SiteAgent, connect, local_cluster
from repro.service.metrics import MetricsRegistry, parse_metrics_text
from repro.service.server import CoordinatorServer
from repro.service.tenancy import (
    PriceSchedule,
    QuotaExceededError,
    SessionManager,
    TenantCostReport,
    TenantQuota,
)
from repro.service.transport import (
    RemoteNetwork,
    RemoteRuntime,
    RemoteTreeNetwork,
    SocketTransport,
)

__all__ = [
    "AggregatorAgent",
    "CoordinatorServer",
    "MetricsRegistry",
    "PriceSchedule",
    "QuotaExceededError",
    "RemoteNetwork",
    "RemoteRuntime",
    "RemoteTreeNetwork",
    "SessionManager",
    "SiteAgent",
    "SocketTransport",
    "TenantCostReport",
    "TenantQuota",
    "connect",
    "local_cluster",
    "parse_metrics_text",
]
