"""Site-agent processes and the client-side query proxy.

:class:`SiteAgent` is the whole site process: a synchronous blocking-socket
loop that registers its shard with the coordinator and then serves the
protocol traffic — acking downstream pushes with the byte count it observed
on its socket, echoing upstream payloads so their bytes physically travel
site -> coordinator, and executing fanned-out engine tasks
(``repro.``-module functions only) on its own CPU.

:func:`connect` opens a :class:`ServiceClient`: a thin synchronous proxy
whose attribute calls (``client.lp_norm(p=2.0)``) become ``query`` messages
and whose answers unpickle into the same
:class:`~repro.comm.protocol.ProtocolResult` objects the in-process facade
returns, alongside the coordinator's service metering report
(:attr:`ServiceClient.last_service`).

:func:`local_cluster` wires the whole thing on localhost: one
:class:`~repro.service.server.CoordinatorServer` in this process and one
``repro-site`` OS process per shard — the harness behind the service tests,
the quickstart example and the service benchmark leg.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import socket
import subprocess
import sys
import tempfile
import time
import traceback
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from repro.comm.framing import FrameDecoder, encode_frame
from repro.service.messages import (
    PAYLOAD_TAG_BYTES,
    Message,
    ServiceError,
    decode_message,
    decode_payload,
    encode_message,
    encode_payload,
)

__all__ = [
    "AggregatorAgent",
    "ServiceClient",
    "SiteAgent",
    "connect",
    "local_cluster",
    "read_port_file",
]


class _SocketStream:
    """Blocking frame/message IO over one TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._decoder = FrameDecoder()
        self._bodies: deque[bytes] = deque()

    def send(self, message: Message) -> None:
        self._sock.sendall(encode_frame(encode_message(message)))

    def send_frame(self, frame: bytes) -> None:
        """Send pre-encoded frame bytes (encode-once fan-out)."""
        self._sock.sendall(frame)

    def next(self) -> Message | None:
        while not self._bodies:
            chunk = self._sock.recv(65536)
            self._bodies.extend(self._decoder.feed(chunk))
            if not chunk:
                if self._bodies:
                    break
                self._decoder.close()  # truncated tail raises FramingError
                return None
        return decode_message(self._bodies.popleft())

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def _dial(host: str, port: int, *, retries: int = 40, delay: float = 0.25) -> socket.socket:
    """Connect with retries (the server may still be binding)."""
    last: Exception | None = None
    for _ in range(retries):
        try:
            sock = socket.create_connection((host, port))
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            time.sleep(delay)
    raise ConnectionError(f"could not reach coordinator at {host}:{port}: {last}")


def read_port_file(path: str, *, timeout: float = 60.0, poll: float = 0.05) -> int:
    """Wait for a port file (written by an aggregator agent) and read it.

    Aggregator agents bind port 0 and publish the resolved port by writing
    it to a file (atomic rename); leaf sites behind them poll that file
    instead of taking a ``--port``.
    """
    deadline = time.monotonic() + timeout
    path_obj = Path(path)
    while time.monotonic() < deadline:
        try:
            text = path_obj.read_text().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(poll)
    raise TimeoutError(f"no port published at {path} after {timeout}s")


# ---------------------------------------------------------------------- site
class SiteAgent:
    """One site of the cluster, running as its own OS process.

    The agent uploads its shard at registration, then answers the
    coordinator's traffic until it reads ``bye`` (or EOF).  The engine's
    protocol logic never runs here except through explicit ``task``
    messages — the site is deliberately a dumb, auditable endpoint: every
    byte it acknowledges or echoes was measured on its own socket.

    Chaos knobs (all default off) turn the agent into a fault injector for
    the coordinator's hardening paths — real sockets, declarative faults:

    ``delay``
        Sleep this many real seconds before answering each protocol
        request (``msg``/``relay``), starting after ``delay_after``
        requests, for at most ``delay_count`` requests (None = forever).
        With a coordinator ``deadline`` below the delay this makes the
        site a *straggler* (timeout → degraded answer).
    ``corrupt_upstream``
        Flip one byte of every upstream echo's payload, so the
        coordinator's digest check trips (corrupt frame → quarantine).
    ``flaky``
        Answer the first ``flaky`` protocol requests with a transient
        ``retry`` refusal (coordinator retries with backoff).
    """

    def __init__(
        self,
        host: str,
        port: int,
        index: int,
        shard: np.ndarray,
        *,
        delay: float = 0.0,
        delay_after: int = 0,
        delay_count: int | None = None,
        corrupt_upstream: bool = False,
        flaky: int = 0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.index = int(index)
        self.shard = np.asarray(shard)
        self.name = f"site-{self.index}"
        self.delay = float(delay)
        self.delay_after = int(delay_after)
        self.delay_count = None if delay_count is None else int(delay_count)
        self.corrupt_upstream = bool(corrupt_upstream)
        self.flaky = int(flaky)
        self._protocol_requests = 0
        self._delays_applied = 0
        self._refusals = 0

    def run(self) -> None:
        """Register, then serve until the coordinator says ``bye``."""
        stream = _SocketStream(_dial(self.host, self.port))
        try:
            stream.send(
                Message(
                    "hello",
                    {"role": "site", "index": self.index, "rows": int(self.shard.shape[0])},
                    encode_payload(self.shard),
                )
            )
            assign = stream.next()
            if assign is None or assign.type == "error":
                raise ServiceError(
                    f"registration refused: {assign.meta if assign else 'connection closed'}"
                )
            if assign.type != "assign":
                raise ServiceError(f"expected assign, got {assign.type!r}")
            self.name = assign.meta.get("name", self.name)
            while True:
                message = stream.next()
                if message is None or message.type == "bye":
                    return
                reply = self._handle(message)
                if reply is not None:
                    stream.send(reply)
        finally:
            stream.close()

    def _handle(self, message: Message) -> Message | None:
        """Answer one coordinator message; *every* failure becomes a reply.

        The coordinator's request/reply discipline is strict FIFO, so a
        handler that raised instead of replying would kill the whole agent
        loop and strand the coordinator's in-flight request — one malformed
        payload (``decode_payload`` on a ``msg``/``relay``) used to take
        the site down exactly that way.  Decode errors are answered like
        task errors: with an ``error`` message the server reports to the
        client, while the site lives on.
        """
        try:
            return self._handle_inner(message)
        except Exception as exc:  # noqa: BLE001 - reported to the server
            return Message(
                "error",
                {
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                },
            )

    def _chaos(self, message: Message) -> Message | None:
        """Apply the configured fault injection to one protocol request.

        Returns a substitute reply (transient refusal) or ``None`` to
        proceed normally (possibly after a straggler sleep).
        """
        self._protocol_requests += 1
        if self._refusals < self.flaky:
            self._refusals += 1
            return Message("retry", {"reason": "flaky", "attempt": self._refusals})
        if (
            self.delay > 0
            and self._protocol_requests > self.delay_after
            and (self.delay_count is None or self._delays_applied < self.delay_count)
        ):
            self._delays_applied += 1
            time.sleep(self.delay)
        return None

    def _handle_inner(self, message: Message) -> Message | None:
        if message.type == "round":
            return Message("ack", {"round": message.meta.get("round")})
        if message.type in ("msg", "relay"):
            refusal = self._chaos(message)
            if refusal is not None:
                return refusal
        if message.type == "msg":
            # Downstream push: ack with the byte count observed on this
            # socket (codec body; the 1-byte tag is envelope) and a digest,
            # after proving the payload decodes.
            decode_payload(message.payload)
            return Message(
                "ack",
                {
                    "observed": len(message.payload) - PAYLOAD_TAG_BYTES,
                    "digest": hashlib.sha256(message.payload).hexdigest(),
                    "round": message.meta.get("round"),
                },
            )
        if message.type == "relay":
            # Upstream: this site is the sender of record — push the payload
            # bytes back so they physically travel site -> coordinator.
            decode_payload(message.payload)
            payload = message.payload
            if self.corrupt_upstream and len(payload) > 1:
                # A Byzantine echo: one flipped byte past the codec tag.
                # The coordinator's digest check must catch this.
                payload = payload[:-1] + bytes([payload[-1] ^ 0xFF])
            return Message("msg", dict(message.meta), payload)
        if message.type == "task":
            fn = _resolve_task(message.meta.get("fn", ""))
            args = decode_payload(message.payload)
            return Message("task_result", {}, encode_payload(fn(*args)))
        return Message("error", {"error": "ServiceError", "message": f"unexpected {message.type!r}"})


def _resolve_task(spec: str):
    """Import ``module:qualname``, restricted to this package's modules."""
    module_name, _, qualname = spec.partition(":")
    if not module_name.startswith("repro.") or not qualname:
        raise ServiceError(f"refusing to resolve task function {spec!r}")
    target: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


# --------------------------------------------------------------- aggregator
class AggregatorAgent:
    """One interior aggregator of a depth-2 tree, as its own OS process.

    The agent is a tiny switchboard with sockets on both sides:

    * **down**: it listens on its own port (bound to 0, published via
      ``port_file``) and accepts the registrations of the leaf sites it
      fronts — ordinary :class:`SiteAgent` processes that dialed the
      aggregator instead of the coordinator;
    * **up**: it registers the whole subtree with the coordinator in one
      ``hello`` (role ``aggregator``, the children's shards as payload) and
      then serves the subtree's protocol traffic over that single
      connection.

    Traffic handling mirrors the tree semantics exactly:

    * a downstream ``msg`` (optionally carrying a ``forward`` list) is
      acked with this edge's observed bytes, and the *same frame bytes* are
      encoded once and fanned to the targeted children, whose acks are
      aggregated into the reply (``children`` meta);
    * a routed ``relay`` (``to`` meta) makes the target leaf echo its
      payload to *this* process — the bytes are counted off the
      aggregator's socket and only the count/digest travel further up,
      which is the whole fan-in point of the tree;
    * an un-routed ``relay`` is this aggregator's own upstream edge: the
      (already merged, coordinator-side) payload echoes up like a site's;
    * ``task`` messages execute locally or forward to the routed leaf.

    Like the :class:`SiteAgent`, the aggregator never runs protocol logic:
    every byte it reports was measured on one of its own sockets.
    """

    def __init__(
        self,
        host: str,
        port: int,
        name: str,
        indices: Sequence[int],
        *,
        listen_host: str = "127.0.0.1",
        port_file: str | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.name = str(name)
        self.indices = [int(i) for i in indices]
        if not self.indices:
            raise ValueError("an aggregator must front at least one site")
        self.listen_host = listen_host
        self.port_file = port_file
        self.listen_port: int | None = None

    # ------------------------------------------------------------ lifecycle
    def run(self) -> None:
        """Accept the leaves, register the subtree, serve until ``bye``."""
        streams, shards = self._accept_children()
        up = _SocketStream(_dial(self.host, self.port))
        try:
            up.send(
                Message(
                    "hello",
                    {"role": "aggregator", "name": self.name, "indices": self.indices},
                    encode_payload([shards[i] for i in self.indices]),
                )
            )
            assign = up.next()
            if assign is None or assign.type == "error":
                raise ServiceError(
                    f"registration refused: {assign.meta if assign else 'connection closed'}"
                )
            if assign.type != "assign":
                raise ServiceError(f"expected assign, got {assign.type!r}")
            while True:
                message = up.next()
                if message is None or message.type == "bye":
                    return
                reply = self._handle(message, streams)
                if reply is not None:
                    up.send(reply)
        finally:
            for stream in streams.values():
                try:
                    stream.send(Message("bye"))
                except OSError:
                    pass
                stream.close()
            up.close()

    def _accept_children(self) -> tuple[dict[str, _SocketStream], dict[int, np.ndarray]]:
        """Listen, publish the port, and register every expected leaf."""
        server_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server_sock.bind((self.listen_host, 0))
        server_sock.listen(len(self.indices))
        self.listen_port = server_sock.getsockname()[1]
        if self.port_file is not None:
            # Atomic publish: leaves poll for the file, so it must never be
            # observable half-written.
            tmp = Path(f"{self.port_file}.tmp")
            tmp.write_text(f"{self.listen_port}\n")
            tmp.replace(self.port_file)
        expected = set(self.indices)
        streams: dict[str, _SocketStream] = {}
        shards: dict[int, np.ndarray] = {}
        try:
            while len(shards) < len(self.indices):
                sock, _ = server_sock.accept()
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                stream = _SocketStream(sock)
                hello = stream.next()
                if hello is None:
                    stream.close()
                    continue
                try:
                    if hello.type != "hello" or hello.meta.get("role") != "site":
                        raise ServiceError(f"expected a site hello, got {hello.type!r}")
                    index = int(hello.meta.get("index", -1))
                    if index not in expected:
                        raise ServiceError(
                            f"site index {index} is not fronted by aggregator "
                            f"{self.name!r} (expected {sorted(expected)})"
                        )
                    if index in shards:
                        raise ServiceError(f"site-{index} is already registered")
                    shard = np.asarray(decode_payload(hello.payload))
                except (ServiceError, ValueError) as exc:
                    stream.send(
                        Message(
                            "error",
                            {"error": type(exc).__name__, "message": str(exc)},
                        )
                    )
                    stream.close()
                    continue
                shards[index] = shard
                streams[f"site-{index}"] = stream
                stream.send(
                    Message(
                        "assign",
                        {
                            "name": f"site-{index}",
                            "index": index,
                            "k": len(self.indices),
                            "registered": len(shards),
                        },
                    )
                )
        finally:
            server_sock.close()
        return streams, shards

    # ------------------------------------------------------------- handlers
    def _handle(
        self, message: Message, streams: dict[str, _SocketStream]
    ) -> Message | None:
        """Answer one coordinator message; every failure becomes a reply."""
        try:
            return self._handle_inner(message, streams)
        except Exception as exc:  # noqa: BLE001 - reported to the server
            return Message(
                "error",
                {
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                },
            )

    def _handle_inner(
        self, message: Message, streams: dict[str, _SocketStream]
    ) -> Message | None:
        meta = dict(message.meta)
        to = meta.pop("to", None)
        if message.type == "round":
            return Message("ack", {"round": message.meta.get("round")})
        if message.type == "msg":
            forward = meta.pop("forward", [])
            decode_payload(message.payload)
            children: dict[str, dict] = {}
            if forward:
                # Encode-once fan-out: one frame, sendall per child socket.
                frame = encode_frame(
                    encode_message(Message("msg", meta, message.payload))
                )
                for child in forward:
                    self._child(streams, child).send_frame(frame)
                for child in forward:
                    ack = self._child(streams, child).next()
                    if ack is None or ack.type != "ack":
                        raise ServiceError(
                            f"leaf {child!r} answered a forwarded msg with "
                            f"{ack.type if ack else 'EOF'!r}: "
                            f"{ack.meta if ack else {}}"
                        )
                    children[child] = {
                        "observed": ack.meta.get("observed"),
                        "digest": ack.meta.get("digest"),
                    }
            reply_meta = {
                "observed": len(message.payload) - PAYLOAD_TAG_BYTES,
                "digest": hashlib.sha256(message.payload).hexdigest(),
                "round": message.meta.get("round"),
            }
            if children:
                reply_meta["children"] = children
            return Message("ack", reply_meta)
        if message.type == "relay":
            if to is None:
                # This aggregator's own upstream edge: echo the (merged)
                # payload so its bytes travel aggregator -> coordinator.
                decode_payload(message.payload)
                return Message("msg", dict(message.meta), message.payload)
            # Routed leaf edge: the leaf echoes to *us*; we count its bytes
            # off our socket and report only count + digest upstream.
            stream = self._child(streams, to)
            stream.send(Message("relay", meta, message.payload))
            echo = stream.next()
            if echo is None or echo.type != "msg":
                raise ServiceError(
                    f"leaf {to!r} answered a relay with "
                    f"{echo.type if echo else 'EOF'!r}: {echo.meta if echo else {}}"
                )
            return Message(
                "ack",
                {
                    "observed": len(echo.payload) - PAYLOAD_TAG_BYTES,
                    "digest": hashlib.sha256(echo.payload).hexdigest(),
                    "round": message.meta.get("round"),
                },
            )
        if message.type == "task":
            if to is None:
                fn = _resolve_task(meta.get("fn", ""))
                args = decode_payload(message.payload)
                return Message("task_result", {}, encode_payload(fn(*args)))
            stream = self._child(streams, to)
            stream.send(Message("task", meta, message.payload))
            reply = stream.next()
            if reply is None:
                raise ServiceError(f"leaf {to!r} closed mid-task")
            return reply  # task_result (or the leaf's error) verbatim
        return Message(
            "error",
            {"error": "ServiceError", "message": f"unexpected {message.type!r}"},
        )

    @staticmethod
    def _child(streams: dict[str, _SocketStream], name: str) -> _SocketStream:
        stream = streams.get(name)
        if stream is None:
            raise ServiceError(f"no such fronted leaf {name!r}")
        return stream


# -------------------------------------------------------------------- client
class ServiceClient:
    """Synchronous query proxy to a served cluster.

    Any estimator method (``lp_norm``, ``l0_sample``, ``heavy_hitters``,
    ...) and any ``stream_*`` session method is available as a
    keyword-argument call; the answer's pickled result is returned and the
    coordinator's service metering report (observed socket bytes vs the
    wire and simulated meters, per link per round) lands in
    :attr:`last_service`.
    """

    def __init__(self, host: str, port: int) -> None:
        self._stream = _SocketStream(_dial(host, port))
        self.last_service: dict | None = None
        #: Degradation report of the most recent answer (None = clean).
        self.last_degraded: dict | None = None
        self._stream.send(Message("hello", {"role": "client"}))
        assign = self._stream.next()
        if assign is None or assign.type != "assign":
            raise ServiceError(
                f"handshake failed: {assign.type if assign else 'connection closed'}"
            )
        #: Cluster shape as reported at handshake (k, ready, b_shape).
        self.cluster = dict(assign.meta)

    def query(self, method: str, **kwargs) -> Any:
        """Run one named query on the coordinator; return its result.

        A *degraded* answer (the coordinator excluded failed sites and
        renormalized) is still returned normally — its structured report
        lands in :attr:`last_degraded` (``None`` for clean answers).  An
        error carrying a degradation report (e.g. a streaming boundary
        that dropped a timed-out site) raises :class:`ServiceError` with
        the report attached as ``exc.degradation``.
        """
        self._stream.send(Message("query", {"method": method}, encode_payload(kwargs)))
        answer = self._stream.next()
        if answer is None:
            raise ConnectionError("coordinator closed the connection mid-query")
        if answer.type == "error":
            exc = ServiceError(
                f"{answer.meta.get('error')}: {answer.meta.get('message')}"
            )
            degradation = answer.meta.get("degradation")
            if degradation is not None:
                exc.degradation = degradation
            raise exc
        if answer.type != "answer":
            raise ServiceError(f"expected answer, got {answer.type!r}")
        envelope = decode_payload(answer.payload)
        self.last_service = envelope.get("service")
        self.last_degraded = answer.meta.get("degraded")
        return envelope["result"]

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        def _call(**kwargs):
            return self.query(name, **kwargs)

        _call.__name__ = name
        return _call

    def shutdown_server(self) -> None:
        """Ask the coordinator to shut the whole cluster down."""
        self._stream.send(Message("bye", {"shutdown": True}))
        self._stream.next()  # ack (or EOF)
        self.close()

    def close(self) -> None:
        try:
            self._stream.send(Message("bye"))
        except OSError:
            pass
        self._stream.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(host: str, port: int) -> ServiceClient:
    """Open a client connection to a coordinator server."""
    return ServiceClient(host, port)


# ------------------------------------------------------------- local cluster
@contextmanager
def local_cluster(
    shards: Sequence[np.ndarray],
    b: np.ndarray,
    *,
    seed: int | None = None,
    conditions=None,
    host: str = "127.0.0.1",
    ready_timeout: float = 60.0,
    site_args: Sequence[Sequence[str]] | None = None,
    tree=None,
    **server_kwargs,
) -> Iterator[tuple[Any, ServiceClient]]:
    """A real k-site cluster on localhost: server here, sites as processes.

    Spawns one ``repro-site`` OS process per shard (shards travel via
    ``.npy`` files in a temp directory), waits until all have registered,
    and yields ``(server, client)``.  Everything is torn down on exit —
    sites get ``bye``, processes are reaped, the temp dir is removed.

    ``tree`` (a depth-2 :class:`~repro.comm.tree.TreeSpec` over
    ``site-0..k-1``, or an integer fan-out) stands the cluster up as a real
    aggregation tree: one ``repro.service.cli aggregate`` OS process per
    interior aggregator (listening on its own port, published via a port
    file), with the leaves behind it dialing the *aggregator* instead of
    the coordinator — every tree edge is its own socket.

    ``site_args`` appends extra CLI flags to site ``i``'s process (e.g.
    ``[["--delay", "5"], [], ...]`` for chaos drills); remaining keyword
    arguments (``deadline=``, ``retries=``, ``quorum=``, ...) pass through
    to :class:`~repro.service.server.CoordinatorServer`.
    """
    from repro.service.server import CoordinatorServer

    shards = [np.asarray(shard) for shard in shards]
    if site_args is not None and len(site_args) != len(shards):
        raise ValueError(f"{len(site_args)} site_args lists for {len(shards)} shards")
    server = CoordinatorServer(
        b,
        num_sites=len(shards),
        expected_row_counts=[shard.shape[0] for shard in shards],
        seed=seed,
        conditions=conditions,
        host=host,
        port=0,
        tree=tree,
        **server_kwargs,
    ).start()
    spec = server.tree  # normalized (int fan-out -> TreeSpec), or None
    processes: list[subprocess.Popen] = []
    client: ServiceClient | None = None
    try:
        with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
            env = dict(os.environ)
            src = str(Path(__file__).resolve().parents[2])
            env["PYTHONPATH"] = os.pathsep.join(
                [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
            )
            python = [sys.executable, "-m", "repro.service.cli"]
            port_files: dict[str, Path] = {}
            if spec is not None:
                for agg in spec.aggregators:
                    port_file = Path(tmp) / f"{agg}.port"
                    port_files[agg] = port_file
                    indices = [
                        child.rsplit("-", 1)[-1] for child in spec.children[agg]
                    ]
                    processes.append(
                        subprocess.Popen(
                            python
                            + [
                                "aggregate",
                                "--host", host,
                                "--port", str(server.port),
                                "--name", agg,
                                "--indices", ",".join(indices),
                                "--listen-host", host,
                                "--port-file", str(port_file),
                            ],
                            env=env,
                        )
                    )
            for index, shard in enumerate(shards):
                shard_path = Path(tmp) / f"shard-{index}.npy"
                np.save(shard_path, shard)
                argv = python + [
                    "site",
                    "--host",
                    host,
                    "--index",
                    str(index),
                    "--shard",
                    str(shard_path),
                ]
                parent = (
                    spec.parent[f"site-{index}"] if spec is not None else None
                )
                if parent is not None and parent != spec.root:
                    # A leaf behind an aggregator dials the aggregator's
                    # published port, not the coordinator's.
                    argv += ["--port-file", str(port_files[parent])]
                else:
                    argv += ["--port", str(server.port)]
                if site_args is not None:
                    argv.extend(str(arg) for arg in site_args[index])
                processes.append(subprocess.Popen(argv, env=env))
            if not server.wait_ready(ready_timeout):
                for process in processes:
                    if process.poll() is not None:
                        raise ServiceError(
                            f"site process {process.args} exited with "
                            f"{process.returncode} before registering"
                        )
                raise TimeoutError(
                    f"cluster not ready after {ready_timeout}s "
                    f"({len(shards)} sites expected)"
                )
            client = connect(host, server.port)
            yield server, client
    finally:
        if client is not None:
            client.close()
        server.stop()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
