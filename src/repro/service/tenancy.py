"""Multi-tenant session management over one shared runtime.

ROADMAP item 2: millions of users means many concurrent
:class:`~repro.engine.streaming.StreamingSession`\\ s.  The
:class:`SessionManager` multiplexes N independent tenants over **one**
shared :class:`~repro.engine.runtime.Runtime` — the expensive resource
(warmed executor pools, resident workers) is shared, while everything
observable is strictly isolated per tenant:

* **randomness** — each tenant's session gets its own seed (explicit, or
  derived order-independently from the manager seed and the tenant name),
  so a tenant's transcript is a pure function of its own seed and its own
  update stream, bit for bit, regardless of how tenants interleave;
* **meters** — each session owns its network meters; the manager's
  :class:`~repro.comm.accounting.TenantLedger` rolls per-tenant usage and
  the service aggregate up from one charge point, so per-tenant rows sum
  *exactly* to the aggregate (no double-count, no bleed);
* **shm arenas / resident pools** — per session, attached to and detached
  from the shared runtime across each tenant lifecycle (PR 7's pools; the
  lifecycle fixes in ``engine/runtime.py`` keep the tracking lists flat).

Scheduling is a fair round-robin: :meth:`SessionManager.run_epoch` sweeps
every open tenant starting from a rotating offset, so no tenant's epoch
boundary is systematically served first, and one tenant exhausting its
quota cannot starve the sweep.

Quotas and billing follow the KuberDock pricing/billing split: a
:class:`TenantQuota` bounds what a tenant may consume (shipped-byte and
epoch budgets, plus an ingest backpressure watermark) with a per-tenant
``reject`` or ``throttle`` policy, a :class:`PriceSchedule` prices the
metered usage, and :meth:`SessionManager.report` folds both into a
billing-grade :class:`TenantCostReport` built on the existing
bit-accounting contract — every charged byte is a byte the session's
network meters actually recorded.

Quota semantics (enforced at operation boundaries):

* the epoch that *crosses* a budget completes and the overshoot is
  recorded — budgets are checked before shipping, against usage so far;
* once a budget is exhausted, the next epoch boundary either raises
  :class:`QuotaExceededError` (``reject``) or closes as a *throttled*
  epoch — counted, nothing shipped, deltas stay queued (``throttle``);
* ingest backpressure: when a tenant's queued updates exceed
  ``max_pending_updates``, a ``reject`` tenant's ingest raises, while a
  ``throttle`` tenant first force-ships its backlog (budget permitting —
  an exhausted budget makes the ingest raise, since nothing else bounds
  the queue).
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.accounting import TenantLedger
from repro.comm.protocol import ProtocolResult
from repro.engine.runtime import Runtime
from repro.engine.streaming import EpochReport, StreamingSession
from repro.service.metrics import MetricsRegistry

__all__ = [
    "PriceSchedule",
    "QUOTA_POLICIES",
    "QuotaExceededError",
    "SessionManager",
    "TenantCostReport",
    "TenantQuota",
]

#: Supported quota policies.
QUOTA_POLICIES = ("reject", "throttle")


class QuotaExceededError(RuntimeError):
    """A tenant operation was refused under its quota's ``reject`` policy."""

    def __init__(self, tenant: str, what: str) -> None:
        self.tenant = tenant
        super().__init__(f"tenant {tenant!r}: {what}")


@dataclass(frozen=True)
class TenantQuota:
    """Consumption bounds for one tenant.

    ``byte_budget`` caps cumulative shipped (upload) bytes and
    ``epoch_budget`` caps shipped epoch boundaries; ``inf`` disables
    either.  ``max_pending_updates`` is the ingest backpressure watermark:
    queued (un-shipped) updates beyond it trigger the policy.  ``policy``
    picks what exhaustion does: ``"reject"`` raises
    :class:`QuotaExceededError`, ``"throttle"`` degrades service (epochs
    close without shipping) but keeps the tenant alive.
    """

    byte_budget: float = math.inf
    epoch_budget: float = math.inf
    max_pending_updates: float = math.inf
    policy: str = "reject"

    def __post_init__(self) -> None:
        if self.policy not in QUOTA_POLICIES:
            raise ValueError(
                f"policy must be one of {QUOTA_POLICIES}, got {self.policy!r}"
            )
        for name in ("byte_budget", "epoch_budget", "max_pending_updates"):
            value = getattr(self, name)
            if math.isnan(value) or value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class PriceSchedule:
    """Unit prices over the metered usage (the KuberDock pricing shape).

    Prices apply to exactly the quantities the accounting contract meters;
    there is no estimated or sampled billing basis.
    """

    currency: str = "credits"
    per_shipped_mib: float = 1.0  # per 2**20 shipped upload bytes
    per_epoch: float = 0.001  # per shipped epoch boundary
    per_query: float = 0.01  # per one-shot query
    per_query_gigabit: float = 1.0  # per 2**30 bits of query traffic
    per_million_rows: float = 0.1  # per 1e6 ingested update rows

    def line_items(self, usage: dict[str, float]) -> list[dict[str, Any]]:
        """Price one usage dict into billing line items."""
        basis = [
            ("shipped bytes", usage.get("shipped_bytes", 0.0),
             self.per_shipped_mib / 2**20),
            ("epochs shipped", usage.get("epochs", 0.0), self.per_epoch),
            ("queries", usage.get("queries", 0.0), self.per_query),
            ("query bits", usage.get("query_bits", 0.0),
             self.per_query_gigabit / 2**30),
            ("ingested rows", usage.get("rows", 0.0),
             self.per_million_rows / 1e6),
        ]
        return [
            {
                "item": item,
                "quantity": quantity,
                "unit_price": unit,
                "amount": quantity * unit,
            }
            for item, quantity, unit in basis
            if quantity
        ]


@dataclass
class TenantCostReport:
    """Billing-grade statement for one tenant.

    ``usage`` is the tenant's ledger row (exact metered quantities),
    ``line_items`` its pricing under the manager's schedule, and
    ``quota`` the budget state (limits, consumed, remaining).  The report
    is plain data — :meth:`to_dict` makes it wire/JSON ready for the
    service layer.
    """

    tenant: str
    usage: dict[str, float]
    line_items: list[dict[str, Any]]
    total_cost: float
    currency: str
    quota: dict[str, Any]
    epoch: int
    closed: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "usage": dict(self.usage),
            "line_items": [dict(item) for item in self.line_items],
            "total_cost": self.total_cost,
            "currency": self.currency,
            "quota": dict(self.quota),
            "epoch": self.epoch,
            "closed": self.closed,
        }


@dataclass
class _Tenant:
    """Manager-side bookkeeping for one open tenant."""

    name: str
    session: StreamingSession
    quota: TenantQuota
    epoch: int = 0  # boundaries closed by the manager (shipped + throttled)
    history: list[EpochReport] = field(default_factory=list)
    closed: bool = False

    @property
    def pending_updates(self) -> int:
        return sum(site.pending_updates for site in self.session.sites)


def derive_tenant_seed(base_seed: int, tenant: str) -> int:
    """A per-tenant session seed, independent of registration order.

    Hash-derived from the manager's base seed and the tenant *name* only,
    so a tenant's randomness never depends on which other tenants exist or
    when they registered — the heart of the transcript-isolation
    guarantee.
    """
    digest = hashlib.sha256(f"{base_seed}:{tenant}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


class SessionManager:
    """N independent streaming tenants over one shared runtime.

    Parameters
    ----------
    b:
        The coordinator's matrix, common to every tenant's product
        ``C_t = A_t B`` (tenants own independent update streams ``A_t``).
    runtime:
        The shared :class:`~repro.engine.runtime.Runtime`.  ``None`` means
        serial in-process execution; a ``persistent=True`` concurrent
        runtime puts every tenant's session in resident mode on the shared
        pools.
    seed:
        Manager base seed; tenant sessions derive per-tenant seeds from it
        (see :func:`derive_tenant_seed`) unless ``open_tenant`` passes an
        explicit one.
    metrics:
        Optional shared :class:`~repro.service.metrics.MetricsRegistry`
        (the coordinator server passes its scrape registry); a private one
        is created otherwise.
    prices:
        The :class:`PriceSchedule` behind every cost report.
    default_quota:
        Quota applied to tenants opened without an explicit one
        (default: unlimited, ``reject`` policy).
    clock:
        Monotonic-seconds callable (injectable for tests) behind the
        ingest-rate gauge.
    """

    def __init__(
        self,
        b: np.ndarray,
        *,
        runtime: Runtime | None = None,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        prices: PriceSchedule | None = None,
        default_quota: TenantQuota | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.b = np.asarray(b)
        self.runtime = runtime
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.prices = prices if prices is not None else PriceSchedule()
        self.default_quota = (
            default_quota if default_quota is not None else TenantQuota()
        )
        self.ledger = TenantLedger()
        self._clock = clock
        self._started = clock()
        self._tenants: dict[str, _Tenant] = {}
        self._rr_offset = 0
        self._closed = False

        reg = self.metrics
        self._m_tenants = reg.gauge(
            "repro_tenants", "Open streaming tenants on this coordinator"
        )
        self._m_rows = reg.counter(
            "repro_ingest_rows_total", "Update rows ingested", ("tenant",)
        )
        self._m_rate = reg.gauge(
            "repro_ingest_rows_per_sec",
            "Manager-wide ingested rows per second since start",
        )
        self._m_epochs = reg.counter(
            "repro_epochs_total", "Epoch boundaries closed (shipped)", ("tenant",)
        )
        self._m_throttled = reg.counter(
            "repro_throttled_epochs_total",
            "Epoch boundaries closed without shipping under quota throttle",
            ("tenant",),
        )
        self._m_rejections = reg.counter(
            "repro_quota_rejections_total",
            "Operations refused under quota reject policy",
            ("tenant",),
        )
        self._m_lag = reg.gauge(
            "repro_epoch_lag",
            "Epoch boundaries behind the leading tenant",
            ("tenant",),
        )
        self._m_link_bytes = reg.counter(
            "repro_shipped_bytes_total",
            "Delta bytes shipped upstream per tenant site link",
            ("tenant", "site"),
        )
        self._m_makespan = reg.gauge(
            "repro_makespan_seconds",
            "Simulated transcript makespan under the tenant's network conditions",
            ("tenant",),
        )
        self._m_pool = reg.gauge(
            "repro_resident_pool_occupancy",
            "Live resident worker pools on the shared runtime",
        )
        self._m_queries = reg.counter(
            "repro_queries_total", "One-shot queries answered", ("tenant",)
        )

    # ---------------------------------------------------------------- tenants
    @property
    def tenants(self) -> list[str]:
        """Open tenant names, in registration order."""
        return [name for name, t in self._tenants.items() if not t.closed]

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise KeyError(f"unknown tenant {name!r}")
        if tenant.closed:
            raise KeyError(f"tenant {name!r} is closed")
        return tenant

    def open_tenant(
        self,
        name: str,
        row_counts: Sequence[int],
        *,
        quota: TenantQuota | None = None,
        seed: int | None = None,
        **session_kwargs: Any,
    ) -> StreamingSession:
        """Register a tenant and build its isolated streaming session.

        ``session_kwargs`` pass through to
        :class:`~repro.engine.streaming.StreamingSession` (refresh policy,
        thresholds, network conditions, ...).  Tenant names must be unique
        for the manager's lifetime — a closed tenant's name stays reserved
        so its ledger row is never conflated with a successor's.
        """
        if self._closed:
            raise RuntimeError("session manager is closed")
        name = str(name)
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already registered")
        session = StreamingSession(
            row_counts,
            self.b,
            seed=seed if seed is not None else derive_tenant_seed(self.seed, name),
            runtime=self.runtime,
            **session_kwargs,
        )
        self._tenants[name] = _Tenant(
            name=name,
            session=session,
            quota=quota if quota is not None else self.default_quota,
        )
        self._m_tenants.inc()
        self._update_shared_gauges()
        return session

    def session(self, name: str) -> StreamingSession:
        """The (open) tenant's underlying session."""
        return self._tenant(name).session

    def close_tenant(self, name: str) -> TenantCostReport:
        """Close one tenant's session and issue its final cost report.

        The tenant's ledger row is kept (names are never reused), so the
        per-tenant-sums-to-aggregate identity stays checkable for the
        manager's whole lifetime.
        """
        tenant = self._tenant(name)
        tenant.closed = True
        try:
            tenant.session.close()
        finally:
            self._m_tenants.dec()
            for site in tenant.session.sites:
                self._m_link_bytes.remove(tenant=name, site=site.name)
            self._m_lag.remove(tenant=name)
            self._m_makespan.remove(tenant=name)
            self._update_shared_gauges()
        return self._build_report(tenant)

    # ----------------------------------------------------------------- ingest
    def ingest(self, name: str, site: int, rows: Any, deltas: Any) -> None:
        """Apply one tenant update batch, under backpressure and quota.

        Over the ``max_pending_updates`` watermark a ``reject`` tenant's
        ingest raises; a ``throttle`` tenant first ships its backlog
        (:meth:`end_epoch`) and only raises if its exhausted budget made
        that a throttled (non-shipping) boundary.
        """
        tenant = self._tenant(name)
        quota = tenant.quota
        if tenant.pending_updates >= quota.max_pending_updates:
            if quota.policy == "reject":
                self._m_rejections.inc(tenant=name)
                self.ledger.charge(name, rejections=1)
                raise QuotaExceededError(
                    name,
                    f"ingest backpressure: {tenant.pending_updates} pending "
                    f"updates >= watermark {quota.max_pending_updates:g}",
                )
            report = self.end_epoch(name, force=True)
            if report.throttled:
                self._m_rejections.inc(tenant=name)
                self.ledger.charge(name, rejections=1)
                raise QuotaExceededError(
                    name,
                    "ingest backpressure with exhausted budget: backlog "
                    "cannot ship and cannot grow",
                )
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        tenant.session.ingest(site, rows, deltas)
        count = int(rows.shape[0])
        self.ledger.charge(name, rows=count, ingest_batches=1)
        self._m_rows.inc(count, tenant=name)
        elapsed = self._clock() - self._started
        if elapsed > 0:
            total = self.ledger.aggregate_totals().get("rows", 0)
            self._m_rate.set(total / elapsed)

    # ----------------------------------------------------------------- epochs
    def end_epoch(self, name: str, *, force: bool = False) -> EpochReport:
        """Close one tenant's epoch boundary under its quota.

        Budgets are checked against usage *so far*, so the boundary that
        crosses a budget ships in full (overshoot recorded); the next one
        hits the policy.
        """
        tenant = self._tenant(name)
        usage = self.ledger.tenant_totals(name)
        over = (
            usage.get("shipped_bytes", 0) >= tenant.quota.byte_budget
            or usage.get("epochs", 0) >= tenant.quota.epoch_budget
        )
        if over and tenant.quota.policy == "reject":
            self._m_rejections.inc(tenant=name)
            self.ledger.charge(name, rejections=1)
            raise QuotaExceededError(
                name,
                f"budget exhausted "
                f"(shipped_bytes={usage.get('shipped_bytes', 0):g}/"
                f"{tenant.quota.byte_budget:g}, "
                f"epochs={usage.get('epochs', 0):g}/"
                f"{tenant.quota.epoch_budget:g})",
            )
        tenant.epoch += 1
        if over:
            # Throttled boundary: counted, nothing ships, deltas stay
            # queued at the sites (they ship if the budget is ever raised).
            report = EpochReport(epoch=tenant.epoch, throttled=True)
            report.cumulative_bytes = (
                tenant.history[-1].cumulative_bytes if tenant.history else 0
            )
            tenant.history.append(report)
            self.ledger.charge(name, throttled_epochs=1)
            self._m_throttled.inc(tenant=name)
        else:
            report = tenant.session.end_epoch(force=force)
            tenant.history.append(report)
            self.ledger.charge(
                name, epochs=1, shipped_bytes=report.total_bytes
            )
            self._m_epochs.inc(tenant=name)
            for site_name, nbytes in report.upload_bytes.items():
                if nbytes:
                    self._m_link_bytes.inc(nbytes, tenant=name, site=site_name)
            if tenant.session.conditions is not None:
                self._m_makespan.set(
                    tenant.session.network.makespan(), tenant=name
                )
        self._update_shared_gauges()
        return report

    def run_epoch(self, *, force: bool = False) -> dict[str, EpochReport | None]:
        """One fair round-robin sweep: close every open tenant's boundary.

        The sweep starts from a rotating offset so no tenant is
        systematically served first, and a ``reject`` tenant over budget is
        skipped (recorded as ``None`` and a rejection) rather than aborting
        the sweep — one exhausted tenant must not stall the others.
        """
        if self._closed:
            raise RuntimeError("session manager is closed")
        names = self.tenants
        reports: dict[str, EpochReport | None] = {}
        if not names:
            return reports
        offset = self._rr_offset % len(names)
        self._rr_offset += 1
        for name in names[offset:] + names[:offset]:
            try:
                reports[name] = self.end_epoch(name, force=force)
            except QuotaExceededError:
                reports[name] = None
        return reports

    # ---------------------------------------------------------------- queries
    def query(self, name: str, method: str, *args: Any, **kwargs: Any) -> ProtocolResult:
        """Run a one-shot estimator query for one tenant and bill its cost.

        The query executes over the tenant's accumulated shards with the
        session's own seed stream; its protocol cost (total bits, rounds)
        lands on the tenant's ledger row.
        """
        tenant = self._tenant(name)
        query_fn = getattr(tenant.session, method, None)
        if query_fn is None or not callable(query_fn):
            raise ValueError(f"unknown query method {method!r}")
        result = query_fn(*args, **kwargs)
        if not isinstance(result, ProtocolResult):
            raise ValueError(
                f"{method!r} is not a one-shot query method (use the live_* "
                f"accessors on the session directly)"
            )
        self.ledger.charge(
            name,
            queries=1,
            query_bits=result.cost.total_bits,
            query_rounds=result.cost.rounds,
        )
        self._m_queries.inc(tenant=name)
        return result

    # -------------------------------------------------------------- reporting
    def _build_report(self, tenant: _Tenant) -> TenantCostReport:
        usage = self.ledger.tenant_totals(tenant.name)
        items = self.prices.line_items(usage)
        quota = tenant.quota
        return TenantCostReport(
            tenant=tenant.name,
            usage=usage,
            line_items=items,
            total_cost=sum(item["amount"] for item in items),
            currency=self.prices.currency,
            quota={
                "policy": quota.policy,
                "byte_budget": quota.byte_budget,
                "bytes_remaining": max(
                    quota.byte_budget - usage.get("shipped_bytes", 0), 0
                ),
                "epoch_budget": quota.epoch_budget,
                "epochs_remaining": max(
                    quota.epoch_budget - usage.get("epochs", 0), 0
                ),
                "max_pending_updates": quota.max_pending_updates,
            },
            epoch=tenant.epoch,
            closed=tenant.closed,
        )

    def report(self, name: str) -> TenantCostReport:
        """The tenant's current billing statement (open or closed tenant)."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise KeyError(f"unknown tenant {name!r}")
        return self._build_report(tenant)

    def aggregate_report(self) -> dict[str, Any]:
        """Service-wide usage: the ledger aggregate plus the meter identity.

        ``meters_consistent`` is the acceptance invariant made inspectable:
        the sum of per-tenant *shipped_bytes* ledger rows equals both the
        ledger aggregate and the sum of every session's own network meter.
        """
        self.ledger.verify()
        aggregate = self.ledger.aggregate_totals()
        network_bytes = sum(
            t.session.total_upload_bytes for t in self._tenants.values()
        )
        return {
            "tenants": len(self._tenants),
            "open_tenants": len(self.tenants),
            "usage": aggregate,
            "network_upload_bytes": network_bytes,
            "meters_consistent": (
                aggregate.get("shipped_bytes", 0) == network_bytes
            ),
        }

    def verify_accounting(self) -> None:
        """Assert the full metering identity (tests + load-gen gate).

        Per tenant: the ledger's ``shipped_bytes`` row equals the
        session's own network meter.  Globally: tenant rows sum to the
        ledger aggregate (no double-count), which therefore equals the sum
        of all per-session network meters (no bleed).
        """
        self.ledger.verify()
        for name, tenant in self._tenants.items():
            ledger_bytes = self.ledger.tenant_totals(name).get("shipped_bytes", 0)
            meter_bytes = tenant.session.total_upload_bytes
            if ledger_bytes != meter_bytes:
                raise AssertionError(
                    f"tenant {name!r}: ledger says {ledger_bytes} shipped "
                    f"bytes, session network metered {meter_bytes}"
                )
        aggregate = self.ledger.aggregate_totals().get("shipped_bytes", 0)
        network = sum(t.session.total_upload_bytes for t in self._tenants.values())
        if aggregate != network:
            raise AssertionError(
                f"aggregate ledger {aggregate} != summed network meters {network}"
            )

    # -------------------------------------------------------------- lifecycle
    def _update_shared_gauges(self) -> None:
        if self.runtime is not None:
            self._m_pool.set(self.runtime.resident_pool_count)
        leader = max((t.epoch for t in self._tenants.values() if not t.closed),
                     default=0)
        for name, tenant in self._tenants.items():
            if not tenant.closed:
                self._m_lag.set(leader - tenant.epoch, tenant=name)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every open tenant session (idempotent; runtime not owned).

        The shared runtime is the caller's to close — the manager only
        releases what it created.  Accounting is verified on the way out
        so a lifecycle bug cannot silently ship an unbalanced ledger.
        """
        if self._closed:
            return
        self._closed = True
        for tenant in self._tenants.values():
            if not tenant.closed:
                tenant.closed = True
                tenant.session.close()
                self._m_tenants.dec()
        self.verify_accounting()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
