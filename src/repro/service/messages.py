"""The service layer's message schema and payload codec.

A service message is ``(type, meta, payload)``:

* ``type`` — one of :data:`MESSAGE_TYPES` (one byte on the wire);
* ``meta`` — a small JSON object of control fields (site index, label,
  declared bits, round index, ...);
* ``payload`` — opaque bytes produced by :func:`encode_payload`.

Message body layout (wrapped in a :mod:`repro.comm.framing` frame)::

    type     1 byte   (index into MESSAGE_TYPES)
    meta_len uint32   (little-endian)
    meta     meta_len bytes of UTF-8 JSON
    payload  the rest of the body

Schema
------
``hello``
    site/client -> server.  ``{"role": "site", "index": i}`` plus the
    site's wire-encoded shard, or ``{"role": "client"}``.
``assign``
    server -> site.  The site's confirmed name/offset and the cluster
    shape; completes registration.
``round``
    server -> site.  Opens aggregate round ``n`` on this link, so both
    ends attribute subsequent observed bytes to the same round.
``msg``
    A metered protocol message.  Downstream it carries the coordinator's
    payload to the site; upstream the *site* sends it (the payload bytes
    physically travel site -> server and are counted off the socket).
``relay``
    server -> site.  Control copy of an upstream payload the site must
    push back as a ``msg`` (the site is the sender of record; see
    :class:`repro.service.transport.RemoteNetwork`).
``ack``
    site -> server.  Receipt for a downstream ``msg``: byte count the site
    observed on its socket plus a digest of the payload.
``task`` / ``task_result``
    Per-site fan-out: a module-level engine task function executed on the
    site process (:class:`repro.service.transport.RemoteRuntime`).
``query`` / ``answer``
    client -> server -> client.  One estimator query (method + args) and
    its :class:`~repro.comm.protocol.ProtocolResult` plus the service
    metering report.
``error``
    Either direction: structured failure (exception type + message).
``bye``
    Orderly shutdown of a connection (or, from a client with
    ``{"shutdown": true}``, of the whole server).
``retry``
    site -> server.  A transient refusal: the site could not serve this
    request right now but the link is healthy — the coordinator backs off
    and resends (see :class:`repro.service.transport.RemoteNetwork`), up
    to its retry budget.  Keeps the FIFO discipline intact: the refusal
    *is* the reply to the refused request.

Payload codec
-------------
:func:`encode_payload` picks the narrowest faithful encoding, tagged by a
leading byte: raw bytes pass through, numpy arrays and ``{str: array}``
dicts use the byte-exact wire codec (:mod:`repro.comm.wire`), JSON-safe
scalars travel as JSON, and everything else (sketch objects, composite
dicts) falls back to pickle.  ``decode_payload`` restores the original
value bit-exactly — pinned by round-trip tests over every payload type the
11 protocol families actually send.
"""

from __future__ import annotations

import json
import pickle
import pickletools
import struct
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.comm import wire

__all__ = [
    "MESSAGE_TYPES",
    "PAYLOAD_TAG_BYTES",
    "CorruptFrameError",
    "Message",
    "ServiceError",
    "SiteTimeoutError",
    "SiteUnavailableError",
    "decode_message",
    "decode_payload",
    "encode_message",
    "encode_payload",
]

#: Wire order is part of the format: a type's index is its on-wire code
#: (new types append, so existing codes never shift).
MESSAGE_TYPES = (
    "hello",
    "assign",
    "round",
    "msg",
    "relay",
    "ack",
    "task",
    "task_result",
    "query",
    "answer",
    "error",
    "bye",
    "retry",
)
_CODE_OF = {name: code for code, name in enumerate(MESSAGE_TYPES)}


class ServiceError(RuntimeError):
    """A malformed or failed service exchange."""


class SiteUnavailableError(ServiceError):
    """A site cannot serve protocol traffic (disconnected, or never will).

    The coordinator's degradation path catches this family: the query is
    re-answered over the surviving sub-cluster with the failed site
    excluded and renormalized (see ``CoordinatorServer``).
    """

    def __init__(self, message: str, *, site: str | None = None) -> None:
        super().__init__(message)
        self.site = site


class SiteTimeoutError(SiteUnavailableError):
    """A site's reply missed the coordinator's per-request deadline.

    The slow site may still answer later — its in-flight replies are
    written off, and a streaming session keeps it droppable/restorable —
    which is what distinguishes a *straggler* (timeout, degrade) from a
    *corrupt* site (digest mismatch, quarantine)."""


class CorruptFrameError(ServiceError):
    """A payload's digest did not survive the socket crossing.

    Unlike a timeout this is evidence of corruption (fault or adversary),
    so the coordinator quarantines the site instead of merely degrading:
    the link is declared dead and later queries exclude the site until it
    reconnects."""

    def __init__(self, message: str, *, site: str | None = None) -> None:
        super().__init__(message)
        self.site = site


@dataclass
class Message:
    """One service message: type, JSON meta, opaque payload bytes."""

    type: str
    meta: dict[str, Any] = field(default_factory=dict)
    payload: bytes = b""

    def __post_init__(self) -> None:
        if self.type not in _CODE_OF:
            raise ServiceError(f"unknown message type {self.type!r}")


def encode_message(message: Message) -> bytes:
    """Encode a message into a frame body."""
    meta = json.dumps(message.meta, separators=(",", ":")).encode("utf-8")
    return (
        struct.pack("<BI", _CODE_OF[message.type], len(meta))
        + meta
        + message.payload
    )


def decode_message(body: bytes) -> Message:
    """Decode a frame body back into a message."""
    if len(body) < 5:
        raise ServiceError(f"message body of {len(body)} bytes has no header")
    code, meta_len = struct.unpack_from("<BI", body, 0)
    if code >= len(MESSAGE_TYPES):
        raise ServiceError(f"unknown message type code {code}")
    if 5 + meta_len > len(body):
        raise ServiceError(
            f"truncated message: meta of {meta_len} bytes exceeds the body"
        )
    try:
        meta = json.loads(body[5 : 5 + meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"unparseable message meta: {exc}") from None
    if not isinstance(meta, dict):
        raise ServiceError(f"message meta must be a JSON object, got {type(meta)}")
    return Message(MESSAGE_TYPES[code], meta, bytes(body[5 + meta_len :]))


# ----------------------------------------------------------------- payloads
#: The codec tag is *envelope*, not payload: observed-byte counters and the
#: wire meter measure the codec body (``len(blob) - PAYLOAD_TAG_BYTES``), so
#: a streaming delta of n bytes meters as exactly n bytes on the wire too.
PAYLOAD_TAG_BYTES = 1

_TAG_BYTES = b"B"  # raw bytes (streaming delta bundles travel verbatim)
_TAG_ARRAY = b"A"  # one numpy array, wire codec
_TAG_BUNDLE = b"D"  # {str: array-or-None}, wire codec bundle
_TAG_JSON = b"J"  # JSON-safe scalars and containers
_TAG_PICKLE = b"P"  # anything else (sketches, composite protocol payloads)


def encode_payload(value: Any) -> bytes:
    """Encode one protocol payload as tagged bytes (see the module docs)."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return _TAG_BYTES + bytes(value)
    if isinstance(value, np.ndarray):
        return _TAG_ARRAY + wire.encode_array(value)
    if (
        isinstance(value, dict)
        and value
        and all(isinstance(key, str) for key in value)
        and all(item is None or isinstance(item, np.ndarray) for item in value.values())
    ):
        try:
            return _TAG_BUNDLE + wire.encode_bundle(value)
        except wire.WireFormatError:
            pass  # exotic dtype or name: the pickle fallback still round-trips
    # bools stay out of the JSON path on purpose: json cannot distinguish a
    # numpy bool from a python one, while pickle keeps the exact type.
    if value is None or (
        isinstance(value, (int, float, str))
        and not isinstance(value, (bool, np.generic))
    ):
        return _TAG_JSON + json.dumps(value).encode("utf-8")
    # Canonicalize the fallback: pickletools.optimize strips the memoization
    # PUT opcodes, so equal values encode to equal bytes and the transport's
    # payload digests are reproducible across processes.
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return _TAG_PICKLE + pickletools.optimize(blob)


def decode_payload(blob: bytes) -> Any:
    """Invert :func:`encode_payload` bit-exactly."""
    if not blob:
        raise ServiceError("empty payload blob")
    tag, body = blob[:1], blob[1:]
    if tag == _TAG_BYTES:
        return body
    if tag == _TAG_ARRAY:
        return wire.decode_array(body)
    if tag == _TAG_BUNDLE:
        return wire.decode_bundle(body)
    if tag == _TAG_JSON:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"unparseable JSON payload: {exc}") from None
    if tag == _TAG_PICKLE:
        try:
            return pickle.loads(body)
        except Exception as exc:
            raise ServiceError(f"unpicklable payload: {exc}") from None
    raise ServiceError(f"unknown payload tag {tag!r}")
