"""Console entry points for the service layer.

Two commands launch a cluster as real OS processes:

``repro-serve`` (also ``python -m repro.service.cli serve``)
    Stand the coordinator up::

        repro-serve --b b.npy --sites 4 --port 9000 --seed 7

    prints the bound address and serves until interrupted (or until a
    client sends a shutdown).

``repro-site`` (also ``python -m repro.service.cli site``)
    Join as one site::

        repro-site --host 127.0.0.1 --port 9000 --index 0 --shard shard0.npy

    registers the shard and serves protocol traffic until the coordinator
    says ``bye``.

Matrices travel as ``.npy`` files (``numpy.save``).  See the README's
"Running as a service" section for a full two-terminal walkthrough and
``examples/service_quickstart.py`` for a scripted 4-site cluster.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

__all__ = ["aggregate_main", "main", "serve_main", "site_main"]


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--b", required=True, help="path to the coordinator matrix (.npy)")
    parser.add_argument("--sites", type=int, required=True, help="number of site agents to expect")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--seed", type=int, default=None, help="base seed for the query stream")
    parser.add_argument(
        "--deadline", type=float, default=10.0,
        help="per-site reply deadline and stop() bound, in seconds (default 10)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="retry budget for a site's transient 'retry' refusals (default 2)",
    )


def _add_site_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="coordinator (or aggregator) port; required unless --port-file is given",
    )
    parser.add_argument(
        "--port-file", default=None,
        help="read the port from this file instead (polled; written by an "
        "aggregator agent that bound port 0)",
    )
    parser.add_argument("--index", type=int, required=True, help="this site's index (0-based)")
    parser.add_argument("--shard", required=True, help="path to this site's row-shard of A (.npy)")
    chaos = parser.add_argument_group("chaos injection (fault drills; all default off)")
    chaos.add_argument(
        "--delay", type=float, default=0.0,
        help="sleep this many seconds before answering each protocol request",
    )
    chaos.add_argument(
        "--delay-after", type=int, default=0,
        help="start delaying only after this many protocol requests",
    )
    chaos.add_argument(
        "--delay-count", type=int, default=None,
        help="delay at most this many requests (default: forever)",
    )
    chaos.add_argument(
        "--corrupt-upstream", action="store_true",
        help="flip one byte of every upstream echo (trips the digest check)",
    )
    chaos.add_argument(
        "--flaky", type=int, default=0,
        help="answer the first N protocol requests with a transient retry refusal",
    )


def serve_cmd(args: argparse.Namespace) -> int:
    from repro.service.server import CoordinatorServer

    server = CoordinatorServer(
        np.load(args.b),
        num_sites=args.sites,
        seed=args.seed,
        host=args.host,
        port=args.port,
        deadline=args.deadline,
        retries=args.retries,
    ).start()
    host, port = server.address
    print(f"repro-serve: listening on {host}:{port}, waiting for {args.sites} sites", flush=True)
    try:
        server.wait_ready()
        print(f"repro-serve: cluster ready ({args.sites} sites registered)", flush=True)
        # Serve until the loop thread exits (client-initiated shutdown) or ^C.
        while server._thread is not None and server._thread.is_alive():
            time.sleep(0.5)
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down", flush=True)
    finally:
        server.stop()
    return 0


def _add_aggregate_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="coordinator host")
    parser.add_argument("--port", type=int, required=True, help="coordinator port")
    parser.add_argument("--name", required=True, help="this aggregator's tree name")
    parser.add_argument(
        "--indices", required=True,
        help="comma-separated global indices of the fronted sites, in tree child order",
    )
    parser.add_argument(
        "--listen-host", default="127.0.0.1",
        help="address to accept the fronted sites on (port is always 0/auto)",
    )
    parser.add_argument(
        "--port-file", default=None,
        help="publish the bound listen port to this file (atomic write)",
    )


def _resolve_port(args: argparse.Namespace) -> int:
    if args.port is not None:
        return args.port
    if args.port_file is None:
        raise SystemExit("one of --port / --port-file is required")
    from repro.service.client import read_port_file

    return read_port_file(args.port_file)


def site_cmd(args: argparse.Namespace) -> int:
    from repro.service.client import SiteAgent

    agent = SiteAgent(
        args.host,
        _resolve_port(args),
        args.index,
        np.load(args.shard),
        delay=args.delay,
        delay_after=args.delay_after,
        delay_count=args.delay_count,
        corrupt_upstream=args.corrupt_upstream,
        flaky=args.flaky,
    )
    print(f"repro-site: joining {args.host}:{agent.port} as site-{args.index}", flush=True)
    agent.run()
    print(f"repro-site: {agent.name} done", flush=True)
    return 0


def aggregate_cmd(args: argparse.Namespace) -> int:
    from repro.service.client import AggregatorAgent

    agent = AggregatorAgent(
        args.host,
        args.port,
        args.name,
        [int(i) for i in args.indices.split(",") if i != ""],
        listen_host=args.listen_host,
        port_file=args.port_file,
    )
    print(
        f"repro-aggregate: {args.name} fronting sites {agent.indices}, "
        f"coordinator {args.host}:{args.port}",
        flush=True,
    )
    agent.run()
    print(f"repro-aggregate: {args.name} done", flush=True)
    return 0


def serve_main() -> int:
    parser = argparse.ArgumentParser(prog="repro-serve", description="Serve a cluster coordinator.")
    _add_serve_args(parser)
    return serve_cmd(parser.parse_args())


def site_main() -> int:
    parser = argparse.ArgumentParser(prog="repro-site", description="Run one site agent.")
    _add_site_args(parser)
    return site_cmd(parser.parse_args())


def aggregate_main() -> int:
    parser = argparse.ArgumentParser(
        prog="repro-aggregate", description="Run one tree aggregator agent."
    )
    _add_aggregate_args(parser)
    return aggregate_cmd(parser.parse_args())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.cli",
        description="Run the coordinator server, a site agent, or an aggregator.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    _add_serve_args(commands.add_parser("serve", help="run the coordinator server"))
    _add_site_args(commands.add_parser("site", help="run one site agent"))
    _add_aggregate_args(
        commands.add_parser("aggregate", help="run one tree aggregator agent")
    )
    args = parser.parse_args(argv)
    if args.command == "serve":
        return serve_cmd(args)
    if args.command == "aggregate":
        return aggregate_cmd(args)
    return site_cmd(args)


if __name__ == "__main__":
    sys.exit(main())
