"""Prometheus-text-format metrics registry for the monitoring service.

The service layer already *measures* everything that matters — the
bit-accounting contract meters every byte a protocol or streaming session
ships — but those meters live on Python objects.  This module gives them an
operational surface: a tiny, dependency-free metrics registry in the shape
of ``prometheus_client`` (the same registry/labels/render split MAAS's
``provisioningserver/prometheus`` utils wrap), rendered in the Prometheus
text exposition format (version 0.0.4), so a stock Prometheus server can
scrape a running coordinator.

Only the two metric kinds the service needs are implemented:

:class:`Counter`
    Monotone totals — rows ingested, bytes shipped, epochs closed,
    quota rejections.  ``inc`` rejects negative increments.
:class:`Gauge`
    Point-in-time values — open tenants, epoch lag, pending updates,
    resident-pool occupancy, simulated makespan.

Every metric lives in a :class:`MetricsRegistry` and may declare *label*
dimensions (``tenant``, ``site``, ...); one metric object holds one time
series per label combination.  :meth:`MetricsRegistry.render` produces the
scrape body; :func:`parse_metrics_text` is the inverse used by the test
suite and the load-generator gate to prove the exposition round-trips.

Everything is guarded by one lock per registry: the asyncio server's query
worker, the session manager and an HTTP scrape may touch the registry from
different threads.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "MetricsError",
    "MetricsRegistry",
    "parse_metrics_text",
]

#: Prometheus metric and label name grammar (the subset we accept).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Text-exposition sample line, for :func:`parse_metrics_text`.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


class MetricsError(ValueError):
    """A malformed metric registration, sample, or exposition text."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus clients conventionally do."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """One named metric: fixed label names, one sample per label tuple."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise MetricsError(f"invalid label name {label!r} on {name!r}")
        if len(set(labels)) != len(labels):
            raise MetricsError(f"duplicate label names on {name!r}: {labels}")
        self.name = name
        self.help_text = " ".join(str(help_text).split())
        self.label_names = tuple(labels)
        self._lock = lock
        #: label-value tuple (aligned with label_names) -> sample value.
        self._samples: dict[tuple[str, ...], float] = {}
        if not self.label_names:
            self._samples[()] = 0.0

    # ----------------------------------------------------------------- label
    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def value(self, **labels: object) -> float:
        """The current sample for one label combination (0.0 if unseen)."""
        key = self._key(labels)
        with self._lock:
            return self._samples.get(key, 0.0)

    def remove(self, **labels: object) -> None:
        """Drop one label combination's series (e.g. a closed tenant)."""
        key = self._key(labels)
        with self._lock:
            self._samples.pop(key, None)

    def samples(self) -> dict[tuple[str, ...], float]:
        """A snapshot of every (label-values -> value) sample."""
        with self._lock:
            return dict(self._samples)


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)


class MetricsRegistry:
    """A named collection of metrics with one text-exposition surface.

    Registration is idempotent in the useful way: asking for an existing
    name returns the existing metric, provided the kind, help text and
    label names match — a mismatched re-registration is a programming
    error and raises :class:`MetricsError` instead of silently forking the
    time series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------- register
    def _register(self, cls: type, name: str, help_text: str, labels: Sequence[str]):
        with self._lock:
            existing = self._metrics.get(name)
        if existing is not None:
            if (
                type(existing) is not cls
                or existing.label_names != tuple(labels)
            ):
                raise MetricsError(
                    f"metric {name!r} already registered as a "
                    f"{existing.kind} with labels {list(existing.label_names)}"
                )
            return existing
        metric = cls(name, help_text, labels, self._lock)
        with self._lock:
            # Two threads may have built the metric concurrently; first in
            # wins so every caller shares one sample store.
            return self._metrics.setdefault(name, metric)

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter."""
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str, labels: Sequence[str] = ()) -> Gauge:
        """Register (or fetch) a gauge."""
        return self._register(Gauge, name, help_text, labels)

    def get(self, name: str) -> _Metric | None:
        """The registered metric of that name, if any."""
        with self._lock:
            return self._metrics.get(name)

    # --------------------------------------------------------------- render
    def collect(self) -> Iterator[tuple[str, dict[str, str], float]]:
        """Every sample as ``(metric name, labels dict, value)``."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            for key, value in sorted(metric.samples().items()):
                yield metric.name, dict(zip(metric.label_names, key)), value

    def render(self) -> str:
        """The scrape body in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, value in sorted(metric.samples().items()):
                if metric.label_names:
                    labels = ",".join(
                        f'{name}="{_escape_label_value(item)}"'
                        for name, item in zip(metric.label_names, key)
                    )
                    lines.append(f"{metric.name}{{{labels}}} {_format_value(value)}")
                else:
                    lines.append(f"{metric.name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def parse_metrics_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse a text-format exposition back into samples.

    Returns ``{(name, sorted label items): value}``.  This is the scrape
    side of the contract: the tests and the load-generator gate feed
    :meth:`MetricsRegistry.render` output through here to prove a real
    Prometheus scraper would accept it.  Malformed lines raise
    :class:`MetricsError` — a gate that skipped unparseable lines would
    prove nothing.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    typed: dict[str, str] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                if parts[2] in typed:
                    raise MetricsError(
                        f"line {line_number}: duplicate TYPE for {parts[2]!r}"
                    )
                typed[parts[2]] = parts[3] if len(parts) > 3 else ""
            elif len(parts) >= 2 and parts[1] not in ("HELP", "TYPE"):
                raise MetricsError(
                    f"line {line_number}: unknown comment form {line!r}"
                )
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise MetricsError(f"line {line_number}: unparseable sample {line!r}")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw_labels):
                labels[pair.group("key")] = _unescape_label_value(pair.group("value"))
                consumed = pair.end()
            if consumed != len(raw_labels):
                raise MetricsError(
                    f"line {line_number}: unparseable labels {raw_labels!r}"
                )
        try:
            value = float(match.group("value"))
        except ValueError:
            raise MetricsError(
                f"line {line_number}: unparseable value {match.group('value')!r}"
            ) from None
        key = (match.group("name"), tuple(sorted(labels.items())))
        if key in samples:
            raise MetricsError(
                f"line {line_number}: duplicate sample for {key[0]!r} {labels}"
            )
        samples[key] = value
    return samples
