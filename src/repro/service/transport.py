"""Transport adapters that put the engine on real sockets.

Three pieces turn an in-process protocol execution into a distributed one
without touching a line of protocol code:

:class:`RemoteNetwork`
    A :class:`~repro.comm.network.Network` whose :meth:`send` *also*
    transmits the message over the corresponding site's TCP connection.
    Downstream messages are pushed to the site (which acks with the byte
    count it observed on its socket); upstream messages are pushed back by
    the *site* — the server hands the site a control copy (``relay``) and
    the site emits the actual ``msg`` frame, so the payload bytes
    physically travel site -> server and are counted off the server's
    socket.  Every payload crossing is digest-checked, so a transport that
    corrupted or dropped a single byte fails loudly.

    The network keeps **three** independent meters:

    * the inherited simulated meter — the paper-convention formula bits,
      bit-identical to an in-process run of the same protocol;
    * a *wire meter* (same round structure) charging 8 bits per actually
      encoded payload byte — the service's billing convention, and the
      convention the streaming runtime already uses in-process;
    * *observed* byte counters per link per round, measured at the socket
      (server-side reads for upstream, site-side reads for downstream).

    The service invariant, asserted in ``tests/service/``:
    ``observed_bytes * 8 == wire-meter bits`` on every link and in every
    round — and for streaming payloads (already encoded bytes, charged
    8 bits/byte in-process too) all three meters coincide exactly.

:class:`RemoteRuntime`
    A :class:`~repro.engine.runtime.Runtime` whose :meth:`map` fans the
    engine's picklable per-site tasks out to the site processes (round
    robin, pipelined) instead of a local pool.  Results return in task
    order and generators round-trip exactly as under the ``processes``
    executor, so outputs stay bit-identical.

:class:`SocketTransport`
    The :class:`~repro.comm.transport.Transport` gluing both to a set of
    live site links; plugged into the estimator facades via their
    ``transport=`` parameter.

The :class:`SiteLink` interface is the thin seam to the event loop: the
asyncio server implements it with ``run_coroutine_threadsafe`` bridges
(queries execute on a worker thread while the loop owns the sockets).
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter
from typing import Any, Callable, Mapping, Sequence

from repro.comm.accounting import MessageLog
from repro.comm.conditions import NetworkConditions
from repro.comm.network import DOWNSTREAM, UPSTREAM, Network
from repro.comm.transport import Transport
from repro.engine.runtime import QuorumPolicy, Runtime
from repro.service.messages import (
    PAYLOAD_TAG_BYTES,
    CorruptFrameError,
    Message,
    ServiceError,
    SiteTimeoutError,
    decode_payload,
    encode_payload,
)

__all__ = ["RemoteNetwork", "RemoteRuntime", "SiteLink", "SocketTransport"]


def payload_digest(blob: bytes) -> str:
    """Digest used to verify payload bytes across a socket crossing."""
    return hashlib.sha256(blob).hexdigest()


class SiteLink:
    """One live coordinator<->site connection, as the adapters see it.

    Implementations (the asyncio server) provide a thread-safe, FIFO
    request/reply primitive plus the socket-observed byte counters for
    *upstream* ``msg`` frames (the server counts those off its own reads;
    downstream observations come back in the site's acks and are recorded
    here by the :class:`RemoteNetwork`).
    """

    site_name: str

    def request(self, message: Message, timeout: float | None = None) -> Message:
        """Send one message and block for its reply (FIFO per link).

        ``timeout`` bounds the wait in real seconds; expiry raises
        :class:`TimeoutError` (the caller classifies it — see
        :meth:`RemoteNetwork._request`)."""
        raise NotImplementedError

    def submit(self, message: Message):
        """Send one message, return a future for its reply (pipelined)."""
        raise NotImplementedError

    def take_observed_upstream(self) -> list[tuple[int, int]]:
        """Drain ``(round, payload_bytes)`` records of upstream ``msg``
        frames counted off the server's socket since the last call."""
        raise NotImplementedError


class RemoteNetwork(Network):
    """A metered star whose messages additionally travel over real sockets."""

    def __init__(
        self,
        site_names: Sequence[str],
        coordinator_name: str = "coordinator",
        *,
        conditions: NetworkConditions | None = None,
        links: Mapping[str, SiteLink],
        deadline: float | None = None,
        retries: int = 0,
        backoff: float = 0.05,
        on_retry: Callable[[str], None] | None = None,
    ) -> None:
        super().__init__(site_names, coordinator_name, conditions=conditions)
        missing = [name for name in self.site_names if name not in links]
        if missing:
            raise ServiceError(
                f"no live site connection for {missing}; registered links: "
                f"{sorted(links)}"
            )
        self._site_links = {name: links[name] for name in self.site_names}
        #: Per-request reply deadline (real seconds; None = wait forever).
        self.deadline = deadline
        #: Retry budget for transient refusals (a site's ``retry`` reply).
        self.retries = int(retries)
        #: Base backoff between retries, doubled per attempt.
        self.backoff = float(backoff)
        self._on_retry = on_retry
        self.wire_log = MessageLog()
        self.wire_links: dict[str, MessageLog] = {
            name: MessageLog() for name in self.site_names
        }
        #: Socket-observed payload bytes, per link and per (link, round).
        self.observed_link_bytes: Counter[str] = Counter()
        self.observed_round_bytes: dict[str, Counter[int]] = {
            name: Counter() for name in self.site_names
        }
        self._notified_round: dict[str, int] = {name: 0 for name in self.site_names}

    # --------------------------------------------------------------- request
    def _request(self, site: str, link: SiteLink, message: Message) -> Message:
        """One deadline-bounded request with retry/backoff on transients.

        A ``retry`` reply is the site saying "healthy but busy": the FIFO
        pairing is intact (the refusal answered the refused request), so
        the coordinator backs off exponentially and resends, up to the
        budget.  A missed deadline is different — the reply may still be
        in flight, so resending would desync the FIFO; it escalates as
        :class:`~repro.service.messages.SiteTimeoutError` for the server's
        degradation path to handle.
        """
        attempt = 0
        while True:
            try:
                reply = link.request(message, timeout=self.deadline)
            except TimeoutError:
                raise SiteTimeoutError(
                    f"site {site!r} missed the {self.deadline}s response "
                    f"deadline answering a {message.type!r}",
                    site=site,
                ) from None
            if reply.type != "retry":
                return reply
            attempt += 1
            if attempt > self.retries:
                raise ServiceError(
                    f"site {site!r} still refusing after {self.retries} "
                    f"retries: {reply.meta}"
                )
            if self._on_retry is not None:
                self._on_retry(site)
            time.sleep(self.backoff * (2 ** (attempt - 1)))

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        result = super().send(
            sender, receiver, payload, label=label, bits=bits, universe=universe
        )
        record = self.log.messages[-1]  # bits + aggregate round as charged
        downstream = sender == self.coordinator_name
        site = receiver if downstream else sender
        link = self._site_links[site]

        if self._notified_round[site] != record.round_index:
            # Open the aggregate round on this link before its first burst,
            # so both endpoints attribute observed bytes to the same round.
            self._notified_round[site] = record.round_index
            opened = self._request(
                site, link, Message("round", {"round": record.round_index})
            )
            if opened.type != "ack":
                raise ServiceError(
                    f"site {site!r} answered a round open with {opened.type!r}"
                )

        blob = encode_payload(payload)
        # The 1-byte codec tag is envelope (like the frame header and meta):
        # both the wire meter and the observed counters measure the codec
        # body, so a streaming delta of n bytes meters as n bytes here too.
        body_bytes = len(blob) - PAYLOAD_TAG_BYTES
        digest = payload_digest(blob)
        meta = {
            "label": label,
            "bits": record.bits,
            "round": record.round_index,
            "digest": digest,
        }
        if downstream:
            reply = self._request(site, link, Message("msg", meta, blob))
            if reply.type != "ack":
                raise ServiceError(
                    f"site {site!r} answered a downstream msg with {reply.type!r}: "
                    f"{reply.meta}"
                )
            observed = int(reply.meta["observed"])
            if observed != body_bytes or reply.meta.get("digest") != digest:
                raise CorruptFrameError(
                    f"downstream payload to {site!r} corrupted in transit: sent "
                    f"{body_bytes} bytes ({digest[:12]}...), site observed "
                    f"{observed} ({str(reply.meta.get('digest'))[:12]}...)",
                    site=site,
                )
            self.observed_link_bytes[site] += observed
            self.observed_round_bytes[site][record.round_index] += observed
        else:
            reply = self._request(site, link, Message("relay", meta, blob))
            if reply.type != "msg":
                raise ServiceError(
                    f"site {site!r} answered a relay with {reply.type!r}: "
                    f"{reply.meta}"
                )
            if payload_digest(reply.payload) != digest:
                raise CorruptFrameError(
                    f"upstream payload from {site!r} corrupted in transit "
                    f"(digest mismatch over {len(reply.payload)} echoed bytes)",
                    site=site,
                )
            # The payload decoded from the socket bytes must reconstruct
            # the value bit-exactly; a codec that silently lost precision
            # would otherwise hide behind the server-side original.
            decode_payload(reply.payload)
            for round_index, nbytes in link.take_observed_upstream():
                self.observed_link_bytes[site] += nbytes
                self.observed_round_bytes[site][round_index] += nbytes

        # The wire meter flips rounds on the same direction changes as the
        # simulated log, so both meters share one round structure.
        self.wire_log.record(
            sender,
            receiver,
            None,
            label=label,
            bits=8 * body_bytes,
            direction_key=DOWNSTREAM if downstream else UPSTREAM,
        )
        self.wire_links[site].record(
            sender, receiver, None, label=label, bits=8 * body_bytes
        )
        return result

    # ------------------------------------------------------------ accounting
    def wire_link_bits(self) -> dict[str, int]:
        """Per-link wire-metered bits (8 per encoded payload byte)."""
        return {name: log.total_bits for name, log in self.wire_links.items()}

    @property
    def observed_total_bytes(self) -> int:
        """Socket-observed payload bytes over all links."""
        return sum(self.observed_link_bytes.values())

    def service_report(self) -> dict[str, Any]:
        """The observed-vs-metered summary shipped with every answer."""
        return {
            "rounds": self.rounds,
            "simulated_bits": self.total_bits,
            "simulated_link_bits": self.link_bits(),
            "wire_bits": self.wire_log.total_bits,
            "wire_link_bits": self.wire_link_bits(),
            "wire_round_bits": self.wire_log.bits_per_round(),
            "observed_bytes": self.observed_total_bytes,
            "observed_link_bytes": dict(self.observed_link_bytes),
            "observed_round_bytes": {
                name: dict(rounds)
                for name, rounds in self.observed_round_bytes.items()
            },
        }

    def reset(self) -> None:
        super().reset()
        self.wire_log.reset()
        for log in self.wire_links.values():
            log.reset()
        self.observed_link_bytes.clear()
        for rounds in self.observed_round_bytes.values():
            rounds.clear()
        self._notified_round = {name: 0 for name in self.site_names}


class RemoteRuntime(Runtime):
    """Fans the engine's per-site tasks out to the site processes.

    The sends/merges of every protocol stay serial on the coordinator (the
    runtime contract), so the only difference from the ``processes``
    executor is *where* the fan-out tasks run: task arguments pickle out to
    a site agent over TCP and results pickle back, in task order, with the
    generator round-tripping of :meth:`~repro.engine.runtime.Runtime
    .map_sites` working unchanged.  Outputs are therefore bit-identical to
    every other executor (the pinned PR 5 contract).
    """

    def __init__(
        self,
        transport: "SocketTransport",
        *,
        dropout: str = "fail",
        quorum: "QuorumPolicy | tuple | int | None" = None,
    ) -> None:
        super().__init__("serial", dropout=dropout, quorum=quorum)
        self._transport = transport

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        if not tasks:
            return []
        return self._transport.run_tasks(fn, tasks)


class SocketTransport(Transport):
    """Builds :class:`RemoteNetwork` instances over a set of live links.

    ``links`` maps canonical site names (``site-0`` ... ``site-{k-1}``) to
    their connections.  One transport serves many protocol runs; each run
    builds a fresh network (fresh meters) over the same connections, and a
    dropout-excluded run simply passes the surviving subset of names.
    """

    def __init__(
        self,
        links: Mapping[str, SiteLink],
        *,
        deadline: float | None = None,
        retries: int = 0,
        backoff: float = 0.05,
        on_retry: Callable[[str], None] | None = None,
    ) -> None:
        self._links = dict(links)
        #: Hardening knobs forwarded to every network this transport builds
        #: (per-request reply deadline, transient-retry budget + backoff).
        self.deadline = deadline
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.on_retry = on_retry
        #: The most recently built network — the server reads its
        #: :meth:`RemoteNetwork.service_report` after each query (queries
        #: are serialized on one worker, so "last" is unambiguous).
        self.last_network: RemoteNetwork | None = None

    @property
    def links(self) -> dict[str, SiteLink]:
        return dict(self._links)

    def runtime(
        self,
        *,
        dropout: str = "fail",
        quorum: "QuorumPolicy | tuple | int | None" = None,
    ) -> RemoteRuntime:
        """A runtime fanning per-site tasks out over these links."""
        return RemoteRuntime(self, dropout=dropout, quorum=quorum)

    def build_network(
        self,
        site_names: Sequence[str],
        coordinator_name: str,
        conditions: NetworkConditions | None = None,
    ) -> RemoteNetwork:
        network = RemoteNetwork(
            site_names,
            coordinator_name,
            conditions=conditions,
            links=self._links,
            deadline=self.deadline,
            retries=self.retries,
            backoff=self.backoff,
            on_retry=self.on_retry,
        )
        self.last_network = network
        return network

    # ------------------------------------------------------------- fan-out
    def run_tasks(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        """Run ``fn(*task)`` for every task on the site agents, in order.

        Tasks are dealt round-robin across the live links and pipelined
        (all submitted before any reply is awaited); replies are collected
        in task order.
        """
        if not getattr(fn, "__module__", "").startswith("repro."):
            raise ServiceError(
                f"refusing to dispatch non-repro task function {fn!r} to a "
                f"site agent"
            )
        spec = f"{fn.__module__}:{fn.__qualname__}"
        ordered_links = [self._links[name] for name in sorted(self._links)]
        futures = [
            ordered_links[index % len(ordered_links)].submit(
                Message("task", {"fn": spec}, encode_payload(tuple(task)))
            )
            for index, task in enumerate(tasks)
        ]
        results = []
        for future in futures:
            reply = future.result()
            if reply.type == "error":
                raise ServiceError(
                    f"site task {spec} failed remotely: "
                    f"{reply.meta.get('error')}: {reply.meta.get('message')}"
                )
            if reply.type != "task_result":
                raise ServiceError(
                    f"site answered a task with {reply.type!r}: {reply.meta}"
                )
            results.append(decode_payload(reply.payload))
        return results
