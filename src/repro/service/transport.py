"""Transport adapters that put the engine on real sockets.

Three pieces turn an in-process protocol execution into a distributed one
without touching a line of protocol code:

:class:`RemoteNetwork`
    A :class:`~repro.comm.network.Network` whose :meth:`send` *also*
    transmits the message over the corresponding site's TCP connection.
    Downstream messages are pushed to the site (which acks with the byte
    count it observed on its socket); upstream messages are pushed back by
    the *site* — the server hands the site a control copy (``relay``) and
    the site emits the actual ``msg`` frame, so the payload bytes
    physically travel site -> server and are counted off the server's
    socket.  Every payload crossing is digest-checked, so a transport that
    corrupted or dropped a single byte fails loudly.

    The network keeps **three** independent meters:

    * the inherited simulated meter — the paper-convention formula bits,
      bit-identical to an in-process run of the same protocol;
    * a *wire meter* (same round structure) charging 8 bits per actually
      encoded payload byte — the service's billing convention, and the
      convention the streaming runtime already uses in-process;
    * *observed* byte counters per link per round, measured at the socket
      (server-side reads for upstream, site-side reads for downstream).

    The service invariant, asserted in ``tests/service/``:
    ``observed_bytes * 8 == wire-meter bits`` on every link and in every
    round — and for streaming payloads (already encoded bytes, charged
    8 bits/byte in-process too) all three meters coincide exactly.

:class:`RemoteRuntime`
    A :class:`~repro.engine.runtime.Runtime` whose :meth:`map` fans the
    engine's picklable per-site tasks out to the site processes (round
    robin, pipelined) instead of a local pool.  Results return in task
    order and generators round-trip exactly as under the ``processes``
    executor, so outputs stay bit-identical.

:class:`SocketTransport`
    The :class:`~repro.comm.transport.Transport` gluing both to a set of
    live site links; plugged into the estimator facades via their
    ``transport=`` parameter.

The :class:`SiteLink` interface is the thin seam to the event loop: the
asyncio server implements it with ``run_coroutine_threadsafe`` bridges
(queries execute on a worker thread while the loop owns the sockets).
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter
from typing import Any, Callable, Mapping, Sequence

from repro.comm.accounting import MessageLog
from repro.comm.conditions import NetworkConditions
from repro.comm.network import DOWNSTREAM, UPSTREAM, Network, TreeNetwork
from repro.comm.transport import Transport
from repro.comm.tree import TreeSpec
from repro.engine.runtime import QuorumPolicy, Runtime
from repro.service.messages import (
    PAYLOAD_TAG_BYTES,
    CorruptFrameError,
    Message,
    ServiceError,
    SiteTimeoutError,
    decode_payload,
    encode_payload,
)

__all__ = [
    "RemoteNetwork",
    "RemoteTreeNetwork",
    "RemoteRuntime",
    "SiteLink",
    "SocketTransport",
]


def payload_digest(blob: bytes) -> str:
    """Digest used to verify payload bytes across a socket crossing."""
    return hashlib.sha256(blob).hexdigest()


class SiteLink:
    """One live coordinator<->site connection, as the adapters see it.

    Implementations (the asyncio server) provide a thread-safe, FIFO
    request/reply primitive plus the socket-observed byte counters for
    *upstream* ``msg`` frames (the server counts those off its own reads;
    downstream observations come back in the site's acks and are recorded
    here by the :class:`RemoteNetwork`).
    """

    site_name: str

    def request(self, message: Message, timeout: float | None = None) -> Message:
        """Send one message and block for its reply (FIFO per link).

        ``timeout`` bounds the wait in real seconds; expiry raises
        :class:`TimeoutError` (the caller classifies it — see
        :meth:`RemoteNetwork._request`)."""
        raise NotImplementedError

    def submit(self, message: Message, *, flush: bool = True):
        """Send one message, return a future for its reply (pipelined).

        ``flush=False`` *stages* the frame: implementations may hold it
        until the next flushing submit and write the whole batch with one
        ``sendall`` (coalescing a round open with its first burst into a
        single syscall and, on the receiving side, one socket read).
        Implementations without staging may ignore the flag — replies are
        FIFO either way.
        """
        raise NotImplementedError

    def take_observed_upstream(self) -> list[tuple[int, int]]:
        """Drain ``(round, payload_bytes)`` records of upstream ``msg``
        frames counted off the server's socket since the last call."""
        raise NotImplementedError


def request_with_retry(
    site: str,
    link: SiteLink,
    message: Message,
    *,
    deadline: float | None,
    retries: int,
    backoff: float,
    on_retry: Callable[[str], None] | None = None,
) -> Message:
    """One deadline-bounded request with retry/backoff on transients.

    A ``retry`` reply is the site saying "healthy but busy": the FIFO
    pairing is intact (the refusal answered the refused request), so the
    coordinator backs off exponentially and resends, up to the budget.  A
    missed deadline is different — the reply may still be in flight, so
    resending would desync the FIFO; it escalates as
    :class:`~repro.service.messages.SiteTimeoutError` for the server's
    degradation path to handle.
    """
    attempt = 0
    while True:
        try:
            reply = link.request(message, timeout=deadline)
        except TimeoutError:
            raise SiteTimeoutError(
                f"site {site!r} missed the {deadline}s response "
                f"deadline answering a {message.type!r}",
                site=site,
            ) from None
        if reply.type != "retry":
            return reply
        attempt += 1
        if attempt > retries:
            raise ServiceError(
                f"site {site!r} still refusing after {retries} "
                f"retries: {reply.meta}"
            )
        if on_retry is not None:
            on_retry(site)
        time.sleep(backoff * (2 ** (attempt - 1)))


class RemoteNetwork(Network):
    """A metered star whose messages additionally travel over real sockets."""

    def __init__(
        self,
        site_names: Sequence[str],
        coordinator_name: str = "coordinator",
        *,
        conditions: NetworkConditions | None = None,
        links: Mapping[str, SiteLink],
        deadline: float | None = None,
        retries: int = 0,
        backoff: float = 0.05,
        on_retry: Callable[[str], None] | None = None,
    ) -> None:
        super().__init__(site_names, coordinator_name, conditions=conditions)
        missing = [name for name in self.site_names if name not in links]
        if missing:
            raise ServiceError(
                f"no live site connection for {missing}; registered links: "
                f"{sorted(links)}"
            )
        self._site_links = {name: links[name] for name in self.site_names}
        #: Per-request reply deadline (real seconds; None = wait forever).
        self.deadline = deadline
        #: Retry budget for transient refusals (a site's ``retry`` reply).
        self.retries = int(retries)
        #: Base backoff between retries, doubled per attempt.
        self.backoff = float(backoff)
        self._on_retry = on_retry
        self.wire_log = MessageLog()
        self.wire_links: dict[str, MessageLog] = {
            name: MessageLog() for name in self.site_names
        }
        #: Socket-observed payload bytes, per link and per (link, round).
        self.observed_link_bytes: Counter[str] = Counter()
        self.observed_round_bytes: dict[str, Counter[int]] = {
            name: Counter() for name in self.site_names
        }
        self._notified_round: dict[str, int] = {name: 0 for name in self.site_names}
        self._broadcast_blob: bytes | None = None

    # --------------------------------------------------------------- request
    def _request(self, site: str, link: SiteLink, message: Message) -> Message:
        """See :func:`request_with_retry` (this network's knobs applied)."""
        return request_with_retry(
            site,
            link,
            message,
            deadline=self.deadline,
            retries=self.retries,
            backoff=self.backoff,
            on_retry=self._on_retry,
        )

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        result = super().send(
            sender, receiver, payload, label=label, bits=bits, universe=universe
        )
        record = self.log.messages[-1]  # bits + aggregate round as charged
        downstream = sender == self.coordinator_name
        site = receiver if downstream else sender
        link = self._site_links[site]

        round_future = None
        if self._notified_round[site] != record.round_index:
            # Open the aggregate round on this link before its first burst,
            # so both endpoints attribute observed bytes to the same round.
            # The open is *staged* (flush=False): the burst's own request
            # below flushes both frames in one coalesced write, and FIFO
            # guarantees the ack lands before the burst's reply.
            self._notified_round[site] = record.round_index
            round_future = link.submit(
                Message("round", {"round": record.round_index}), flush=False
            )

        blob = (
            self._broadcast_blob
            if self._broadcast_blob is not None
            else encode_payload(payload)
        )
        # The 1-byte codec tag is envelope (like the frame header and meta):
        # both the wire meter and the observed counters measure the codec
        # body, so a streaming delta of n bytes meters as n bytes here too.
        body_bytes = len(blob) - PAYLOAD_TAG_BYTES
        digest = payload_digest(blob)
        meta = {
            "label": label,
            "bits": record.bits,
            "round": record.round_index,
            "digest": digest,
        }
        if downstream:
            reply = self._request(site, link, Message("msg", meta, blob))
            self._confirm_round(site, round_future)
            if reply.type != "ack":
                raise ServiceError(
                    f"site {site!r} answered a downstream msg with {reply.type!r}: "
                    f"{reply.meta}"
                )
            observed = int(reply.meta["observed"])
            if observed != body_bytes or reply.meta.get("digest") != digest:
                raise CorruptFrameError(
                    f"downstream payload to {site!r} corrupted in transit: sent "
                    f"{body_bytes} bytes ({digest[:12]}...), site observed "
                    f"{observed} ({str(reply.meta.get('digest'))[:12]}...)",
                    site=site,
                )
            self.observed_link_bytes[site] += observed
            self.observed_round_bytes[site][record.round_index] += observed
        else:
            reply = self._request(site, link, Message("relay", meta, blob))
            self._confirm_round(site, round_future)
            if reply.type != "msg":
                raise ServiceError(
                    f"site {site!r} answered a relay with {reply.type!r}: "
                    f"{reply.meta}"
                )
            if payload_digest(reply.payload) != digest:
                raise CorruptFrameError(
                    f"upstream payload from {site!r} corrupted in transit "
                    f"(digest mismatch over {len(reply.payload)} echoed bytes)",
                    site=site,
                )
            # The payload decoded from the socket bytes must reconstruct
            # the value bit-exactly; a codec that silently lost precision
            # would otherwise hide behind the server-side original.
            decode_payload(reply.payload)
            for round_index, nbytes in link.take_observed_upstream():
                self.observed_link_bytes[site] += nbytes
                self.observed_round_bytes[site][round_index] += nbytes

        # The wire meter flips rounds on the same direction changes as the
        # simulated log, so both meters share one round structure.
        self.wire_log.record(
            sender,
            receiver,
            None,
            label=label,
            bits=8 * body_bytes,
            direction_key=DOWNSTREAM if downstream else UPSTREAM,
        )
        self.wire_links[site].record(
            sender, receiver, None, label=label, bits=8 * body_bytes
        )
        return result

    def broadcast(self, payload, *, label: str = "", bits=None, sites=None):
        """Push one payload to every site, encoding it exactly once.

        The star still transmits one copy per link, but the codec runs once
        — the shared blob is reused for every ``send`` of the loop (the
        meters are unchanged: each link is charged the same bits either
        way).
        """
        self._broadcast_blob = encode_payload(payload)
        try:
            return super().broadcast(payload, label=label, bits=bits, sites=sites)
        finally:
            self._broadcast_blob = None

    def _confirm_round(self, site: str, round_future) -> None:
        """Verify a staged round open's ack (FIFO: it already arrived)."""
        if round_future is None:
            return
        opened = round_future.result(self.deadline)
        if opened.type != "ack":
            raise ServiceError(
                f"site {site!r} answered a round open with {opened.type!r}"
            )

    # ------------------------------------------------------------ accounting
    def wire_link_bits(self) -> dict[str, int]:
        """Per-link wire-metered bits (8 per encoded payload byte)."""
        return {name: log.total_bits for name, log in self.wire_links.items()}

    @property
    def observed_total_bytes(self) -> int:
        """Socket-observed payload bytes over all links."""
        return sum(self.observed_link_bytes.values())

    def service_report(self) -> dict[str, Any]:
        """The observed-vs-metered summary shipped with every answer."""
        return {
            "rounds": self.rounds,
            "simulated_bits": self.total_bits,
            "simulated_link_bits": self.link_bits(),
            "wire_bits": self.wire_log.total_bits,
            "wire_link_bits": self.wire_link_bits(),
            "wire_round_bits": self.wire_log.bits_per_round(),
            "observed_bytes": self.observed_total_bytes,
            "observed_link_bytes": dict(self.observed_link_bytes),
            "observed_round_bytes": {
                name: dict(rounds)
                for name, rounds in self.observed_round_bytes.items()
            },
        }

    def reset(self) -> None:
        super().reset()
        self.wire_log.reset()
        for log in self.wire_links.values():
            log.reset()
        self.observed_link_bytes.clear()
        for rounds in self.observed_round_bytes.values():
            rounds.clear()
        self._notified_round = {name: 0 for name in self.site_names}


class RemoteTreeNetwork(TreeNetwork):
    """A metered aggregation tree whose every edge is a real socket hop.

    The shape is a depth-<=2 :class:`~repro.comm.tree.TreeSpec`: the
    root's children are live connections (aggregator agents and/or direct
    site agents), and each aggregator fronts its leaf children over its
    own sockets.  Message routing mirrors :class:`~repro.comm.network
    .TreeNetwork` exactly — same staged merges, same simulated meters, so
    estimates stay bit-identical to the in-process tree — but every edge
    additionally carries the payload's encoded bytes:

    * **downstream**, one frame per root-child subtree: the aggregator
      observes the frame off its own socket, forwards the *same* payload
      bytes once per targeted child (encode-once at every level), and its
      ack aggregates the children's observed counts and digests;
    * **upstream leaf edge** (leaf behind an aggregator): a routed
      ``relay`` — the leaf echoes its payload to the aggregator, which
      counts the bytes off its socket and reports them upstream *without*
      forwarding the payload (the whole point of the tree);
    * **upstream interior edge**: the merged payload computed at drain
      time travels aggregator -> coordinator via the standard relay echo,
      counted off the coordinator's socket.

    Accounting: per-*edge* wire meters (8 bits per encoded payload byte)
    and observed socket bytes, with the service invariant
    ``observed * 8 == wire bits`` holding per edge per round.  Aggregator
    merges for the metered transcript are computed coordinator-side (the
    edges relay the resulting bytes); dispatching merge closures through
    the task fan-out would double-meter, so :attr:`merge_runtime` is
    pinned to ``None``.
    """

    def __init__(
        self,
        tree: TreeSpec,
        *,
        conditions: NetworkConditions | None = None,
        links: Mapping[str, SiteLink],
        deadline: float | None = None,
        retries: int = 0,
        backoff: float = 0.05,
        on_retry: Callable[[str], None] | None = None,
    ) -> None:
        deep = [
            name for name in tree.site_names if tree.node_depth(name) > 2
        ]
        if deep or any(tree.node_depth(agg) > 1 for agg in tree.aggregators):
            raise ServiceError(
                "the socket transport supports aggregation trees of depth "
                f"<= 2 (aggregators as root children); got depth {tree.depth}"
            )
        super().__init__(tree, conditions=conditions)
        edges = list(tree.site_names) + list(tree.aggregators)
        missing = [name for name in edges if name not in links]
        if missing:
            raise ServiceError(
                f"no live connection or route for {missing}; registered "
                f"links: {sorted(links)}"
            )
        self._site_links = {name: links[name] for name in edges}
        self.deadline = deadline
        self.retries = int(retries)
        self.backoff = float(backoff)
        self._on_retry = on_retry
        self.wire_log = MessageLog()
        self.wire_links: dict[str, MessageLog] = {name: MessageLog() for name in edges}
        self.observed_link_bytes: Counter[str] = Counter()
        self.observed_round_bytes: dict[str, Counter[int]] = {
            name: Counter() for name in edges
        }
        #: Round opens happen once per direct connection (root children).
        self._notified_round: dict[str, int] = {
            child: 0 for child in tree.children[tree.root]
        }

    # Merges stay coordinator-side: TreeTopology assigns the protocol
    # runtime here, but a RemoteRuntime would ship merge closures to the
    # sites as unmetered tasks — swallow the assignment.
    @property
    def merge_runtime(self):
        return None

    @merge_runtime.setter
    def merge_runtime(self, value) -> None:
        pass

    # --------------------------------------------------------------- request
    def _request(self, site: str, link: SiteLink, message: Message) -> Message:
        return request_with_retry(
            site,
            link,
            message,
            deadline=self.deadline,
            retries=self.retries,
            backoff=self.backoff,
            on_retry=self._on_retry,
        )

    def _root_child_of(self, child: str) -> str:
        """The direct-connection endpoint fronting ``child``'s subtree."""
        node = child
        while self.tree.parent[node] != self.coordinator_name:
            node = self.tree.parent[node]
        return node

    def _open_round(self, top: str, round_index: int):
        """Stage a round open on a direct link before its first burst.

        Returns the staged ack future (or None); the caller's next request
        flushes both frames in one write, and FIFO guarantees the ack
        arrives first — verify it with :meth:`_confirm_round` afterwards.
        """
        if self._notified_round[top] == round_index:
            return None
        self._notified_round[top] = round_index
        return self._site_links[top].submit(
            Message("round", {"round": round_index}), flush=False
        )

    def _confirm_round(self, top: str, round_future) -> None:
        if round_future is None:
            return
        opened = round_future.result(self.deadline)
        if opened.type != "ack":
            raise ServiceError(
                f"site {top!r} answered a round open with {opened.type!r}"
            )

    def _observe(self, edge: str, round_index: int, nbytes: int) -> None:
        self.observed_link_bytes[edge] += nbytes
        self.observed_round_bytes[edge][round_index] += nbytes

    def _wire(
        self, edge: str, direction: str, label: str, body_bytes: int
    ) -> None:
        parent = self.tree.parent[edge]
        sender, receiver = (
            (edge, parent) if direction == UPSTREAM else (parent, edge)
        )
        self.wire_log.record(
            sender,
            receiver,
            None,
            label=label,
            bits=8 * body_bytes,
            direction_key=direction,
        )
        self.wire_links[edge].record(
            sender, receiver, None, label=label, bits=8 * body_bytes
        )

    # ------------------------------------------------------------- crossings
    def _record_hop(
        self, child: str, direction: str, payload: Any, label: str, bits: int
    ) -> None:
        super()._record_hop(child, direction, payload, label, bits)
        if direction == UPSTREAM:
            round_index = self.log.messages[-1].round_index
            self._cross_upstream(child, payload, label, round_index)

    def _cross_upstream(
        self, child: str, payload: Any, label: str, round_index: int
    ) -> None:
        """Make one upstream edge's payload physically travel its socket."""
        blob = encode_payload(payload)
        body_bytes = len(blob) - PAYLOAD_TAG_BYTES
        digest = payload_digest(blob)
        top = self._root_child_of(child)
        round_future = self._open_round(top, round_index)
        meta = {
            "label": label,
            "bits": 8 * body_bytes,
            "round": round_index,
            "digest": digest,
        }
        link = self._site_links[child]
        reply = self._request(child, link, Message("relay", meta, blob))
        self._confirm_round(top, round_future)
        if child == top:
            # Direct edge: the endpoint echoed the payload; its bytes were
            # counted off the coordinator's own socket read.
            if reply.type != "msg":
                raise ServiceError(
                    f"site {child!r} answered a relay with {reply.type!r}: "
                    f"{reply.meta}"
                )
            if payload_digest(reply.payload) != digest:
                raise CorruptFrameError(
                    f"upstream payload from {child!r} corrupted in transit "
                    f"(digest mismatch over {len(reply.payload)} echoed bytes)",
                    site=child,
                )
            decode_payload(reply.payload)
            for rnd, nbytes in link.take_observed_upstream():
                self._observe(child, rnd, nbytes)
        else:
            # Routed leaf edge: the leaf echoed to its aggregator, which
            # counted the bytes off ITS socket and reported them — the
            # payload never traveled past the aggregator.
            if reply.type != "ack":
                raise ServiceError(
                    f"aggregated relay for {child!r} answered with "
                    f"{reply.type!r}: {reply.meta}"
                )
            observed = int(reply.meta.get("observed", -1))
            if observed != body_bytes or reply.meta.get("digest") != digest:
                raise CorruptFrameError(
                    f"upstream payload from {child!r} corrupted on its leaf "
                    f"edge: sent {body_bytes} bytes ({digest[:12]}...), "
                    f"aggregator observed {observed} "
                    f"({str(reply.meta.get('digest'))[:12]}...)",
                    site=child,
                )
            self._observe(child, round_index, observed)
        self._wire(child, UPSTREAM, label, body_bytes)

    def _deliver_downstream(
        self, edge_children: Sequence[str], payload: Any, label: str, bits: int
    ) -> None:
        """One physical frame per root-child subtree, payload encoded once."""
        super()._deliver_downstream(edge_children, payload, label, bits)
        round_index = self.log.messages[-1].round_index
        blob = encode_payload(payload)
        body_bytes = len(blob) - PAYLOAD_TAG_BYTES
        digest = payload_digest(blob)
        groups: dict[str, list[str]] = {}
        order: list[str] = []
        for child in edge_children:
            top = self._root_child_of(child)
            if top not in groups:
                groups[top] = []
                order.append(top)
            if child != top:
                groups[top].append(child)
        for top in order:
            link = self._site_links[top]
            round_future = self._open_round(top, round_index)
            meta = {
                "label": label,
                "bits": 8 * body_bytes,
                "round": round_index,
                "digest": digest,
            }
            if groups[top]:
                meta["forward"] = groups[top]
            reply = self._request(top, link, Message("msg", meta, blob))
            self._confirm_round(top, round_future)
            if reply.type != "ack":
                raise ServiceError(
                    f"site {top!r} answered a downstream msg with "
                    f"{reply.type!r}: {reply.meta}"
                )
            observed = int(reply.meta.get("observed", -1))
            if observed != body_bytes or reply.meta.get("digest") != digest:
                raise CorruptFrameError(
                    f"downstream payload to {top!r} corrupted in transit: "
                    f"sent {body_bytes} bytes ({digest[:12]}...), observed "
                    f"{observed} ({str(reply.meta.get('digest'))[:12]}...)",
                    site=top,
                )
            self._observe(top, round_index, observed)
            self._wire(top, DOWNSTREAM, label, body_bytes)
            children_meta = reply.meta.get("children", {})
            for child in groups[top]:
                entry = children_meta.get(child)
                if (
                    entry is None
                    or int(entry.get("observed", -1)) != body_bytes
                    or entry.get("digest") != digest
                ):
                    raise CorruptFrameError(
                        f"downstream payload forwarded to {child!r} corrupted "
                        f"on its leaf edge (aggregator {top!r} reported "
                        f"{entry})",
                        site=child,
                    )
                self._observe(child, round_index, int(entry["observed"]))
                self._wire(child, DOWNSTREAM, label, body_bytes)

    # ------------------------------------------------------------ accounting
    def wire_link_bits(self) -> dict[str, int]:
        """Per-edge wire-metered bits (8 per encoded payload byte)."""
        self._drain()
        return {name: log.total_bits for name, log in self.wire_links.items()}

    @property
    def observed_total_bytes(self) -> int:
        self._drain()
        return sum(self.observed_link_bytes.values())

    def service_report(self) -> dict[str, Any]:
        """The observed-vs-metered summary (same shape as the star's)."""
        self._drain()
        return {
            "rounds": self.rounds,
            "simulated_bits": self.total_bits,
            "simulated_link_bits": self.link_bits(),
            "wire_bits": self.wire_log.total_bits,
            "wire_link_bits": self.wire_link_bits(),
            "wire_round_bits": self.wire_log.bits_per_round(),
            "observed_bytes": self.observed_total_bytes,
            "observed_link_bytes": dict(self.observed_link_bytes),
            "observed_round_bytes": {
                name: dict(rounds)
                for name, rounds in self.observed_round_bytes.items()
            },
            "tree": self.tree.describe(),
            "root_link_bits": self.root_link_bits(),
        }

    def reset(self) -> None:
        super().reset()
        self.wire_log.reset()
        for log in self.wire_links.values():
            log.reset()
        self.observed_link_bytes.clear()
        for rounds in self.observed_round_bytes.values():
            rounds.clear()
        self._notified_round = {
            child: 0 for child in self.tree.children[self.tree.root]
        }


class RemoteRuntime(Runtime):
    """Fans the engine's per-site tasks out to the site processes.

    The sends/merges of every protocol stay serial on the coordinator (the
    runtime contract), so the only difference from the ``processes``
    executor is *where* the fan-out tasks run: task arguments pickle out to
    a site agent over TCP and results pickle back, in task order, with the
    generator round-tripping of :meth:`~repro.engine.runtime.Runtime
    .map_sites` working unchanged.  Outputs are therefore bit-identical to
    every other executor (the pinned PR 5 contract).
    """

    def __init__(
        self,
        transport: "SocketTransport",
        *,
        dropout: str = "fail",
        quorum: "QuorumPolicy | tuple | int | None" = None,
    ) -> None:
        super().__init__("serial", dropout=dropout, quorum=quorum)
        self._transport = transport

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        if not tasks:
            return []
        return self._transport.run_tasks(fn, tasks)


class SocketTransport(Transport):
    """Builds :class:`RemoteNetwork` instances over a set of live links.

    ``links`` maps canonical site names (``site-0`` ... ``site-{k-1}``) to
    their connections.  One transport serves many protocol runs; each run
    builds a fresh network (fresh meters) over the same connections, and a
    dropout-excluded run simply passes the surviving subset of names.
    """

    def __init__(
        self,
        links: Mapping[str, SiteLink],
        *,
        deadline: float | None = None,
        retries: int = 0,
        backoff: float = 0.05,
        on_retry: Callable[[str], None] | None = None,
    ) -> None:
        self._links = dict(links)
        #: Hardening knobs forwarded to every network this transport builds
        #: (per-request reply deadline, transient-retry budget + backoff).
        self.deadline = deadline
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.on_retry = on_retry
        #: The most recently built network — the server reads its
        #: :meth:`RemoteNetwork.service_report` after each query (queries
        #: are serialized on one worker, so "last" is unambiguous).
        self.last_network: RemoteNetwork | RemoteTreeNetwork | None = None

    @property
    def links(self) -> dict[str, SiteLink]:
        return dict(self._links)

    def runtime(
        self,
        *,
        dropout: str = "fail",
        quorum: "QuorumPolicy | tuple | int | None" = None,
    ) -> RemoteRuntime:
        """A runtime fanning per-site tasks out over these links."""
        return RemoteRuntime(self, dropout=dropout, quorum=quorum)

    def build_network(
        self,
        site_names: Sequence[str],
        coordinator_name: str,
        conditions: NetworkConditions | None = None,
        *,
        tree: TreeSpec | None = None,
    ) -> RemoteNetwork | RemoteTreeNetwork:
        network: RemoteNetwork | RemoteTreeNetwork
        if tree is not None:
            self.check_tree(tree, site_names, coordinator_name)
            network = RemoteTreeNetwork(
                tree,
                conditions=conditions,
                links=self._links,
                deadline=self.deadline,
                retries=self.retries,
                backoff=self.backoff,
                on_retry=self.on_retry,
            )
        else:
            network = RemoteNetwork(
                site_names,
                coordinator_name,
                conditions=conditions,
                links=self._links,
                deadline=self.deadline,
                retries=self.retries,
                backoff=self.backoff,
                on_retry=self.on_retry,
            )
        self.last_network = network
        return network

    # ------------------------------------------------------------- fan-out
    def run_tasks(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        """Run ``fn(*task)`` for every task on the site agents, in order.

        Tasks are dealt round-robin across the live links and pipelined
        (all submitted before any reply is awaited); replies are collected
        in task order.
        """
        if not getattr(fn, "__module__", "").startswith("repro."):
            raise ServiceError(
                f"refusing to dispatch non-repro task function {fn!r} to a "
                f"site agent"
            )
        spec = f"{fn.__module__}:{fn.__qualname__}"
        ordered_links = [self._links[name] for name in sorted(self._links)]
        futures = [
            ordered_links[index % len(ordered_links)].submit(
                Message("task", {"fn": spec}, encode_payload(tuple(task)))
            )
            for index, task in enumerate(tasks)
        ]
        results = []
        for future in futures:
            reply = future.result()
            if reply.type == "error":
                raise ServiceError(
                    f"site task {spec} failed remotely: "
                    f"{reply.meta.get('error')}: {reply.meta.get('message')}"
                )
            if reply.type != "task_result":
                raise ServiceError(
                    f"site answered a task with {reply.type!r}: {reply.meta}"
                )
            results.append(decode_payload(reply.payload))
        return results
