"""The coordinator as an asyncio TCP server.

:class:`CoordinatorServer` owns the coordinator's matrix ``B`` and listens
for two kinds of connections, distinguished by their ``hello``:

* **sites** (``role: "site"``) upload their row-shard of ``A`` (wire codec,
  byte-exact) and then serve the protocol traffic: downstream pushes,
  upstream echoes, and fanned-out per-site tasks.  Once ``num_sites`` have
  registered the cluster is *ready* and a
  :class:`~repro.multiparty.estimator.ClusterEstimator` is built over the
  live links (:class:`~repro.service.transport.SocketTransport` +
  :class:`~repro.service.transport.RemoteRuntime`).
* **clients** (``role: "client"``) issue ``query`` messages — the estimator
  facade's methods plus the ``stream_*`` session surface — and get back
  ``answer`` messages carrying the pickled
  :class:`~repro.comm.protocol.ProtocolResult` (or epoch report / live
  value) together with the service metering report of
  :meth:`~repro.service.transport.RemoteNetwork.service_report`.

Concurrency model: one thread runs the asyncio loop and owns every socket;
queries execute on a single worker thread (serialized — the estimator's
seed stream is stateful by design), blocking on socket round-trips via
``run_coroutine_threadsafe`` bridges while the loop keeps pumping frames.
The per-connection discipline is strict FIFO request/reply, so a reply is
always matched to the oldest in-flight request of its connection.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import traceback
from collections import deque
from typing import Any, Sequence

import numpy as np

from repro.comm.conditions import NetworkConditions
from repro.comm.framing import FrameDecoder, FramingError, encode_frame, encode_frames
from repro.comm import wire
from repro.comm.tree import TreeSpec
from repro.engine.topology import normalize_tree
from repro.engine.runtime import QuorumPolicy
from repro.service.messages import (
    PAYLOAD_TAG_BYTES,
    CorruptFrameError,
    Message,
    ServiceError,
    SiteTimeoutError,
    SiteUnavailableError,
    decode_message,
    decode_payload,
    encode_message,
    encode_payload,
)
from repro.service.metrics import MetricsRegistry
from repro.service.tenancy import SessionManager, TenantQuota
from repro.service.transport import SiteLink, SocketTransport

__all__ = ["CoordinatorServer", "QUERY_METHODS", "STREAM_QUERY_METHODS", "TENANT_METHODS"]

#: Estimator facade methods a client may invoke remotely.
QUERY_METHODS = (
    "lp_norm",
    "join_size",
    "natural_join_size",
    "l0_sample",
    "l1_sample",
    "linf",
    "linf_kappa",
    "heavy_hitters",
)

#: One-shot query methods available on an open streaming session.
STREAM_QUERY_METHODS = QUERY_METHODS

#: Live (between-syncs) estimates available on an open streaming session.
STREAM_LIVE_METHODS = ("live_lp_norm", "live_l0", "live_l0_sample", "live_heavy_hitters")

#: Methods whose traffic meters on the streaming session's own network
#: (delta uploads), not on a per-query network built through the transport.
_SESSION_STATE_METHODS = frozenset(
    {"stream_open", "stream_ingest", "stream_end_epoch", "stream_sync",
     "stream_total_upload_bytes", "stream_drop_site", "stream_restore_site",
     "stream_collect_late", "stream_late_pending"}
    | {f"stream_{name}" for name in STREAM_LIVE_METHODS}
)

#: Multi-tenant service surface (the :class:`SessionManager` routes).
#: These run against server-local tenant sessions — they need no site
#: registrations, so they bypass the cluster-ready gate and report no
#: per-query transport metering (each tenant meters on its own network).
TENANT_METHODS = (
    "tenant_open",
    "tenant_ingest",
    "tenant_end_epoch",
    "tenant_run_epoch",
    "tenant_query",
    "tenant_report",
    "tenant_close",
    "tenants",
    "aggregate_report",
    "metrics",
)
_TENANT_METHODS = frozenset(TENANT_METHODS)


class _AsyncSiteLink(SiteLink):
    """Server side of one site connection (implements the transport seam)."""

    def __init__(
        self,
        site_name: str,
        index: int,
        loop: asyncio.AbstractEventLoop,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.site_name = site_name
        self.index = index
        self._loop = loop
        self._writer = writer
        #: Futures of in-flight requests, oldest first (strict FIFO replies).
        self.pending: deque[concurrent.futures.Future] = deque()
        self._observed_upstream: deque[tuple[int, int]] = deque()
        #: Frames staged by ``submit(..., flush=False)`` awaiting the next
        #: flushing submit (only ever touched by the single query worker).
        self._staged: list[tuple[Message, concurrent.futures.Future]] = []
        #: Replies still owed to requests a *failed* query abandoned; they
        #: are dropped on arrival (see :meth:`abandon_pending`).
        self._discard = 0
        self._dead: Exception | None = None

    # ------------------------------------------------------- transport seam
    def submit(
        self, message: Message, *, flush: bool = True
    ) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        if self._dead is not None:
            # Fail fast off-loop: a write to a dead site's closed writer
            # could otherwise block in drain() forever, and the single
            # serialized query worker would wedge for every client.
            exc = SiteUnavailableError(
                f"site {self.site_name!r} is disconnected: {self._dead}",
                site=self.site_name,
            )
            for _, staged_future in self._staged:
                if not staged_future.done():
                    staged_future.set_exception(exc)
            self._staged.clear()
            future.set_exception(exc)
            return future
        if not flush:
            self._staged.append((message, future))
            return future
        batch = self._staged + [(message, future)]
        self._staged = []
        asyncio.run_coroutine_threadsafe(
            self._write_batch(batch), self._loop
        ).add_done_callback(_propagate_batch_failure(batch))
        return future

    def request(self, message: Message, timeout: float | None = None) -> Message:
        return self.submit(message).result(timeout)

    def take_observed_upstream(self) -> list[tuple[int, int]]:
        drained = []
        while True:
            try:
                drained.append(self._observed_upstream.popleft())
            except IndexError:
                return drained

    # ----------------------------------------------------------- loop side
    async def _write_batch(
        self, batch: list[tuple[Message, concurrent.futures.Future]]
    ) -> None:
        """Write a staged batch as one coalesced ``sendall`` (loop side).

        All frames enter :attr:`pending` before the write, in submit order,
        so the FIFO reply pairing is independent of how the bytes chunk on
        the wire.
        """
        if self._dead is not None or self._writer.is_closing():
            raise ServiceError(f"site {self.site_name!r} is disconnected")
        for _, future in batch:
            self.pending.append(future)
        self._writer.write(
            encode_frames([encode_message(message) for message, _ in batch])
        )
        await self._writer.drain()

    def on_reply(self, message: Message) -> None:
        """Route one incoming frame to the oldest in-flight request."""
        if self._discard:
            # A reply owed to a request some failed query abandoned: drop
            # it whole.  Recording its observed bytes would bleed into the
            # *next* query's meters and break observed == wire.
            self._discard -= 1
            return
        if message.type == "msg":
            # An upstream echo: count its codec-body bytes off the socket,
            # attributed to the round carried in the (relayed) meta —
            # *before* resolving the future, so the caller sees the record.
            self._observed_upstream.append(
                (int(message.meta.get("round", 0)), len(message.payload) - PAYLOAD_TAG_BYTES)
            )
        if not self.pending:
            raise ServiceError(
                f"site {self.site_name!r} sent an unsolicited {message.type!r}"
            )
        self.pending.popleft().set_result(message)

    def fail_pending(self, exc: Exception) -> None:
        while self.pending:
            future = self.pending.popleft()
            if not future.done():
                future.set_exception(exc)

    def mark_dead(self, exc: Exception) -> None:
        """Declare the connection gone: later submits fail fast, forever."""
        self._dead = exc
        self.fail_pending(exc)

    def abandon_pending(self, exc: Exception) -> None:
        """Write off every in-flight request after its query failed.

        The site will still answer them (FIFO discipline), so the owed
        replies are counted and dropped on arrival instead of being
        mis-routed to the next query's requests; any observed-byte records
        the dead query left undrained are discarded with it.  Runs on the
        loop thread — the same thread as :meth:`on_reply` — so the counts
        cannot race.
        """
        self._discard += len(self.pending)
        self.fail_pending(exc)
        self._observed_upstream.clear()


def _propagate_batch_failure(batch):
    """If the loop-side write coroutine itself dies, fail the reply futures."""

    def _done(write_result: concurrent.futures.Future) -> None:
        exc = write_result.exception()
        if exc is not None:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)

    return _done


class _RoutedSiteLink(SiteLink):
    """A leaf fronted by an aggregator: requests route via the agg's link.

    The coordinator has no socket to such a leaf — every frame for it gains
    a ``"to"`` meta entry and travels the aggregator's connection; the
    aggregator forwards it down its own socket and answers on the leaf's
    behalf (aggregated acks carrying the leaf's observed bytes/digest).
    Upstream payloads from the leaf are counted off the *aggregator's*
    socket and reported in the ack, so :meth:`take_observed_upstream` is
    always empty here.
    """

    def __init__(self, site_name: str, via: _AsyncSiteLink) -> None:
        self.site_name = site_name
        self.via = via
        self._dead: Exception | None = None

    def submit(
        self, message: Message, *, flush: bool = True
    ) -> concurrent.futures.Future:
        if self._dead is not None:
            future: concurrent.futures.Future = concurrent.futures.Future()
            future.set_exception(
                SiteUnavailableError(
                    f"site {self.site_name!r} is unreachable: {self._dead}",
                    site=self.site_name,
                )
            )
            return future
        routed = Message(
            message.type, dict(message.meta, to=self.site_name), message.payload
        )
        return self.via.submit(routed, flush=flush)

    def request(self, message: Message, timeout: float | None = None) -> Message:
        return self.submit(message).result(timeout)

    def take_observed_upstream(self) -> list[tuple[int, int]]:
        return []

    def mark_dead(self, exc: Exception) -> None:
        self._dead = exc

    def fail_pending(self, exc: Exception) -> None:  # via-link owns pending
        pass

    def abandon_pending(self, exc: Exception) -> None:
        pass


class _MessageStream:
    """Async message reader over one connection's frame stream.

    One socket read can complete several frames (replies coalesce when
    requests were pipelined), so completed bodies queue here and drain one
    message per :meth:`next` call.
    """

    def __init__(self, reader: asyncio.StreamReader, initial: bytes = b"") -> None:
        self._reader = reader
        self._decoder = FrameDecoder()
        self._bodies: deque[bytes] = deque()
        if initial:
            # Bytes the connection dispatcher already read while sniffing
            # for an HTTP scrape; they are the head of the frame stream.
            self._bodies.extend(self._decoder.feed(initial))

    async def next(self) -> Message | None:
        while not self._bodies:
            chunk = await self._reader.read(65536)
            self._bodies.extend(self._decoder.feed(chunk))
            if not chunk:
                if self._bodies:
                    break
                self._decoder.close()  # truncated tail raises FramingError
                return None
        return decode_message(self._bodies.popleft())


class CoordinatorServer:
    """Serve a k-site cluster estimate over real TCP sockets.

    Parameters
    ----------
    b:
        The coordinator's matrix.
    num_sites:
        Number of site agents expected to register before the cluster is
        ready to answer queries.
    expected_row_counts:
        Optional per-site row counts; a registering shard with a different
        row count is rejected (the service equivalent of a mis-sharded
        cluster).
    seed, conditions:
        Forwarded to the served estimator, exactly as for an in-process
        :class:`~repro.multiparty.estimator.ClusterEstimator` — equal seeds
        give bit-identical estimates and simulated meters.
    host, port:
        Listen address; port 0 picks a free port (see :attr:`address`).
    deadline:
        The coordinator's one patience knob, in real seconds (default 10):
        per-site reply deadline on every protocol request *and* the bound
        on the orderly :meth:`stop` handshake.  A site that misses it mid-
        query raises :class:`~repro.service.messages.SiteTimeoutError`,
        which the server turns into a *degraded* answer over the surviving
        sub-cluster instead of an error.
    retries, backoff:
        Transient-refusal budget: a site replying ``retry`` is re-asked up
        to ``retries`` times with exponential backoff starting at
        ``backoff`` seconds (metered as ``repro_link_retries_total``).
    quorum:
        Optional :class:`~repro.engine.runtime.QuorumPolicy` (or ``(n, f)``
        tuple / bare ``f``) threaded into the served runtime: one-shot
        queries under latency conditions answer from the fastest ``n - f``
        responders, with stragglers excluded and renormalized.
    """

    def __init__(
        self,
        b: np.ndarray,
        *,
        num_sites: int,
        expected_row_counts: Sequence[int] | None = None,
        seed: int | None = None,
        conditions: NetworkConditions | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        runtime=None,
        prices=None,
        default_quota=None,
        deadline: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
        quorum=None,
        tree=None,
    ) -> None:
        if num_sites < 0:
            raise ValueError(f"num_sites must be >= 0, got {num_sites}")
        self.b = np.asarray(b)
        self.num_sites = int(num_sites)
        self.expected_row_counts = (
            None if expected_row_counts is None else [int(n) for n in expected_row_counts]
        )
        if (
            self.expected_row_counts is not None
            and len(self.expected_row_counts) != self.num_sites
        ):
            raise ValueError(
                f"{len(self.expected_row_counts)} row counts for {num_sites} sites"
            )
        self.seed = seed
        self.conditions = conditions
        self.host = host
        self.port = int(port)
        if deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.deadline = float(deadline)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.quorum = QuorumPolicy.coerce(quorum)
        #: Optional aggregation-tree overlay (TreeSpec or int fan-out) over
        #: the canonical site names.  Depth <= 2 (aggregators as root
        #: children): each aggregator is one *aggregator agent* process
        #: fronting its leaves over its own sockets; leaves behind it
        #: register through it, not directly.
        self.tree: TreeSpec | None = normalize_tree(
            tree, [f"site-{i}" for i in range(self.num_sites)]
        )
        if self.tree is not None and (
            self.tree.depth > 2
            or any(self.tree.node_depth(a) > 1 for a in self.tree.aggregators)
        ):
            raise ValueError(
                "the socket service supports aggregation trees of depth <= 2 "
                f"(aggregators as root children); got depth {self.tree.depth}"
            )

        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._started = threading.Event()
        self._ready = threading.Event()
        self._ready_async: asyncio.Event | None = None
        self._stopping = False
        self._startup_error: BaseException | None = None

        self._links: dict[str, _AsyncSiteLink] = {}
        self._shards: dict[int, np.ndarray] = {}
        self._estimator = None
        self._session = None
        self._transport: SocketTransport | None = None
        #: Sites whose frames failed a digest check: their links are dead
        #: and every later query excludes them (degraded answers).
        self.quarantined: set[str] = set()
        #: Degraded estimators per failed-site set, so repeat degraded
        #: queries keep one stateful seed stream instead of restarting it.
        self._degraded_cache: dict[frozenset, tuple] = {}
        #: Scrape registry shared with the tenant manager (GET /metrics).
        self.metrics = MetricsRegistry()
        self._metric_shortfalls = self.metrics.counter(
            "repro_quorum_shortfall_total",
            "Queries answered degraded (site timeout/loss) or epochs closed below quorum",
        )
        self._metric_late_merges = self.metrics.counter(
            "repro_late_merges_total",
            "Straggler deltas folded into live coordinator state after their deadline",
        )
        self._metric_quarantined = self.metrics.gauge(
            "repro_quarantined_sites",
            "Sites currently quarantined after a corrupt-frame digest mismatch",
        )
        self._metric_retries = self.metrics.counter(
            "repro_link_retries_total",
            "Protocol requests re-sent after a site's transient retry refusal",
            labels=("site",),
        )
        self._tenancy_runtime = runtime
        self._prices = prices
        self._default_quota = default_quota
        self._manager: SessionManager | None = None
        # A tenant-only service (num_sites=0) never waits for registrations.
        if self.num_sites == 0:
            self._ready.set()
        # One worker: queries are serialized on purpose (the estimator's
        # per-query seed stream is stateful, like the in-process facade).
        self._queries = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-query"
        )

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "CoordinatorServer":
        """Bind the listening socket and start the loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolved once :meth:`start` returns)."""
        return (self.host, self.port)

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until all ``num_sites`` site agents have registered."""
        return self._ready.wait(timeout)

    def stop(self) -> None:
        """Say ``bye`` to every site, close all sockets, join the thread."""
        if self._thread is None:
            return
        if not self._stopping and self._loop is not None and self._loop.is_running():
            self._stopping = True
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown(), self._loop
                ).result(timeout=self.deadline)
            except (concurrent.futures.TimeoutError, RuntimeError):
                self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None
        self._queries.shutdown(wait=False)
        if self._manager is not None:
            # The query worker is drained (loop gone, executor shut), so
            # closing the tenant sessions here cannot race a route.
            self._manager.close()
            self._manager = None

    def __enter__(self) -> "CoordinatorServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._ready_async = asyncio.Event()
        if self.num_sites == 0:
            self._ready_async.set()
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle_connection, self.host, self.port)
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:  # bind failures surface in start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self._links.values()):
            if not isinstance(link, _AsyncSiteLink):
                continue  # routed leaves share their aggregator's socket
            try:
                link._writer.write(encode_frame(encode_message(Message("bye"))))
                await link._writer.drain()
                link._writer.close()
            except (ConnectionError, RuntimeError):
                pass
            link.fail_pending(ServiceError("coordinator shut down"))
        # Wind the connection handlers down before stopping the loop, so no
        # task is destroyed while pending.
        current = asyncio.current_task()
        handlers = [task for task in asyncio.all_tasks() if task is not current]
        for task in handlers:
            task.cancel()
        await asyncio.gather(*handlers, return_exceptions=True)
        loop = asyncio.get_running_loop()
        loop.call_soon(loop.stop)

    # ---------------------------------------------------------- connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Sniff before framing: a Prometheus scraper speaks HTTP, not the
        # frame protocol.  The frame magic is b"RP", so the first bytes
        # decide unambiguously; whatever was read while sniffing primes the
        # message stream.
        head = b""
        while len(head) < 4 and b"GET ".startswith(head):
            chunk = await reader.read(65536)
            if not chunk:
                break
            head += chunk
        if head[:4] == b"GET ":
            await self._serve_http(head, reader, writer)
            writer.close()
            return
        stream = _MessageStream(reader, initial=head)
        try:
            hello = await stream.next()
            if hello is None:
                return
            if hello.type != "hello":
                raise ServiceError(f"expected hello, got {hello.type!r}")
            role = hello.meta.get("role")
            if role == "site":
                await self._serve_site(hello, stream, writer)
            elif role == "aggregator":
                await self._serve_aggregator(hello, stream, writer)
            elif role == "client":
                await self._serve_client(stream, writer)
            else:
                raise ServiceError(f"unknown hello role {role!r}")
        except (ServiceError, FramingError, wire.WireFormatError, ValueError) as exc:
            await self._send_error(writer, exc)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown winds handlers down; returning (rather than
            # re-raising) keeps the streams machinery from logging the
            # cancellation as a connection error.
            pass
        finally:
            writer.close()

    async def _serve_http(
        self,
        head: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Answer one plain-HTTP request: the Prometheus scrape endpoint.

        Only ``GET /metrics`` (and ``GET /``) are served — the body is the
        shared registry in text exposition format 0.0.4, so a stock
        Prometheus server can scrape the coordinator's listen port
        directly.  Anything else is a 404.  One request per connection
        (HTTP/1.0 semantics, ``Connection: close``).
        """
        while b"\r\n" not in head and b"\n" not in head:
            chunk = await reader.read(65536)
            if not chunk:
                break
            head += chunk
        request_line = head.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
        parts = request_line.decode("latin-1", "replace").split()
        path = parts[1] if len(parts) >= 2 else "/"
        if path.split("?", 1)[0] in ("/metrics", "/"):
            status, body = "200 OK", self.metrics.render().encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            status, body = "404 Not Found", b"not found\n"
            content_type = "text/plain; charset=utf-8"
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        try:
            await writer.drain()
        except ConnectionError:
            pass

    async def _send_error(self, writer: asyncio.StreamWriter, exc: Exception) -> None:
        try:
            writer.write(
                encode_frame(
                    encode_message(
                        Message(
                            "error",
                            {
                                "error": type(exc).__name__,
                                "message": str(exc),
                                "traceback": traceback.format_exc(),
                            },
                        )
                    )
                )
            )
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    # ----------------------------------------------------------------- sites
    def _check_shard(self, name: str, index: int, shard) -> np.ndarray:
        shard = np.asarray(shard)
        if shard.ndim != 2 or shard.shape[1] != self.b.shape[0]:
            raise ServiceError(
                f"shard of shape {shard.shape} does not match B {self.b.shape}"
            )
        if (
            self.expected_row_counts is not None
            and shard.shape[0] != self.expected_row_counts[index]
        ):
            raise ServiceError(
                f"site {name!r} uploaded {shard.shape[0]} rows, expected "
                f"{self.expected_row_counts[index]}"
            )
        return shard

    def _expected_links(self) -> int:
        """Connections + routes needed before the cluster is ready."""
        if self.tree is None:
            return self.num_sites
        return self.num_sites + len(self.tree.aggregators)

    def _maybe_ready(self) -> None:
        if (
            len(self._links) == self._expected_links()
            and len(self._shards) == self.num_sites
        ):
            self._build_estimator()
            self._ready.set()
            self._ready_async.set()

    async def _serve_site(self, hello, stream, writer) -> None:
        index = int(hello.meta.get("index", -1))
        if not 0 <= index < self.num_sites:
            raise ServiceError(
                f"site index {index} out of range for a {self.num_sites}-site cluster"
            )
        name = f"site-{index}"
        if name in self._links:
            raise ServiceError(f"site {name!r} is already registered")
        if self.tree is not None and self.tree.parent[name] != self.tree.root:
            raise ServiceError(
                f"site {name!r} is behind aggregator "
                f"{self.tree.parent[name]!r} in this cluster's tree; it must "
                f"register through its aggregator agent, not directly"
            )
        shard = self._check_shard(name, index, decode_payload(hello.payload))
        link = _AsyncSiteLink(name, index, asyncio.get_running_loop(), writer)
        self._links[name] = link
        self._shards[index] = shard
        writer.write(
            encode_frame(
                encode_message(
                    Message(
                        "assign",
                        {
                            "name": name,
                            "index": index,
                            "k": self.num_sites,
                            "registered": len(self._links),
                        },
                    )
                )
            )
        )
        await writer.drain()
        self._maybe_ready()
        try:
            while True:
                message = await stream.next()
                if message is None or message.type == "bye":
                    break
                link.on_reply(message)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            link.fail_pending(
                SiteUnavailableError(f"site {name!r} connection lost: {exc}", site=name)
            )
        finally:
            # Mark, don't just fail: the live transport holds its own
            # reference to this link, so a query already in flight (or the
            # next one) must see its submits fail fast instead of writing
            # into a closed socket and wedging the query worker.
            link.mark_dead(
                SiteUnavailableError(f"site {name!r} disconnected", site=name)
            )
            self._links.pop(name, None)

    async def _serve_aggregator(self, hello, stream, writer) -> None:
        """Register one aggregator agent and the leaf sites it fronts.

        The agent's hello carries its tree name and the *global* indices of
        its children (order matters: it must match the tree's child order),
        with the children's shards — collected over the agent's own sockets
        — as the payload.  One connection then serves the whole subtree:
        the aggregator's own edge plus a routed link per leaf.
        """
        if self.tree is None:
            raise ServiceError(
                "this coordinator serves a flat star; aggregator agents "
                "need a tree= cluster"
            )
        name = str(hello.meta.get("name", ""))
        if name not in self.tree.children or name == self.tree.root:
            raise ServiceError(f"unknown aggregator {name!r} for this cluster's tree")
        if self.tree.parent[name] != self.tree.root:
            raise ServiceError(
                f"aggregator {name!r} is not a root child (depth-2 trees only)"
            )
        if name in self._links:
            raise ServiceError(f"aggregator {name!r} is already registered")
        indices = [int(i) for i in hello.meta.get("indices", [])]
        expected = list(self.tree.children[name])
        if [f"site-{i}" for i in indices] != expected:
            raise ServiceError(
                f"aggregator {name!r} fronts sites {expected}, but registered "
                f"indices {indices}"
            )
        shards = decode_payload(hello.payload)
        if not isinstance(shards, (list, tuple)) or len(shards) != len(indices):
            raise ServiceError(
                f"aggregator {name!r} must upload one shard per child "
                f"({len(indices)} expected)"
            )
        checked = {
            index: self._check_shard(f"site-{index}", index, shard)
            for index, shard in zip(indices, shards)
        }
        link = _AsyncSiteLink(name, -1, asyncio.get_running_loop(), writer)
        routed = {child: _RoutedSiteLink(child, link) for child in expected}
        self._links[name] = link
        self._links.update(routed)
        self._shards.update(checked)
        writer.write(
            encode_frame(
                encode_message(
                    Message(
                        "assign",
                        {
                            "name": name,
                            "children": expected,
                            "k": self.num_sites,
                            "registered": len(self._shards),
                        },
                    )
                )
            )
        )
        await writer.drain()
        self._maybe_ready()
        try:
            while True:
                message = await stream.next()
                if message is None or message.type == "bye":
                    break
                link.on_reply(message)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            link.fail_pending(
                SiteUnavailableError(
                    f"aggregator {name!r} connection lost: {exc}", site=name
                )
            )
        finally:
            lost = SiteUnavailableError(
                f"aggregator {name!r} disconnected", site=name
            )
            link.mark_dead(lost)
            for child_link in routed.values():
                child_link.mark_dead(lost)
            self._links.pop(name, None)
            for child in expected:
                self._links.pop(child, None)

    def _build_estimator(self) -> None:
        from repro.multiparty.estimator import ClusterEstimator

        self._transport = self._make_transport(self._links)
        shards = [self._shards[i] for i in range(self.num_sites)]
        self._estimator = ClusterEstimator(
            shards,
            self.b,
            seed=self.seed,
            runtime=self._transport.runtime(quorum=self.quorum),
            conditions=self.conditions,
            transport=self._transport,
            tree=self.tree,
        )

    def _make_transport(self, links) -> SocketTransport:
        """A transport over ``links`` with this server's hardening knobs."""
        return SocketTransport(
            links,
            deadline=self.deadline,
            retries=self.retries,
            backoff=self.backoff,
            on_retry=lambda site: self._metric_retries.inc(site=site),
        )

    # ----------------------------------------------------------- degradation
    def _abandon_links(self, exc: Exception) -> None:
        """Write off every in-flight request, synchronously, loop-side.

        The degradation path re-runs a query over the same sockets; any
        replies the failed attempt is still owed must be counted off and
        dropped *before* new requests go out, or they would be mis-routed
        (FIFO) into the rerun.
        """
        done = threading.Event()

        def _run() -> None:
            for link in self._links.values():
                link.abandon_pending(exc)
            done.set()

        self._loop.call_soon_threadsafe(_run)
        done.wait(timeout=self.deadline)

    def _quarantine(self, site: str) -> None:
        """Declare a site Byzantine: kill its link, exclude it from now on."""
        if site in self.quarantined:
            return
        self.quarantined.add(site)
        self._metric_quarantined.set(len(self.quarantined))
        link = self._links.get(site)
        if link is not None:
            self._loop.call_soon_threadsafe(
                link.mark_dead,
                CorruptFrameError(f"site {site!r} is quarantined", site=site),
            )

    def _degrade(self, method: str, kwargs: dict, failed: set, reason: str):
        """Answer ``method`` without the failed sites.

        One-shot estimator queries re-run over the surviving sub-cluster
        (all shards live server-side, so the degraded estimator excludes
        and renormalizes exactly like an in-process ``dropout="exclude"``
        run).  Streaming-session methods cannot be blindly re-run (the
        failed boundary may have partially shipped), so the failed sites
        are dropped from the session and the error re-raised carrying the
        structured degradation report — the next boundary proceeds without
        them, and a later restore + sync late-merges their backlog.

        Returns ``(value, degradation report, network for metering)``.
        """
        failed = set(failed) | self.quarantined
        if self.tree is not None:
            # A failure named after an aggregator (or a leaf whose fronting
            # aggregator link is gone) takes its whole subtree down: expand
            # so the degraded sub-cluster is actually reachable.
            for name in sorted(failed):
                if name in self.tree.children:
                    failed.discard(name)
                    failed.update(self.tree.subtree_sites(name))
                elif name in self.tree.parent:
                    for agg in self.tree.ancestors(name):
                        if agg not in self._links:
                            failed.update(self.tree.subtree_sites(agg))
        report = {
            "reason": reason,
            "failed_sites": sorted(failed),
            "policy": "exclude",
            "surviving_sites": self.num_sites - len(failed),
        }
        self._metric_shortfalls.inc()
        self._abandon_links(ServiceError(f"query degraded: {reason}"))
        if method.startswith("stream_") and self._session is not None:
            for name in sorted(failed):
                index = int(name.rsplit("-", 1)[-1])
                if 0 <= index < self._session.num_sites:
                    self._session.drop_site(index)
            exc = ServiceError(
                f"site failure during {method!r} ({reason}): dropped "
                f"{sorted(failed)} from the streaming session; restore and "
                f"sync to late-merge their backlog"
            )
            exc.degradation = report
            raise exc
        if method not in QUERY_METHODS or self._estimator is None:
            exc = ServiceError(
                f"cannot degrade method {method!r} after {reason} of "
                f"{sorted(failed)}"
            )
            exc.degradation = report
            raise exc
        if len(failed) >= self.num_sites:
            exc = ServiceError(f"no surviving sites after {reason} of {sorted(failed)}")
            exc.degradation = report
            raise exc
        estimator, transport = self._degraded_estimator(frozenset(failed))
        value = getattr(estimator, method)(**kwargs)
        return value, report, transport.last_network

    def _degraded_estimator(self, failed: frozenset):
        """The (cached) estimator over the sub-cluster excluding ``failed``.

        Caching per failed-site set keeps the degraded seed stream stateful
        across queries, mirroring the primary estimator's discipline.  Note
        the degraded stream starts fresh — degraded answers are *explicitly
        marked* (the ``degraded`` meta), not bit-continuations of the
        primary stream.
        """
        cached = self._degraded_cache.get(failed)
        if cached is not None:
            return cached
        from repro.multiparty.estimator import ClusterEstimator

        surviving = {
            name: link for name, link in self._links.items() if name not in failed
        }
        transport = self._make_transport(surviving)
        base = self.conditions if self.conditions is not None else NetworkConditions()
        quorum = self.quorum
        if quorum is not None:
            # The sub-cluster is smaller than the policy's n, so a pinned n
            # would fail validation; re-anchor the quorum to the surviving
            # count (n defaults to the actual site count at run time) and
            # keep f within it.
            k = self.num_sites - len(failed)
            quorum = QuorumPolicy(
                f=min(quorum.f, max(k - 1, 0)), deadline=quorum.deadline
            )
        estimator = ClusterEstimator(
            [self._shards[i] for i in range(self.num_sites)],
            self.b,
            seed=self.seed,
            runtime=transport.runtime(dropout="exclude", quorum=quorum),
            conditions=base.excluding(failed),
            transport=transport,
            tree=self.tree,
        )
        self._degraded_cache[failed] = (estimator, transport)
        return estimator, transport

    # --------------------------------------------------------------- clients
    async def _serve_client(self, stream, writer) -> None:
        writer.write(
            encode_frame(
                encode_message(
                    Message(
                        "assign",
                        {
                            "role": "client",
                            "k": self.num_sites,
                            "ready": self._ready.is_set(),
                            "b_shape": list(self.b.shape),
                        },
                    )
                )
            )
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        while True:
            message = await stream.next()
            if message is None or message.type == "bye":
                if message is not None and message.meta.get("shutdown"):
                    # An orderly remote shutdown: acknowledge, then stop.
                    writer.write(encode_frame(encode_message(Message("ack"))))
                    await writer.drain()
                    self._stopping = True
                    await self._shutdown()
                return
            if message.type != "query":
                raise ServiceError(f"expected query, got {message.type!r}")
            if message.meta.get("method") not in _TENANT_METHODS:
                await self._ready_async.wait()  # block until k sites joined
            try:
                reply = await loop.run_in_executor(
                    self._queries, self._answer, message
                )
            except Exception as exc:  # noqa: BLE001 - reported to the client
                # The failed query may have left requests in flight on the
                # site links; the sites will still answer them (FIFO), so
                # write them off *now, on the loop thread* — their replies
                # are dropped on arrival, their futures failed, and their
                # stale observed-byte records discarded.  Without this the
                # next query inherits mis-routed replies and bled meters,
                # and a future nobody resolves can wedge the query worker.
                abandon = ServiceError(f"query failed: {exc}")
                for link in self._links.values():
                    link.abandon_pending(abandon)
                error_meta = {
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                }
                degradation = getattr(exc, "degradation", None)
                if degradation is not None:
                    # A structured degradation report (which sites failed,
                    # what policy applies) rides along so clients can react
                    # programmatically instead of parsing the message.
                    error_meta["degradation"] = degradation
                reply = Message("error", error_meta)
            writer.write(encode_frame(encode_message(reply)))
            await writer.drain()

    # ------------------------------------------------------- query execution
    def _answer(self, message: Message) -> Message:
        """Run one client query on the worker thread; build its answer."""
        method = message.meta.get("method")
        kwargs = decode_payload(message.payload) if message.payload else {}
        if not isinstance(kwargs, dict):
            raise ServiceError(f"query kwargs must be a dict, got {type(kwargs)}")
        degraded = None
        degraded_network = None
        if method in QUERY_METHODS and self.quarantined and self._estimator is not None:
            # Known-bad sites never get another query; go straight to the
            # degraded sub-cluster instead of re-tripping the digest check.
            value, degraded, degraded_network = self._degrade(
                method, kwargs, set(), reason="quarantine"
            )
        else:
            try:
                value = self._dispatch(method, kwargs)
            except CorruptFrameError as exc:
                if exc.site is not None:
                    self._quarantine(exc.site)
                value, degraded, degraded_network = self._degrade(
                    method, kwargs, {exc.site} if exc.site else set(),
                    reason="corrupt-frame",
                )
            except SiteUnavailableError as exc:
                reason = (
                    "timeout" if isinstance(exc, SiteTimeoutError) else "disconnect"
                )
                value, degraded, degraded_network = self._degrade(
                    method, kwargs, {exc.site} if exc.site else set(), reason=reason
                )
        self._observe_epoch_value(value)
        # Session-state methods (ingest, epoch boundaries, live estimates)
        # meter on the session's long-lived network; tenant methods meter
        # on each tenant's own network (surfaced via reports/metrics, not
        # per-answer); everything else built a fresh per-query network
        # through the transport.
        if degraded_network is not None:
            network = degraded_network
        elif method in _TENANT_METHODS:
            network = None
        elif method in _SESSION_STATE_METHODS and self._session is not None:
            network = self._session.network
        else:
            network = (
                self._transport.last_network if self._transport is not None else None
            )
        report = network.service_report() if network is not None else None
        meta = {"method": method}
        if degraded is not None:
            meta["degraded"] = degraded
        return Message(
            "answer",
            meta,
            encode_payload({"result": value, "service": report}),
        )

    def _observe_epoch_value(self, value) -> None:
        """Feed robustness metrics off a boundary's epoch report."""
        late_merged = getattr(value, "late_merged", None)
        if late_merged:
            self._metric_late_merges.inc(len(late_merged))
        if getattr(value, "quorum_met", True) is False:
            self._metric_shortfalls.inc()

    def _ensure_manager(self) -> SessionManager:
        """The tenant manager, built on first use (query-worker thread only).

        All tenant routes execute on the single serialized query worker, so
        lazy construction and every later mutation are naturally
        single-threaded; the metrics registry itself is thread-safe for the
        HTTP scrape running concurrently on the loop thread.
        """
        if self._manager is None:
            self._manager = SessionManager(
                self.b,
                runtime=self._tenancy_runtime,
                seed=self.seed if self.seed is not None else 0,
                metrics=self.metrics,
                prices=self._prices,
                default_quota=self._default_quota,
            )
        return self._manager

    def _dispatch_tenant(self, method: str, kwargs: dict) -> Any:
        manager = self._ensure_manager()
        if method == "tenant_open":
            quota = kwargs.pop("quota", None)
            if isinstance(quota, dict):
                quota = TenantQuota(**quota)
            name = kwargs.pop("name")
            row_counts = kwargs.pop("row_counts")
            session = manager.open_tenant(name, row_counts, quota=quota, **kwargs)
            return {"tenant": name, "sites": session.num_sites, "epoch": session.epoch}
        if method == "tenant_ingest":
            manager.ingest(
                kwargs["name"], int(kwargs["site"]), kwargs["rows"], kwargs["deltas"]
            )
            return {"tenant": kwargs["name"]}
        if method == "tenant_end_epoch":
            return manager.end_epoch(
                kwargs["name"], force=bool(kwargs.get("force", False))
            )
        if method == "tenant_run_epoch":
            return manager.run_epoch(force=bool(kwargs.get("force", False)))
        if method == "tenant_query":
            # ``query`` is the estimator method name; it travels as ``query``
            # (not ``method``) because ``ServiceClient.query(method, ...)``
            # already claims that keyword.
            return manager.query(
                kwargs.pop("name"), kwargs.pop("query"), **kwargs
            )
        if method == "tenant_report":
            return manager.report(kwargs["name"]).to_dict()
        if method == "tenant_close":
            return manager.close_tenant(kwargs["name"]).to_dict()
        if method == "tenants":
            return manager.tenants
        if method == "aggregate_report":
            return manager.aggregate_report()
        if method == "metrics":
            return self.metrics.render()
        raise ServiceError(f"unknown tenant method {method!r}")

    def _dispatch(self, method: str, kwargs: dict) -> Any:
        if method in _TENANT_METHODS:
            return self._dispatch_tenant(method, kwargs)
        if self._estimator is None:
            raise ServiceError(
                f"method {method!r} needs a registered site cluster "
                f"(this coordinator serves {self.num_sites} sites)"
            )
        if method in QUERY_METHODS:
            return getattr(self._estimator, method)(**kwargs)
        if method == "info":
            return {
                "k": self.num_sites,
                "b_shape": list(self.b.shape),
                "seed": self.seed,
                "is_binary": self._estimator.is_binary,
                "row_counts": [
                    int(self._shards[i].shape[0]) for i in range(self.num_sites)
                ],
            }
        if method == "stream_open":
            self._session = self._estimator.stream(**kwargs)
            return {"epoch": self._session.epoch, "sites": self._session.num_sites}
        session = self._session
        if session is None and method.startswith("stream_"):
            raise ServiceError("no streaming session is open (send stream_open first)")
        if method == "stream_ingest":
            site = int(kwargs["site"])
            session.ingest(site, kwargs["rows"], kwargs["deltas"])
            return {"epoch": session.epoch}
        if method == "stream_end_epoch":
            return session.end_epoch(**kwargs)
        if method == "stream_sync":
            return session.sync()
        if method == "stream_total_upload_bytes":
            return session.total_upload_bytes
        if method == "stream_drop_site":
            session.drop_site(int(kwargs["site"]))
            return {"dropped": session.dropped_sites}
        if method == "stream_restore_site":
            session.restore_site(int(kwargs["site"]))
            return {"dropped": session.dropped_sites}
        if method == "stream_collect_late":
            folded = session.collect_late()
            if folded:
                self._metric_late_merges.inc(len(folded))
            return folded
        if method == "stream_late_pending":
            return session.late_pending
        if method in {f"stream_{name}" for name in STREAM_LIVE_METHODS}:
            return getattr(session, method[len("stream_") :])(**kwargs)
        if method in {f"stream_{name}" for name in STREAM_QUERY_METHODS}:
            return getattr(session, method[len("stream_") :])(**kwargs)
        raise ServiceError(f"unknown query method {method!r}")
