"""The coordinator as an asyncio TCP server.

:class:`CoordinatorServer` owns the coordinator's matrix ``B`` and listens
for two kinds of connections, distinguished by their ``hello``:

* **sites** (``role: "site"``) upload their row-shard of ``A`` (wire codec,
  byte-exact) and then serve the protocol traffic: downstream pushes,
  upstream echoes, and fanned-out per-site tasks.  Once ``num_sites`` have
  registered the cluster is *ready* and a
  :class:`~repro.multiparty.estimator.ClusterEstimator` is built over the
  live links (:class:`~repro.service.transport.SocketTransport` +
  :class:`~repro.service.transport.RemoteRuntime`).
* **clients** (``role: "client"``) issue ``query`` messages — the estimator
  facade's methods plus the ``stream_*`` session surface — and get back
  ``answer`` messages carrying the pickled
  :class:`~repro.comm.protocol.ProtocolResult` (or epoch report / live
  value) together with the service metering report of
  :meth:`~repro.service.transport.RemoteNetwork.service_report`.

Concurrency model: one thread runs the asyncio loop and owns every socket;
queries execute on a single worker thread (serialized — the estimator's
seed stream is stateful by design), blocking on socket round-trips via
``run_coroutine_threadsafe`` bridges while the loop keeps pumping frames.
The per-connection discipline is strict FIFO request/reply, so a reply is
always matched to the oldest in-flight request of its connection.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import traceback
from collections import deque
from typing import Any, Sequence

import numpy as np

from repro.comm.conditions import NetworkConditions
from repro.comm.framing import FrameDecoder, FramingError, encode_frame
from repro.comm import wire
from repro.service.messages import (
    PAYLOAD_TAG_BYTES,
    Message,
    ServiceError,
    decode_message,
    decode_payload,
    encode_message,
    encode_payload,
)
from repro.service.transport import SiteLink, SocketTransport

__all__ = ["CoordinatorServer", "QUERY_METHODS", "STREAM_QUERY_METHODS"]

#: Estimator facade methods a client may invoke remotely.
QUERY_METHODS = (
    "lp_norm",
    "join_size",
    "natural_join_size",
    "l0_sample",
    "l1_sample",
    "linf",
    "linf_kappa",
    "heavy_hitters",
)

#: One-shot query methods available on an open streaming session.
STREAM_QUERY_METHODS = QUERY_METHODS

#: Live (between-syncs) estimates available on an open streaming session.
STREAM_LIVE_METHODS = ("live_lp_norm", "live_l0", "live_l0_sample", "live_heavy_hitters")

#: Methods whose traffic meters on the streaming session's own network
#: (delta uploads), not on a per-query network built through the transport.
_SESSION_STATE_METHODS = frozenset(
    {"stream_open", "stream_ingest", "stream_end_epoch", "stream_sync",
     "stream_total_upload_bytes"}
    | {f"stream_{name}" for name in STREAM_LIVE_METHODS}
)


class _AsyncSiteLink(SiteLink):
    """Server side of one site connection (implements the transport seam)."""

    def __init__(
        self,
        site_name: str,
        index: int,
        loop: asyncio.AbstractEventLoop,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.site_name = site_name
        self.index = index
        self._loop = loop
        self._writer = writer
        #: Futures of in-flight requests, oldest first (strict FIFO replies).
        self.pending: deque[concurrent.futures.Future] = deque()
        self._observed_upstream: deque[tuple[int, int]] = deque()

    # ------------------------------------------------------- transport seam
    def submit(self, message: Message) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        asyncio.run_coroutine_threadsafe(
            self._write(message, future), self._loop
        ).add_done_callback(_propagate_submit_failure(future))
        return future

    def request(self, message: Message) -> Message:
        return self.submit(message).result()

    def take_observed_upstream(self) -> list[tuple[int, int]]:
        drained = []
        while True:
            try:
                drained.append(self._observed_upstream.popleft())
            except IndexError:
                return drained

    # ----------------------------------------------------------- loop side
    async def _write(self, message: Message, future: concurrent.futures.Future) -> None:
        self.pending.append(future)
        self._writer.write(encode_frame(encode_message(message)))
        await self._writer.drain()

    def on_reply(self, message: Message) -> None:
        """Route one incoming frame to the oldest in-flight request."""
        if message.type == "msg":
            # An upstream echo: count its codec-body bytes off the socket,
            # attributed to the round carried in the (relayed) meta —
            # *before* resolving the future, so the caller sees the record.
            self._observed_upstream.append(
                (int(message.meta.get("round", 0)), len(message.payload) - PAYLOAD_TAG_BYTES)
            )
        if not self.pending:
            raise ServiceError(
                f"site {self.site_name!r} sent an unsolicited {message.type!r}"
            )
        self.pending.popleft().set_result(message)

    def fail_pending(self, exc: Exception) -> None:
        while self.pending:
            future = self.pending.popleft()
            if not future.done():
                future.set_exception(exc)


def _propagate_submit_failure(future: concurrent.futures.Future):
    """If the loop-side write coroutine itself dies, fail the reply future."""

    def _done(write_result: concurrent.futures.Future) -> None:
        exc = write_result.exception()
        if exc is not None and not future.done():
            future.set_exception(exc)

    return _done


class _MessageStream:
    """Async message reader over one connection's frame stream.

    One socket read can complete several frames (replies coalesce when
    requests were pipelined), so completed bodies queue here and drain one
    message per :meth:`next` call.
    """

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self._decoder = FrameDecoder()
        self._bodies: deque[bytes] = deque()

    async def next(self) -> Message | None:
        while not self._bodies:
            chunk = await self._reader.read(65536)
            self._bodies.extend(self._decoder.feed(chunk))
            if not chunk:
                if self._bodies:
                    break
                self._decoder.close()  # truncated tail raises FramingError
                return None
        return decode_message(self._bodies.popleft())


class CoordinatorServer:
    """Serve a k-site cluster estimate over real TCP sockets.

    Parameters
    ----------
    b:
        The coordinator's matrix.
    num_sites:
        Number of site agents expected to register before the cluster is
        ready to answer queries.
    expected_row_counts:
        Optional per-site row counts; a registering shard with a different
        row count is rejected (the service equivalent of a mis-sharded
        cluster).
    seed, conditions:
        Forwarded to the served estimator, exactly as for an in-process
        :class:`~repro.multiparty.estimator.ClusterEstimator` — equal seeds
        give bit-identical estimates and simulated meters.
    host, port:
        Listen address; port 0 picks a free port (see :attr:`address`).
    """

    def __init__(
        self,
        b: np.ndarray,
        *,
        num_sites: int,
        expected_row_counts: Sequence[int] | None = None,
        seed: int | None = None,
        conditions: NetworkConditions | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if num_sites < 1:
            raise ValueError(f"num_sites must be >= 1, got {num_sites}")
        self.b = np.asarray(b)
        self.num_sites = int(num_sites)
        self.expected_row_counts = (
            None if expected_row_counts is None else [int(n) for n in expected_row_counts]
        )
        if (
            self.expected_row_counts is not None
            and len(self.expected_row_counts) != self.num_sites
        ):
            raise ValueError(
                f"{len(self.expected_row_counts)} row counts for {num_sites} sites"
            )
        self.seed = seed
        self.conditions = conditions
        self.host = host
        self.port = int(port)

        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._started = threading.Event()
        self._ready = threading.Event()
        self._ready_async: asyncio.Event | None = None
        self._stopping = False
        self._startup_error: BaseException | None = None

        self._links: dict[str, _AsyncSiteLink] = {}
        self._shards: dict[int, np.ndarray] = {}
        self._estimator = None
        self._session = None
        self._transport: SocketTransport | None = None
        # One worker: queries are serialized on purpose (the estimator's
        # per-query seed stream is stateful, like the in-process facade).
        self._queries = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-query"
        )

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "CoordinatorServer":
        """Bind the listening socket and start the loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolved once :meth:`start` returns)."""
        return (self.host, self.port)

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until all ``num_sites`` site agents have registered."""
        return self._ready.wait(timeout)

    def stop(self) -> None:
        """Say ``bye`` to every site, close all sockets, join the thread."""
        if self._thread is None:
            return
        if not self._stopping and self._loop is not None and self._loop.is_running():
            self._stopping = True
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown(), self._loop
                ).result(timeout=10)
            except (concurrent.futures.TimeoutError, RuntimeError):
                self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None
        self._queries.shutdown(wait=False)

    def __enter__(self) -> "CoordinatorServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._ready_async = asyncio.Event()
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle_connection, self.host, self.port)
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:  # bind failures surface in start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for link in list(self._links.values()):
            try:
                link._writer.write(encode_frame(encode_message(Message("bye"))))
                await link._writer.drain()
                link._writer.close()
            except (ConnectionError, RuntimeError):
                pass
            link.fail_pending(ServiceError("coordinator shut down"))
        # Wind the connection handlers down before stopping the loop, so no
        # task is destroyed while pending.
        current = asyncio.current_task()
        handlers = [task for task in asyncio.all_tasks() if task is not current]
        for task in handlers:
            task.cancel()
        await asyncio.gather(*handlers, return_exceptions=True)
        loop = asyncio.get_running_loop()
        loop.call_soon(loop.stop)

    # ---------------------------------------------------------- connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream = _MessageStream(reader)
        try:
            hello = await stream.next()
            if hello is None:
                return
            if hello.type != "hello":
                raise ServiceError(f"expected hello, got {hello.type!r}")
            role = hello.meta.get("role")
            if role == "site":
                await self._serve_site(hello, stream, writer)
            elif role == "client":
                await self._serve_client(stream, writer)
            else:
                raise ServiceError(f"unknown hello role {role!r}")
        except (ServiceError, FramingError, wire.WireFormatError, ValueError) as exc:
            await self._send_error(writer, exc)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Shutdown winds handlers down; returning (rather than
            # re-raising) keeps the streams machinery from logging the
            # cancellation as a connection error.
            pass
        finally:
            writer.close()

    async def _send_error(self, writer: asyncio.StreamWriter, exc: Exception) -> None:
        try:
            writer.write(
                encode_frame(
                    encode_message(
                        Message(
                            "error",
                            {
                                "error": type(exc).__name__,
                                "message": str(exc),
                                "traceback": traceback.format_exc(),
                            },
                        )
                    )
                )
            )
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    # ----------------------------------------------------------------- sites
    async def _serve_site(self, hello, stream, writer) -> None:
        index = int(hello.meta.get("index", -1))
        if not 0 <= index < self.num_sites:
            raise ServiceError(
                f"site index {index} out of range for a {self.num_sites}-site cluster"
            )
        name = f"site-{index}"
        if name in self._links:
            raise ServiceError(f"site {name!r} is already registered")
        shard = decode_payload(hello.payload)
        shard = np.asarray(shard)
        if shard.ndim != 2 or shard.shape[1] != self.b.shape[0]:
            raise ServiceError(
                f"shard of shape {shard.shape} does not match B {self.b.shape}"
            )
        if (
            self.expected_row_counts is not None
            and shard.shape[0] != self.expected_row_counts[index]
        ):
            raise ServiceError(
                f"site {name!r} uploaded {shard.shape[0]} rows, expected "
                f"{self.expected_row_counts[index]}"
            )
        link = _AsyncSiteLink(name, index, asyncio.get_running_loop(), writer)
        self._links[name] = link
        self._shards[index] = shard
        writer.write(
            encode_frame(
                encode_message(
                    Message(
                        "assign",
                        {
                            "name": name,
                            "index": index,
                            "k": self.num_sites,
                            "registered": len(self._links),
                        },
                    )
                )
            )
        )
        await writer.drain()
        if len(self._links) == self.num_sites:
            self._build_estimator()
            self._ready.set()
            self._ready_async.set()
        try:
            while True:
                message = await stream.next()
                if message is None or message.type == "bye":
                    break
                link.on_reply(message)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            link.fail_pending(ServiceError(f"site {name!r} connection lost: {exc}"))
        finally:
            link.fail_pending(ServiceError(f"site {name!r} disconnected"))
            self._links.pop(name, None)

    def _build_estimator(self) -> None:
        from repro.multiparty.estimator import ClusterEstimator

        self._transport = SocketTransport(self._links)
        shards = [self._shards[i] for i in range(self.num_sites)]
        self._estimator = ClusterEstimator(
            shards,
            self.b,
            seed=self.seed,
            runtime=self._transport.runtime(),
            conditions=self.conditions,
            transport=self._transport,
        )

    # --------------------------------------------------------------- clients
    async def _serve_client(self, stream, writer) -> None:
        writer.write(
            encode_frame(
                encode_message(
                    Message(
                        "assign",
                        {
                            "role": "client",
                            "k": self.num_sites,
                            "ready": self._ready.is_set(),
                            "b_shape": list(self.b.shape),
                        },
                    )
                )
            )
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        while True:
            message = await stream.next()
            if message is None or message.type == "bye":
                if message is not None and message.meta.get("shutdown"):
                    # An orderly remote shutdown: acknowledge, then stop.
                    writer.write(encode_frame(encode_message(Message("ack"))))
                    await writer.drain()
                    self._stopping = True
                    await self._shutdown()
                return
            if message.type != "query":
                raise ServiceError(f"expected query, got {message.type!r}")
            await self._ready_async.wait()  # queries block until k sites joined
            try:
                reply = await loop.run_in_executor(
                    self._queries, self._answer, message
                )
            except Exception as exc:  # noqa: BLE001 - reported to the client
                reply = Message(
                    "error",
                    {
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
            writer.write(encode_frame(encode_message(reply)))
            await writer.drain()

    # ------------------------------------------------------- query execution
    def _answer(self, message: Message) -> Message:
        """Run one client query on the worker thread; build its answer."""
        method = message.meta.get("method")
        kwargs = decode_payload(message.payload) if message.payload else {}
        if not isinstance(kwargs, dict):
            raise ServiceError(f"query kwargs must be a dict, got {type(kwargs)}")
        value = self._dispatch(method, kwargs)
        # Session-state methods (ingest, epoch boundaries, live estimates)
        # meter on the session's long-lived network; everything else built a
        # fresh per-query network through the transport.
        if method in _SESSION_STATE_METHODS and self._session is not None:
            network = self._session.network
        else:
            network = self._transport.last_network
        report = network.service_report() if network is not None else None
        return Message(
            "answer",
            {"method": method},
            encode_payload({"result": value, "service": report}),
        )

    def _dispatch(self, method: str, kwargs: dict) -> Any:
        if method in QUERY_METHODS:
            return getattr(self._estimator, method)(**kwargs)
        if method == "info":
            return {
                "k": self.num_sites,
                "b_shape": list(self.b.shape),
                "seed": self.seed,
                "is_binary": self._estimator.is_binary,
                "row_counts": [
                    int(self._shards[i].shape[0]) for i in range(self.num_sites)
                ],
            }
        if method == "stream_open":
            self._session = self._estimator.stream(**kwargs)
            return {"epoch": self._session.epoch, "sites": self._session.num_sites}
        session = self._session
        if session is None and method.startswith("stream_"):
            raise ServiceError("no streaming session is open (send stream_open first)")
        if method == "stream_ingest":
            site = int(kwargs["site"])
            session.ingest(site, kwargs["rows"], kwargs["deltas"])
            return {"epoch": session.epoch}
        if method == "stream_end_epoch":
            return session.end_epoch(**kwargs)
        if method == "stream_sync":
            return session.sync()
        if method == "stream_total_upload_bytes":
            return session.total_upload_bytes
        if method in {f"stream_{name}" for name in STREAM_LIVE_METHODS}:
            return getattr(session, method[len("stream_") :])(**kwargs)
        if method in {f"stream_{name}" for name in STREAM_QUERY_METHODS}:
            return getattr(session, method[len("stream_") :])(**kwargs)
        raise ServiceError(f"unknown query method {method!r}")
