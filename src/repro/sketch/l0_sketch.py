"""Linear distinct-elements (``l_0``) sketch.

The classic streaming ``l_0`` estimators (KNW, HyperLogLog) are not linear
maps, but Algorithm 1 needs a *linear* sketch so that Alice can obtain
sketches of the rows of ``C = A B`` from ``S B^T`` alone.  We therefore use
the standard linear construction behind dynamic (turnstile) ``l_0``
estimation:

* ``L = ceil(log2 n) + 1`` subsampling levels; level ``g`` keeps each
  coordinate independently with probability ``2^-g`` (level 0 keeps all).
* Within a level, surviving coordinates are hashed into ``k`` buckets and
  multiplied by a random non-zero coefficient; the bucket stores the sum.
* A bucket is *occupied* iff its value is non-zero.  For non-negative inputs
  (intersection counts are non-negative) occupancy is exact; for general
  integer inputs a random coefficient makes accidental cancellation unlikely.
* The estimator finds a level whose occupancy is informative (not saturated)
  and inverts the balls-in-bins occupancy formula:
  ``distinct ~= k * ln(k / (k - t)) / 2^-g`` where ``t`` is the number of
  occupied buckets at level ``g``.

With ``k = O(1/eps^2)`` buckets per level this yields a ``(1 +/- eps)``
estimate with constant probability, matching Lemma 2.1 for ``p = 0``.

The sketch matrix is never materialized: updates scatter straight through
the fused level-expansion kernels (:mod:`repro.sketch.kernels`), so memory
is ``O(n)`` per-coordinate randomness in the default (``"dense"``,
historically byte-compatible) mode and ``O(1)`` in ``mode="hash"``, where
priorities,
buckets and coefficients all come from lazy pairwise-independent hashes and
the universe can be ``2^30`` and beyond.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketch.kernels import (
    StackedKWiseHash,
    bincount_rows,
    count_alive_levels,
    expand_levels,
)
from repro.sketch.hashing import PRIME_61
from repro.sketch.mergeable import LinearStateMixin

#: Random coefficients are drawn from [1, COEFF_BOUND); keeps int64 exact.
COEFF_BOUND = 1 << 20

#: ``matrix`` materialization bound (inspection/tests only).
_DENSE_MATERIALIZE_MAX = 1 << 24


class L0Sketch(LinearStateMixin):
    """Layered-subsampling linear sketch for counting non-zero entries.

    The sketch is a :class:`repro.sketch.mergeable.MergeableSketch`: sites
    accumulate partial images ``S[:, idx] @ values`` into ``state`` via
    batched ``update_many`` calls and a coordinator combines the per-site
    states entrywise with ``merge`` (the updates are integer, so merging is
    exact).

    Parameters
    ----------
    n:
        Input dimension.
    buckets_per_level:
        Number of hash buckets per subsampling level (``k``).
    rng:
        Shared randomness.
    mode:
        ``"dense"`` (default): per-coordinate priorities/buckets/
        coefficients drawn from ``rng`` exactly as before the kernel layer —
        ``O(n)`` memory, byte-compatible transcripts.  ``"hash"``: the same
        quantities derived from lazy pairwise-independent hashes — memory
        independent of ``n``.
    """

    #: Norm parameter, for interface parity with :class:`LpSketch`.
    p = 0.0

    def __init__(
        self,
        n: int,
        buckets_per_level: int,
        rng: np.random.Generator,
        *,
        mode: str = "dense",
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if buckets_per_level < 2:
            raise ValueError(f"buckets_per_level must be >= 2, got {buckets_per_level}")
        if mode not in ("dense", "hash"):
            raise ValueError(f"mode must be 'dense' or 'hash', got {mode!r}")
        self.n = n
        self.k = int(buckets_per_level)
        self.levels = int(math.ceil(math.log2(max(n, 2)))) + 1
        self.num_rows = self.levels * self.k
        self.mode = mode
        self._thresholds = 2.0 ** (-np.arange(self.levels))

        if mode == "dense":
            # Level membership: coordinate j survives at level g iff
            # priority[j] < 2^-g, with a single uniform priority per
            # coordinate so the levels are nested (standard construction).
            # Draw order matches the historical dense constructor exactly.
            self._priorities = rng.uniform(0.0, 1.0, size=n)
            self._buckets = rng.integers(0, self.k, size=n)
            self._coefficients = rng.integers(1, COEFF_BOUND, size=n, dtype=np.int64)
            self._alive_counts = count_alive_levels(self._priorities, self._thresholds)
            self._priority_hash = self._bucket_hash = self._coeff_hash = None
        else:
            self._priority_hash = StackedKWiseHash(2, 1, rng)
            self._bucket_hash = StackedKWiseHash(2, 1, rng)
            self._coeff_hash = StackedKWiseHash(2, 1, rng)
            self._priorities = self._buckets = self._coefficients = None
            self._alive_counts = None

    @classmethod
    def for_accuracy(
        cls, n: int, epsilon: float, rng: np.random.Generator, *, mode: str = "dense"
    ) -> "L0Sketch":
        """Construct a sketch sized for a ``(1 +/- epsilon)`` estimate."""
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        buckets = max(16, int(np.ceil(8.0 / epsilon**2)))
        return cls(n, buckets, rng, mode=mode)

    # ------------------------------------------------------------ randomness
    def _coordinate_randomness(
        self, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(alive level counts, buckets, coefficients) for a batch."""
        if self.mode == "dense":
            return (
                self._alive_counts[indices],
                self._buckets[indices],
                self._coefficients[indices],
            )
        priorities = self._priority_hash.values(indices)[0] / PRIME_61
        counts = count_alive_levels(priorities, self._thresholds)
        buckets = self._bucket_hash.buckets(indices, self.k)[0]
        coefficients = 1 + (
            self._coeff_hash.values(indices)[0] % np.uint64(COEFF_BOUND - 1)
        ).astype(np.int64)
        return counts, buckets, coefficients

    def _randomness_fingerprints(self):
        if self.mode == "dense":
            return [
                ("level priorities", self._priorities),
                ("bucket assignments", self._buckets),
                ("bucket coefficients", self._coefficients),
            ]
        return [
            ("priority hashes", self._priority_hash.coeffs),
            ("bucket hashes", self._bucket_hash.coeffs),
            ("coefficient hashes", self._coeff_hash.coeffs),
        ]

    @property
    def matrix(self) -> np.ndarray:
        """The dense sketch matrix, materialized on demand (inspection only).

        The update/apply paths never build it; reconstruction reproduces the
        historical dense layout exactly.
        """
        if self.num_rows * self.n > _DENSE_MATERIALIZE_MAX:
            raise ValueError(
                f"refusing to materialize a {self.num_rows} x {self.n} sketch "
                f"matrix; use update_many()/apply(), which stay lazy"
            )
        keys = np.arange(self.n)
        counts, buckets, coefficients = self._coordinate_randomness(keys)
        matrix = np.zeros((self.num_rows, self.n), dtype=np.int64)
        take, level = expand_levels(counts)
        matrix[level * self.k + buckets[take], keys[take]] = coefficients[take]
        return matrix

    # ------------------------------------------------------------------ api
    def _contribution(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Fused scatter of one batch: ``S[:, indices] @ values`` without ``S``.

        Exact (order-independent) for integer values within the
        float64-exact ``2^53`` range; integer inputs keep the historical
        int64 state dtype.
        """
        counts, buckets, coefficients = self._coordinate_randomness(indices)
        take, level = expand_levels(counts)
        rows = level * self.k + buckets[take]
        exact = bool(np.issubdtype(values.dtype, np.integer))
        if values.ndim == 1:
            weights = coefficients[take] * values[take]
        else:
            weights = coefficients[take, None] * values[take]
        return bincount_rows(rows, weights, self.num_rows, exact_int=exact)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute ``S x``; inputs should be integer-valued for exactness."""
        x = np.asarray(x)
        if np.issubdtype(x.dtype, np.integer):
            x = x.astype(np.int64)
        return self._contribution(np.arange(self.n), x)

    def estimate_state_l0(self) -> float:
        """Estimate ``||x||_0`` from the accumulated (possibly merged) state."""
        if self.state is None:
            return 0.0
        if self.state.ndim != 1:
            raise ValueError(
                "state is matrix-shaped (one sketch per input column); use "
                "estimate_rows_pp(self.state.T) for per-column estimates"
            )
        return self.estimate_l0(self.state)

    def estimate_l0(self, sketched: np.ndarray) -> float:
        """Estimate the number of non-zero coordinates from ``S x``."""
        sketched = np.asarray(sketched)
        if sketched.shape[0] != self.num_rows:
            raise ValueError(
                f"sketch has {sketched.shape[0]} rows, expected {self.num_rows}"
            )
        per_level = sketched.reshape(self.levels, self.k)
        occupied = np.count_nonzero(self._nonzero(per_level), axis=1)
        return self._estimate_from_occupancy(occupied)

    def estimate_rows_pp(self, sketched_rows: np.ndarray) -> np.ndarray:
        """Estimate ``||x_i||_0`` for every row of a row-wise sketched matrix.

        ``sketched_rows`` has shape ``(m, num_rows)``; row ``i`` is ``S x_i``.
        """
        sketched_rows = np.asarray(sketched_rows)
        if sketched_rows.ndim != 2 or sketched_rows.shape[1] != self.num_rows:
            raise ValueError(
                f"expected shape (m, {self.num_rows}), got {sketched_rows.shape}"
            )
        per_level = sketched_rows.reshape(sketched_rows.shape[0], self.levels, self.k)
        occupied = np.count_nonzero(self._nonzero(per_level), axis=2)
        return self._estimates_from_occupancies(occupied)

    # alias so LpSketch/L0Sketch can be used interchangeably where the p-th
    # power of the norm is wanted (for p = 0 they coincide).
    estimate_norm_pp = estimate_l0

    def estimate_norm(self, sketched: np.ndarray) -> float:
        """Alias of :meth:`estimate_l0` (``||x||_0`` is its own p-th root)."""
        return self.estimate_l0(sketched)

    # ------------------------------------------------------------- internal
    @staticmethod
    def _nonzero(values: np.ndarray) -> np.ndarray:
        if np.issubdtype(values.dtype, np.floating):
            return np.abs(values) > 1e-9
        return values != 0

    def _estimate_from_occupancy(self, occupied: np.ndarray) -> float:
        """Invert bucket occupancy into a distinct-count estimate."""
        return float(self._estimates_from_occupancies(np.asarray(occupied)[None, :])[0])

    def _estimates_from_occupancies(self, occupied: np.ndarray) -> np.ndarray:
        """Row-batched occupancy inversion, shape ``(m, levels) -> (m,)``.

        Per row, the first level whose occupancy ``t`` is at or below the
        saturation point decides the estimate (0 when ``t = 0`` — levels are
        nested, so every deeper level is empty too).  Rows saturated at every
        level fall back to the deepest level's (biased) estimate, clamped
        below saturation.
        """
        saturation = 0.75 * self.k
        informative = occupied <= saturation
        has_level = informative.any(axis=1)
        level = np.argmax(informative, axis=1)  # first informative level
        # Saturated-everywhere rows: deepest level, occupancy clamped.
        level[~has_level] = self.levels - 1
        t = np.where(
            has_level,
            occupied[np.arange(occupied.shape[0]), level],
            np.minimum(occupied[:, -1], int(saturation)),
        ).astype(float)
        estimates = self.k * np.log(self.k / (self.k - t)) / self._thresholds[level]
        return np.where(t == 0, 0.0, estimates)
