"""Shared vectorized kernels behind every sketch family's hot path.

Four building blocks, used by CountSketch/Count-Min, AMS, the ``l_0``
sketch and the ``l_0`` sampler:

**Lazy stacked hashing** (:class:`StackedKWiseHash`).  Instead of
precomputing dense ``O(universe x depth)`` bucket/sign tables at
construction (the pre-kernel design), hash values are evaluated *on demand*
for each update batch: one vectorized Mersenne-61 Horner pass over the
batch, all depth rows at once via broadcasting, with a small-key fast path
that skips the vanished partial products for keys below ``2^32``.
Construction cost and memory are ``O(depth x k)`` — independent of the
universe — which is what lets sketches span universes of ``2^30`` and
beyond.  The per-key values are bit-identical to evaluating ``depth``
separate :class:`repro.sketch.hashing.KWiseHash` members drawn from the
same generator stream, so the rewrite changed no transcript anywhere.

**Bit-sliced sign hashing** (:class:`BitSignHash`).  A 4-wise independent
hash value is uniform over the 61-bit Mersenne field, so each of its bits
is an unbiased 4-wise independent sign: one Horner evaluation per key
yields up to 61 AMS rows at once (``ceil(rows / 61)`` evaluations for
more), turning the per-(row, key) sign cost into a per-key cost.  Used by
the AMS sketch's universe-independent ``mode="hash"``.

**Fused scatter-add** (:func:`scatter_add_scalar`,
:func:`scatter_add_vector`, :func:`bincount_rows`).  Bucket scatters run
through ``np.bincount``, which accumulates weights in input order — so
building a fresh table from a batch reproduces the historical sequential
``np.add.at`` result bit for bit, and on integer-valued updates (every
engine/streaming path — ingestion enforces the float64-exact ``2^53``
range) accumulation into a non-empty table is exact as well, which is what
keeps the streaming chunking-equivalence suites byte-identical.  (On the
NumPy 2.x in this environment the old per-row ``add.at`` is no longer the
order-of-magnitude disaster it classically was — it grew a fast path — but
``bincount`` still wins the scatter by ~2-3x; the measured numbers live in
``benchmarks/BENCH_sketch.json``.  The decisive cost at small universes is
the dense-table *gather*, which is why the callers keep a dense cache only
as an adaptive small-universe optimization and hash lazily otherwise.)

**Level expansion** (:func:`count_alive_levels`, :func:`expand_levels`).
The layered-subsampling sketches touch rows ``0..d_j`` of their level
hierarchy per updated coordinate ``j``.  ``expand_levels`` turns the
per-coordinate depths into the flat ``(coordinate, level)`` index pairs in
one vectorized pass (expected blow-up factor 2: level depths are
geometric), feeding the same fused bincount — replacing both the dense
``O(universe x levels x buckets)`` matrix *and* the per-level scatter
loops of the pre-kernel ``l_0`` machinery.
"""

from __future__ import annotations

import numpy as np

from repro.sketch import _native
from repro.sketch.hashing import (
    PRIME_61,
    KWiseHash,
    _mulmod_p61,
    _mulmod_p61_small_b,
    _P61,
)

__all__ = [
    "BitSignHash",
    "StackedKWiseHash",
    "bincount_rows",
    "count_alive_levels",
    "expand_levels",
    "scatter_add_scalar",
    "scatter_add_vector",
]

#: Usable sign bits per hash value (the field is 61 bits wide).
_BITS_PER_HASH = 61


class StackedKWiseHash:
    """``depth`` independent k-wise hash functions evaluated together.

    Drawing coefficients row by row from ``rng`` consumes the generator
    stream exactly like constructing ``depth`` separate :class:`KWiseHash`
    members, and evaluation broadcasts the same Mersenne-61 Horner rule over
    a ``(depth, 1) x (batch,)`` grid — so per-key values are bit-identical
    to the historical per-row objects while costing one fused pass.
    """

    def __init__(self, k: int, depth: int, rng: np.random.Generator) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        members = [KWiseHash(k, rng) for _ in range(depth)]
        self.k = k
        self.depth = depth
        #: (depth, k) uint64 coefficient table; doubles as the randomness
        #: fingerprint two sketches must share to be mergeable.
        self.coeffs = np.array([m._coeffs for m in members], dtype=np.uint64)

    def values(self, keys: np.ndarray) -> np.ndarray:
        """Hash values in ``[0, PRIME_61)``, shape ``(depth, len(keys))``."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        keys_mod = (keys % np.int64(PRIME_61)).astype(np.uint64)
        backend = _native.active()
        if backend is not None:
            return backend.horner(self.coeffs, keys_mod)
        keys_mod = keys_mod[None, :]
        small = keys_mod.size == 0 or int(keys_mod.max()) < (1 << 32)
        mulmod = _mulmod_p61_small_b if small else _mulmod_p61
        acc = np.zeros((self.depth, keys_mod.shape[1]), dtype=np.uint64)
        for j in range(self.k):
            acc = mulmod(acc, keys_mod) + self.coeffs[:, j : j + 1]
            acc = np.where(acc >= _P61, acc - _P61, acc)
        return acc

    def values_grid(self, keys: np.ndarray) -> np.ndarray:
        """Row ``r``'s hash evaluated at ``keys[r]`` — no cross-row waste.

        ``keys`` has shape ``(depth, ...)``; the Horner recursion broadcasts
        elementwise, so each row's polynomial only ever touches its own key
        block (unlike :meth:`values`, which evaluates every row at every
        key).  Used where each repetition looks up its own coordinates,
        e.g. the ``l_0``-sampler's fingerprint verification.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.shape[0] != self.depth:
            raise ValueError(
                f"keys grid has {keys.shape[0]} rows, expected {self.depth}"
            )
        keys_mod = (keys % np.int64(PRIME_61)).astype(np.uint64)
        backend = _native.active()
        if backend is not None:
            return backend.horner_grid(self.coeffs, np.ascontiguousarray(keys_mod))
        small = keys_mod.size == 0 or int(keys_mod.max()) < (1 << 32)
        mulmod = _mulmod_p61_small_b if small else _mulmod_p61
        acc = np.zeros(keys_mod.shape, dtype=np.uint64)
        coeff_shape = (self.depth,) + (1,) * (keys_mod.ndim - 1)
        for j in range(self.k):
            acc = mulmod(acc, keys_mod) + self.coeffs[:, j].reshape(coeff_shape)
            acc = np.where(acc >= _P61, acc - _P61, acc)
        return acc

    def buckets(self, keys: np.ndarray, n_buckets: int) -> np.ndarray:
        """Bucket assignments in ``[0, n_buckets)``, shape ``(depth, batch)``."""
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        return (self.values(keys) % np.uint64(n_buckets)).astype(np.int64)

    def signs(self, keys: np.ndarray) -> np.ndarray:
        """``{-1, +1}`` signs, shape ``(depth, batch)``."""
        parity = (self.values(keys) & np.uint64(1)).astype(np.int64)
        return 2 * parity - 1


class BitSignHash:
    """``num_rows`` 4-wise independent sign rows from bit-sliced hash values.

    Row ``r``'s sign for key ``j`` is bit ``r mod 61`` of hash member
    ``r // 61`` evaluated at ``j``: one Horner pass per key per 61 rows,
    with the bits unpacked in bulk via ``np.unpackbits``.  Each row is a
    4-wise independent ``{-1, +1}`` family (a fixed bit of a 4-wise
    independent field value), which is exactly the independence the AMS
    variance analysis needs; rows sharing a hash member are uncorrelated
    only pairwise-in-expectation, the usual one-hash-many-bits trade.
    """

    def __init__(self, num_rows: int, rng: np.random.Generator, *, k: int = 4) -> None:
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        self.num_rows = num_rows
        groups = (num_rows + _BITS_PER_HASH - 1) // _BITS_PER_HASH
        self._hashes = StackedKWiseHash(k, groups, rng)
        # Row r reads bit (r % 61) of hash member (r // 61); precompute the
        # flat positions into the unpacked (groups * 64)-bit grid.
        rows = np.arange(num_rows)
        self._bit_rows = (rows // _BITS_PER_HASH) * 64 + (rows % _BITS_PER_HASH)

    @property
    def coeffs(self) -> np.ndarray:
        """Randomness fingerprint (the underlying hash coefficients)."""
        return self._hashes.coeffs

    def signs(self, keys: np.ndarray) -> np.ndarray:
        """Float ``{-1.0, +1.0}`` signs, shape ``(num_rows, len(keys))``."""
        values = self._hashes.values(keys)  # (groups, batch) uint64
        batch = values.shape[1]
        bits = np.unpackbits(
            values.view(np.uint8).reshape(values.shape[0], batch, 8),
            axis=2,
            bitorder="little",
        )  # (groups, batch, 64)
        per_bit = bits.transpose(0, 2, 1).reshape(-1, batch)  # (groups * 64, batch)
        return per_bit[self._bit_rows].astype(np.float64) * 2.0 - 1.0


def scatter_add_scalar(
    table: np.ndarray,
    buckets: np.ndarray,
    signs: np.ndarray | None,
    deltas: np.ndarray,
) -> None:
    """Add ``signs[r, t] * deltas[t]`` into ``table[r, buckets[r, t]]``.

    One ``np.bincount`` per sketch row (the scatter itself is ~3x faster
    than ``np.add.at`` even on NumPy 2.x).  ``signs`` may be ``None``
    (Count-Min).  ``table`` has shape ``(depth, width)`` and is updated in
    place; per-bucket accumulation runs in batch order, so populating a
    zeroed table is bit-identical to the historical sequential scatter.
    """
    depth, width = table.shape
    backend = _native.active()
    if backend is not None and table.flags.c_contiguous:
        # Same association as below: zeroed per-row buffer accumulated in
        # batch order, then one elementwise add into the table — bit-exact.
        backend.scatter_add_scalar(
            table,
            np.ascontiguousarray(buckets, dtype=np.int64),
            None if signs is None else np.ascontiguousarray(signs, dtype=np.float64),
            np.ascontiguousarray(deltas, dtype=np.float64),
        )
        return
    for row in range(depth):
        weights = deltas if signs is None else signs[row] * deltas
        table[row] += np.bincount(buckets[row], weights=weights, minlength=width)


def scatter_add_vector(
    table: np.ndarray,
    buckets: np.ndarray,
    signs: np.ndarray,
    deltas: np.ndarray,
) -> None:
    """Vector-valued analogue: add ``signs[r, t] * deltas[t, :]`` row-vectors.

    ``table`` has shape ``(depth, width, m)`` and ``deltas`` shape
    ``(batch, m)``; value columns are independent, so the scatter is one
    bincount per (row, column) pair over the same bucket indices.
    """
    depth, width, m = table.shape
    backend = _native.active()
    if backend is not None and table.flags.c_contiguous:
        backend.scatter_add_vector(
            table,
            np.ascontiguousarray(buckets, dtype=np.int64),
            np.ascontiguousarray(signs, dtype=np.float64),
            np.ascontiguousarray(deltas, dtype=np.float64),
        )
        return
    for row in range(depth):
        row_buckets = buckets[row]
        row_signs = signs[row]
        for col in range(m):
            table[row, :, col] += np.bincount(
                row_buckets, weights=row_signs * deltas[:, col], minlength=width
            )


def bincount_rows(
    rows: np.ndarray,
    weights: np.ndarray,
    num_rows: int,
    *,
    exact_int: bool,
) -> np.ndarray:
    """Sum ``weights`` into ``num_rows`` output rows (the linear-map kernel).

    ``weights`` is 1-D (vector input: returns shape ``(num_rows,)``) or 2-D
    ``(len(rows), m)`` (matrix input: returns ``(num_rows, m)``).  With
    ``exact_int`` the accumulation runs in an int64 array via the fused
    indexed-add — exact to ``2^63`` like the dense integer matmul it
    replaced (a float64 ``bincount`` would silently round weights past
    ``2^53``, and the layered sketches' internal weights reach
    ``coefficient x value``, far beyond the raw delta bound).  Float
    weights accumulate through ``np.bincount``, one call per value column.
    """
    backend = _native.active()
    if exact_int:
        weights = weights.astype(np.int64, copy=False)
        shape = (num_rows,) if weights.ndim == 1 else (num_rows, weights.shape[1])
        out = np.zeros(shape, dtype=np.int64)
        if backend is not None:
            backend.bincount_i64(
                np.ascontiguousarray(rows, dtype=np.int64),
                np.ascontiguousarray(weights),
                out,
            )
        else:
            np.add.at(out, rows, weights)
        return out
    if backend is not None:
        shape = (num_rows,) if weights.ndim == 1 else (num_rows, weights.shape[1])
        out = np.zeros(shape, dtype=np.float64)
        backend.bincount_f64(
            np.ascontiguousarray(rows, dtype=np.int64),
            np.ascontiguousarray(weights, dtype=np.float64),
            out,
        )
        return out
    if weights.ndim == 1:
        return np.bincount(rows, weights=weights, minlength=num_rows)
    m = weights.shape[1]
    out = np.empty((num_rows, m), dtype=np.float64)
    for col in range(m):
        out[:, col] = np.bincount(rows, weights=weights[:, col], minlength=num_rows)
    return out


def count_alive_levels(priorities: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """How many nested subsampling levels each coordinate survives.

    Level ``g`` keeps coordinate ``j`` iff ``priorities[j] < thresholds[g]``
    with ``thresholds`` strictly decreasing (``2^-g``), so the alive levels
    are exactly ``0..count-1``.  Uses ``searchsorted`` on the ascending view
    — the same exact float comparisons as the dense construction loop.
    """
    ascending = thresholds[::-1]
    # Number of thresholds strictly greater than p == levels - upper_bound(p).
    return thresholds.shape[0] - np.searchsorted(ascending, priorities, side="right")


def expand_levels(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-coordinate level counts into (position, level) pairs.

    Returns ``(take, level)`` where ``take`` repeats each batch position
    ``counts[t]`` times and ``level`` runs ``0..counts[t]-1`` within each
    repeat — the row coordinates of every touched (coordinate, level) cell,
    in batch-major order (which preserves the sequential accumulation order
    of the pre-kernel per-level loops).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    total = int(counts.sum())
    take = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
    # arange minus the start offset of each coordinate's run = 0..count-1.
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    level = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    return take, level
