"""AMS (Alon–Matias–Szegedy) sketch for the squared Euclidean norm.

The AMS sketch multiplies a vector by a random ``k x n`` sign matrix; the
mean of the squared sketch coordinates is an unbiased estimator of
``||x||_2^2``, and with ``k = O(1/eps^2)`` rows the estimate is within a
``(1 +/- eps)`` factor with constant probability.  A median-of-means variant
is provided for boosting the success probability.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.mergeable import LinearStateMixin


class AmsSketch(LinearStateMixin):
    """AMS / F2 sketch of dimension ``num_rows x n``.

    Besides the pure linear-map interface (:meth:`apply` + estimators), the
    sketch is a :class:`repro.sketch.mergeable.MergeableSketch`: sites
    accumulate ``S x`` into ``state`` via batched ``update_many`` calls and a
    coordinator combines the per-site states entrywise with ``merge``.

    Parameters
    ----------
    n:
        Input dimension.
    num_rows:
        Number of sketch rows.  ``O(1/eps^2)`` rows give a ``(1 +/- eps)``
        approximation of ``||x||_2^2`` with constant probability.
    rng:
        Shared randomness (both parties construct the identical sketch).
    num_groups:
        If > 1, rows are split into that many groups and the estimator
        returns the median of the per-group means (median-of-means).
    """

    def __init__(
        self,
        n: int,
        num_rows: int,
        rng: np.random.Generator,
        *,
        num_groups: int = 1,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        if num_groups < 1 or num_groups > num_rows:
            raise ValueError("num_groups must be in [1, num_rows]")
        self.n = n
        self.num_rows = num_rows
        self.num_groups = num_groups
        self.matrix = rng.choice(np.array([-1.0, 1.0]), size=(num_rows, n))

    @classmethod
    def for_accuracy(
        cls, n: int, epsilon: float, rng: np.random.Generator, *, rows_per_group: int | None = None
    ) -> "AmsSketch":
        """Construct a sketch sized for a ``(1 +/- epsilon)`` F2 estimate."""
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        if rows_per_group is None:
            rows_per_group = max(8, int(np.ceil(6.0 / epsilon**2)))
        return cls(n, rows_per_group, rng)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute the sketch ``S x`` of a vector (or ``S X`` of a matrix)."""
        return self.matrix @ np.asarray(x, dtype=float)

    def estimate_state_f2(self) -> float:
        """Estimate ``||x||_2^2`` from the accumulated (possibly merged) state."""
        if self.state is None:
            return 0.0
        if self.state.ndim != 1:
            raise ValueError(
                "state is matrix-shaped (one sketch per input column); use "
                "estimate_f2_columns(self.state) for per-column estimates"
            )
        return self.estimate_f2(self.state)

    def estimate_f2(self, sketched: np.ndarray) -> float:
        """Estimate ``||x||_2^2`` from a sketch vector ``S x``."""
        sketched = np.asarray(sketched, dtype=float)
        if sketched.shape[0] != self.num_rows:
            raise ValueError(
                f"sketch has {sketched.shape[0]} rows, expected {self.num_rows}"
            )
        squares = sketched**2
        if self.num_groups == 1:
            return float(np.mean(squares))
        groups = np.array_split(squares, self.num_groups)
        return float(np.median([np.mean(group) for group in groups]))

    def estimate_f2_columns(self, sketched: np.ndarray) -> np.ndarray:
        """Estimate ``||x_j||_2^2`` for every column of a sketched matrix."""
        sketched = np.asarray(sketched, dtype=float)
        squares = sketched**2
        if self.num_groups == 1:
            return np.mean(squares, axis=0)
        groups = np.array_split(squares, self.num_groups, axis=0)
        return np.median(np.stack([np.mean(group, axis=0) for group in groups]), axis=0)
