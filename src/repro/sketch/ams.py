"""AMS (Alon–Matias–Szegedy) sketch for the squared Euclidean norm.

The AMS sketch multiplies a vector by a random ``k x n`` sign matrix; the
mean of the squared sketch coordinates is an unbiased estimator of
``||x||_2^2``, and with ``k = O(1/eps^2)`` rows the estimate is within a
``(1 +/- eps)`` factor with constant probability.  A median-of-means variant
is provided for boosting the success probability.

Two randomness modes:

``mode="dense"`` (default)
    The classic explicit sign matrix drawn i.i.d. from the generator —
    byte-compatible with every transcript recorded before the kernel layer
    existed (the draws and the update arithmetic are unchanged).

``mode="hash"``
    Signs come from bit-sliced 4-wise independent hashes evaluated lazily
    per update batch (:class:`repro.sketch.kernels.BitSignHash`: one
    Mersenne-61 Horner evaluation per key yields 61 sign rows at once), so
    construction costs ``O(num_rows)`` memory and time independent of ``n``
    — the mode to use for universes of ``2^30`` and beyond.  Each row is a
    4-wise independent sign family, exactly what the AMS variance analysis
    requires; the two modes draw different randomness and are not mergeable
    with each other.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.kernels import BitSignHash
from repro.sketch.mergeable import LinearStateMixin

#: Keys hashed per chunk when applying a hash-mode sketch to a dense vector.
_CHUNK = 1 << 20

#: ``matrix`` materialization bound for hash-mode sketches (inspection only).
_DENSE_MATERIALIZE_MAX = 1 << 22


class AmsSketch(LinearStateMixin):
    """AMS / F2 sketch of dimension ``num_rows x n``.

    Besides the pure linear-map interface (:meth:`apply` + estimators), the
    sketch is a :class:`repro.sketch.mergeable.MergeableSketch`: sites
    accumulate ``S x`` into ``state`` via batched ``update_many`` calls and a
    coordinator combines the per-site states entrywise with ``merge``.

    Parameters
    ----------
    n:
        Input dimension.
    num_rows:
        Number of sketch rows.  ``O(1/eps^2)`` rows give a ``(1 +/- eps)``
        approximation of ``||x||_2^2`` with constant probability.
    rng:
        Shared randomness (both parties construct the identical sketch).
    num_groups:
        If > 1, rows are split into that many groups and the estimator
        returns the median of the per-group means (median-of-means).
    mode:
        ``"dense"`` (explicit sign matrix, historical randomness) or
        ``"hash"`` (lazy 4-wise hash signs, universe-independent memory).
    """

    def __init__(
        self,
        n: int,
        num_rows: int,
        rng: np.random.Generator,
        *,
        num_groups: int = 1,
        mode: str = "dense",
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        if num_groups < 1 or num_groups > num_rows:
            raise ValueError("num_groups must be in [1, num_rows]")
        if mode not in ("dense", "hash"):
            raise ValueError(f"mode must be 'dense' or 'hash', got {mode!r}")
        self.n = n
        self.num_rows = num_rows
        self.num_groups = num_groups
        self.mode = mode
        if mode == "dense":
            self.matrix = rng.choice(np.array([-1.0, 1.0]), size=(num_rows, n))
            self._sign_hashes = None
        else:
            self._sign_hashes = BitSignHash(num_rows, rng)

    @classmethod
    def for_accuracy(
        cls,
        n: int,
        epsilon: float,
        rng: np.random.Generator,
        *,
        rows_per_group: int | None = None,
        mode: str = "dense",
    ) -> "AmsSketch":
        """Construct a sketch sized for a ``(1 +/- epsilon)`` F2 estimate."""
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        if rows_per_group is None:
            rows_per_group = max(8, int(np.ceil(6.0 / epsilon**2)))
        return cls(n, rows_per_group, rng, mode=mode)

    # ---------------------------------------------------------- linear image
    def _batch_signs(self, indices: np.ndarray) -> np.ndarray:
        """Float sign block ``(num_rows, batch)`` for a batch of coordinates."""
        if self.mode == "dense":
            return self.matrix[:, indices]
        return self._sign_hashes.signs(indices)

    def _contribution(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        return self._batch_signs(indices) @ values

    def _randomness_fingerprints(self):
        if self.mode == "dense":
            return [("sketch matrices", self.matrix)]
        return [("sign hashes", self._sign_hashes.coeffs)]

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute the sketch ``S x`` of a vector (or ``S X`` of a matrix)."""
        x = np.asarray(x, dtype=float)
        if self.mode == "dense":
            return self.matrix @ x
        out = np.zeros((self.num_rows,) + x.shape[1:])
        for start in range(0, self.n, _CHUNK):
            keys = np.arange(start, min(start + _CHUNK, self.n))
            out += self._batch_signs(keys) @ x[keys]
        return out

    @property
    def dense_matrix(self) -> np.ndarray:
        """The explicit sign matrix (materialized on demand in hash mode)."""
        if self.mode == "dense":
            return self.matrix
        if self.n > _DENSE_MATERIALIZE_MAX:
            raise ValueError(
                f"refusing to materialize a {self.num_rows} x {self.n} sign "
                f"matrix; use apply()/update_many(), which stay lazy"
            )
        return self._batch_signs(np.arange(self.n))

    # ------------------------------------------------------------ estimators
    def estimate_state_f2(self) -> float:
        """Estimate ``||x||_2^2`` from the accumulated (possibly merged) state."""
        if self.state is None:
            return 0.0
        if self.state.ndim != 1:
            raise ValueError(
                "state is matrix-shaped (one sketch per input column); use "
                "estimate_f2_columns(self.state) for per-column estimates"
            )
        return self.estimate_f2(self.state)

    def _grouped_median_of_means(self, squares: np.ndarray) -> np.ndarray:
        """Median over groups of per-group means, along axis 0.

        One reshape + ``mean(axis=1)`` when the rows split evenly (the
        common case — bit-identical to the historical per-group
        ``np.mean``); a ``reduceat`` pipeline for ragged splits.  Works for
        1-D (scalar estimate) and 2-D (per-column) ``squares`` alike.
        """
        if self.num_rows % self.num_groups == 0:
            grouped = squares.reshape(
                (self.num_groups, self.num_rows // self.num_groups) + squares.shape[1:]
            )
            return np.median(grouped.mean(axis=1), axis=0)
        # Ragged split: same group sizes as np.array_split (first
        # ``num_rows % num_groups`` groups get one extra row).
        quotient, remainder = divmod(self.num_rows, self.num_groups)
        sizes = np.full(self.num_groups, quotient, dtype=np.int64)
        sizes[:remainder] += 1
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        sums = np.add.reduceat(squares, starts, axis=0)
        shape = (self.num_groups,) + (1,) * (squares.ndim - 1)
        return np.median(sums / sizes.reshape(shape), axis=0)

    def estimate_f2(self, sketched: np.ndarray) -> float:
        """Estimate ``||x||_2^2`` from a sketch vector ``S x``."""
        sketched = np.asarray(sketched, dtype=float)
        if sketched.shape[0] != self.num_rows:
            raise ValueError(
                f"sketch has {sketched.shape[0]} rows, expected {self.num_rows}"
            )
        squares = sketched**2
        if self.num_groups == 1:
            return float(np.mean(squares))
        return float(self._grouped_median_of_means(squares))

    def estimate_f2_columns(self, sketched: np.ndarray) -> np.ndarray:
        """Estimate ``||x_j||_2^2`` for every column of a sketched matrix."""
        sketched = np.asarray(sketched, dtype=float)
        squares = sketched**2
        if self.num_groups == 1:
            return np.mean(squares, axis=0)
        return self._grouped_median_of_means(squares)
