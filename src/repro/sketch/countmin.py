"""Count-Min sketch for non-negative frequency vectors.

Provides upper-bounding point queries; used in tests and as an alternative
candidate-verification structure for heavy hitters.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import KWiseHash


class CountMinSketch:
    """Count-Min sketch with ``depth`` rows of ``width`` buckets each."""

    def __init__(self, n: int, width: int, depth: int, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.n = n
        self.width = width
        self.depth = depth
        keys = np.arange(n)
        self.bucket_of = np.stack(
            [KWiseHash(2, rng).buckets(keys, width) for _ in range(depth)]
        )
        self.table = np.zeros((depth, width), dtype=float)

    def update(self, index: int, delta: float = 1.0) -> None:
        """Add ``delta`` (must keep the vector non-negative) to a coordinate."""
        for row in range(self.depth):
            self.table[row, self.bucket_of[row, index]] += delta

    def build_from_vector(self, x: np.ndarray) -> None:
        """Populate the sketch from a dense non-negative frequency vector."""
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.n:
            raise ValueError(f"vector has length {x.shape[0]}, expected {self.n}")
        if np.any(x < 0):
            raise ValueError("Count-Min requires non-negative frequencies")
        self.table[:] = 0.0
        for row in range(self.depth):
            np.add.at(self.table[row], self.bucket_of[row], x)

    def query(self, index: int) -> float:
        """Upper-bounding estimate of coordinate ``index``."""
        return float(
            min(self.table[row, self.bucket_of[row, index]] for row in range(self.depth))
        )

    def query_all(self) -> np.ndarray:
        """Upper-bounding estimates for all coordinates."""
        estimates = np.empty((self.depth, self.n))
        for row in range(self.depth):
            estimates[row] = self.table[row, self.bucket_of[row]]
        return np.min(estimates, axis=0)
