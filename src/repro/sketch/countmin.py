"""Count-Min sketch for non-negative frequency vectors.

Provides upper-bounding point queries; used in tests and as an alternative
candidate-verification structure for heavy hitters.  Hashing is lazy
(:mod:`repro.sketch.kernels`), so construction is independent of the
universe size; values are bit-identical to the historical dense tables.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.kernels import StackedKWiseHash, scatter_add_scalar
from repro.sketch.mergeable import check_coordinate_range


class CountMinSketch:
    """Count-Min sketch with ``depth`` rows of ``width`` buckets each."""

    def __init__(self, n: int, width: int, depth: int, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.n = n
        self.width = width
        self.depth = depth
        self._bucket_hashes = StackedKWiseHash(2, depth, rng)
        self.table = np.zeros((depth, width), dtype=float)

    @property
    def bucket_of(self) -> np.ndarray:
        """Dense ``(depth, n)`` bucket table, for inspection only."""
        return self._bucket_hashes.buckets(np.arange(self.n), self.width)

    def update(self, index: int, delta: float = 1.0) -> None:
        """Add ``delta`` (must keep the vector non-negative) to a coordinate."""
        keys = np.array([index], dtype=np.int64)
        check_coordinate_range(keys, self.n)
        buckets = self._bucket_hashes.buckets(keys, self.width)
        self.table[np.arange(self.depth), buckets[:, 0]] += delta

    def build_from_vector(self, x: np.ndarray) -> None:
        """Populate the sketch from a dense non-negative frequency vector."""
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.n:
            raise ValueError(f"vector has length {x.shape[0]}, expected {self.n}")
        if np.any(x < 0):
            raise ValueError("Count-Min requires non-negative frequencies")
        self.table[:] = 0.0
        buckets = self._bucket_hashes.buckets(np.arange(self.n), self.width)
        scatter_add_scalar(self.table, buckets, None, x)

    def query(self, index: int) -> float:
        """Upper-bounding estimate of coordinate ``index``."""
        keys = np.array([index], dtype=np.int64)
        check_coordinate_range(keys, self.n)
        buckets = self._bucket_hashes.buckets(keys, self.width)[:, 0]
        return float(np.min(self.table[np.arange(self.depth), buckets]))

    def query_all(self) -> np.ndarray:
        """Upper-bounding estimates for all coordinates."""
        buckets = self._bucket_hashes.buckets(np.arange(self.n), self.width)
        estimates = self.table[np.arange(self.depth)[:, None], buckets]
        return np.min(estimates, axis=0)
