"""The mergeable-summary contract used by the k-party coordinator runtime.

In the coordinator (star) model each of the k sites builds a summary of its
local shard and ships it upstream; the coordinator combines the k summaries
into a summary of the *union* of the shards.  All sketches in this repo are
linear maps, so "combine" is always an entrywise sum of sketch states — the
defining property that makes the two-party protocols generalize to k sites
without extra rounds.

A conforming sketch exposes:

``empty_copy()``
    A new sketch sharing this sketch's randomness (hash functions / sketch
    matrix) with a zeroed state.  Sites at the ends of a star all construct
    the sketch from the same broadcast seed, which is modelled by cloning a
    shared template.

``update_many(indices, values)``
    Batched, vectorized state update: add ``values[t]`` at coordinate
    ``indices[t]`` for all ``t`` at once (no per-entry Python loops).
    For the matrix-backed linear sketches (:class:`LinearStateMixin` hosts:
    AMS, ``l_0`` sketch, ``l_0``-sampler) matrix-shaped ``values``
    accumulate one sketch column per input column, which is how a site
    sketches the rows of its matrix shard in one call; CountSketch's fixed
    table takes scalar deltas by default and switches to vector-valued
    counters when fed matrix-shaped values (one row-vector per index).

``merge(other)``
    Entrywise combination of two states built with identical randomness
    (enforced: merging sketches drawn from different generators raises).
    Returns ``self`` so coordinators can ``functools.reduce`` over site
    summaries.  Merging is associative and commutative (it is a sum), which
    the property tests assert.

``state_array()`` / ``load_state_array(state)``
    The accumulated state as one numpy array (``None`` before the first
    update), and its inverse.  This is the serialization hook used by the
    streaming runtime: a site's *delta* — everything accumulated since its
    last upload — is exactly the state array of a pending ``empty_copy``,
    so :mod:`repro.sketch.serialization` can put any conforming sketch on
    the wire without knowing its family.
"""

from __future__ import annotations

import copy
from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class MergeableSketch(Protocol):
    """Structural type for sketches the coordinator can combine."""

    def empty_copy(self) -> "MergeableSketch":
        """A fresh sketch with the same randomness and a zeroed state."""
        ...

    def update_many(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Add ``values`` at coordinates ``indices`` (batched, vectorized)."""
        ...

    def merge(self, other: "MergeableSketch") -> "MergeableSketch":
        """Entrywise-combine ``other``'s state into this sketch; returns self."""
        ...

    def state_array(self) -> np.ndarray | None:
        """The accumulated state as one array (``None`` if never updated)."""
        ...

    def load_state_array(self, state: np.ndarray | None) -> None:
        """Replace the accumulated state with ``state`` (``None`` clears it)."""
        ...


def check_coordinate_range(indices: np.ndarray, n: int) -> None:
    """Coordinates must lie in ``[0, n)``.

    The dense-table era got this for free (an out-of-range gather raised);
    lazy hashes happily hash any integer, so the kernel-based update paths
    enforce the universe bound explicitly — in every mode, which also
    closes the historical gap where negative indices silently wrapped.
    """
    if indices.size and (int(indices.min()) < 0 or int(indices.max()) >= n):
        bad = indices[(indices < 0) | (indices >= n)][0]
        raise IndexError(f"coordinate {int(bad)} out of range for universe [0, {n})")


def check_mergeable(this, other) -> None:
    """Shared sanity check: merging requires identical type and dimensions."""
    if type(this) is not type(other):
        raise TypeError(
            f"cannot merge {type(other).__name__} into {type(this).__name__}"
        )
    if getattr(this, "n", None) != getattr(other, "n", None):
        raise ValueError(
            f"cannot merge sketches over different universes "
            f"({getattr(other, 'n', None)} vs {getattr(this, 'n', None)})"
        )


def check_same_randomness(mine: np.ndarray, theirs: np.ndarray, what: str) -> None:
    """Merging only makes sense for states built with identical randomness.

    Clones from ``empty_copy`` share the arrays, so the identity fast path
    covers the intended workflow; endpoints that constructed the sketch
    independently from a broadcast seed hold equal-valued arrays instead.
    """
    if mine is theirs:
        return
    if mine.shape != theirs.shape or not np.array_equal(mine, theirs):
        raise ValueError(
            f"cannot merge sketches with different {what}; both sides must be "
            f"built from the same shared randomness (use empty_copy() or a "
            f"common seed)"
        )


class LinearStateMixin:
    """Mergeable-state plumbing for the linear-map sketches.

    Host classes expose ``num_rows`` (the sketch dimension).  The
    accumulated ``state`` is the partial linear image ``S[:, idx] @ values``
    summed over all updates: ``S x`` when values are scalars per coordinate,
    or ``S X`` (one column per input column) when a site sketches a matrix
    shard in one batched call.  ``state`` is ``None`` until the first update
    so its trailing shape can adapt to the input.

    How the image is computed is a host hook: matrix-backed hosts keep the
    historical dense gather+matmul (:meth:`_contribution`'s default), while
    the kernel-based hosts (AMS in hash mode, the ``l_0`` machinery)
    scatter each batch through :mod:`repro.sketch.kernels` without ever
    materializing ``S``.  Likewise the randomness-identity check behind
    ``merge`` compares whatever arrays actually determine the host's
    randomness (:meth:`_randomness_fingerprints`), dense matrix or hash
    coefficients alike.
    """

    state: np.ndarray | None = None

    #: Optional preallocated backing buffer (shared-memory view) for the
    #: state; installed by :meth:`pin_state_buffer`.  While the logical
    #: state is empty the buffer is merely reserved (``state`` stays
    #: ``None``); the first update/merge *copies* into it — preserving
    #: rebinding semantics such as ``-0.0`` exactly — and every later
    #: update accumulates in place, so the owner of the buffer (a resident
    #: worker's coordinator) always reads the live state with zero copies.
    _pinned_buf: np.ndarray | None = None

    def pin_state_buffer(self, buf: np.ndarray) -> None:
        """Back this sketch's state with a caller-owned (e.g. shm) buffer.

        ``buf`` fixes the state's shape and dtype from now on; updates of a
        different trailing shape raise instead of rebinding.  An existing
        state is copied into the buffer.
        """
        if self.state is not None:
            if self.state.shape != buf.shape:
                raise ValueError(
                    f"pinned buffer of shape {buf.shape} does not fit "
                    f"existing state of shape {self.state.shape}"
                )
            buf[...] = self.state
            self.state = buf
        self._pinned_buf = buf

    def unpin_state_buffer(self) -> None:
        """Detach from the pinned buffer (copying any live state out of it)."""
        if self._pinned_buf is None:
            return
        if self.state is self._pinned_buf:
            self.state = self.state.copy()
        self._pinned_buf = None

    def _adopt_state(self, contribution: np.ndarray) -> None:
        """First write: rebind, or copy into the pinned buffer if present."""
        if self._pinned_buf is None:
            self.state = contribution
            return
        if contribution.shape != self._pinned_buf.shape:
            raise ValueError(
                f"update of shape {contribution.shape} does not fit the "
                f"pinned state buffer of shape {self._pinned_buf.shape}"
            )
        self._pinned_buf[...] = contribution
        self.state = self._pinned_buf

    # ------------------------------------------------------------ host hooks
    def _contribution(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """The partial image ``S[:, indices] @ values`` of one batch."""
        return self.matrix[:, indices] @ values

    def _randomness_fingerprints(self):
        """(name, array) pairs that must match for two sketches to merge."""
        return [("sketch matrices", self.matrix)]

    # -------------------------------------------------------------- contract
    def update_many(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Add ``values[t]`` at coordinate ``indices[t]``, batched."""
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        values = np.asarray(values)
        if values.shape[0] != indices.shape[0]:
            raise ValueError(
                f"values lead dimension {values.shape[0]} does not match "
                f"{indices.shape[0]} indices"
            )
        check_coordinate_range(indices, self.n)
        contribution = self._contribution(indices, values)
        if self.state is None:
            self._adopt_state(contribution)
        elif self.state.shape != contribution.shape:
            raise ValueError(
                f"update of shape {contribution.shape} does not match "
                f"accumulated state of shape {self.state.shape}"
            )
        elif self.state is self._pinned_buf:
            self.state += contribution
        else:
            self.state = self.state + contribution

    def merge(self, other):
        """Entrywise-combine ``other``'s state into this sketch; returns self."""
        check_mergeable(self, other)
        if self.num_rows != other.num_rows:
            raise ValueError(
                f"cannot merge sketches with {other.num_rows} rows "
                f"into one with {self.num_rows} rows"
            )
        for (name, mine), (_, theirs) in zip(
            self._randomness_fingerprints(), other._randomness_fingerprints()
        ):
            check_same_randomness(mine, theirs, name)
        if other.state is None:
            return self
        if self.state is None:
            if self._pinned_buf is not None:
                self._adopt_state(other.state)
            else:
                self.state = other.state.copy()
        elif self.state.shape != other.state.shape:
            raise ValueError(
                f"cannot merge state of shape {other.state.shape} into "
                f"state of shape {self.state.shape}"
            )
        elif self.state is self._pinned_buf:
            self.state += other.state
        else:
            self.state = self.state + other.state
        return self

    def empty_copy(self):
        """A fresh sketch sharing this one's randomness, with no state yet."""
        clone = copy.copy(self)
        clone.state = None
        clone._pinned_buf = None
        return clone

    def state_array(self) -> np.ndarray | None:
        """The accumulated partial image ``S x`` (``None`` before any update)."""
        return self.state

    def load_state_array(self, state: np.ndarray | None) -> None:
        """Install a (deserialized) state; ``None`` resets to the empty state."""
        if state is None:
            self.state = None
            return
        state = np.asarray(state)
        if state.shape[0] != self.num_rows:
            raise ValueError(
                f"state has {state.shape[0]} rows, expected {self.num_rows}"
            )
        if self._pinned_buf is not None:
            self._adopt_state(state)
        else:
            self.state = state
