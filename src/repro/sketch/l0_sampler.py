"""Linear ``l_0``-sampler (Lemma 2.6 substitute).

Samples a (near-)uniform non-zero coordinate of an integer vector from a
small linear sketch.  Construction: ``L = ceil(log2 n) + 2`` subsampling
levels; at level ``g`` each coordinate survives with probability ``2^-g``.
For each level we keep three linear measurements of the surviving
sub-vector ``y``:

* ``s0 = sum_j y_j``
* ``s1 = sum_j j * y_j``
* ``f  = sum_j c_j * y_j`` for random coefficients ``c_j`` (a fingerprint)

If exactly one coordinate of ``y`` is non-zero, then ``j* = s1 / s0`` and the
fingerprint check ``f == c_{j*} * s0`` passes; if more than one coordinate is
non-zero the check fails with high probability.  The sampler scans levels for
a verified 1-sparse recovery; because level ``g ~ log2 ||x||_0`` leaves a
single survivor with constant probability, repeating the structure a few
times makes failure unlikely, and the returned coordinate is uniform over the
support (every non-zero coordinate is equally likely to be the unique
survivor).

Like the ``l_0`` sketch, the measurement matrix is never materialized:
updates run through the fused level-expansion scatter kernels, recovery is
one vectorized scan over all ``(repetition, level)`` cells, and
``mode="hash"`` derives all per-coordinate randomness from lazy hashes so
the universe can be ``2^30`` and beyond.  Measurements accumulate in
int64 exactly like the historical dense matmul: exact while each
measurement fits, i.e. ``(index + 1) * |value| < 2^63`` for ``s1`` — past
that the fingerprint check rejects the (wrapped) cell rather than return a
wrong coordinate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sketch.hashing import PRIME_61
from repro.sketch.kernels import (
    StackedKWiseHash,
    bincount_rows,
    count_alive_levels,
    expand_levels,
)
from repro.sketch.mergeable import LinearStateMixin

#: Fingerprint coefficients come from [1, COEFF_BOUND).
COEFF_BOUND = 1 << 20

#: ``matrix`` materialization bound (inspection/tests only).
_DENSE_MATERIALIZE_MAX = 1 << 24


@dataclass
class L0SampleOutcome:
    """Result of attempting a recovery from an ``l_0``-sampler sketch."""

    index: int | None
    value: int | None
    level: int | None

    @property
    def success(self) -> bool:
        return self.index is not None


class L0Sampler(LinearStateMixin):
    """Uniform sampler over the support of an integer vector.

    Like the other linear sketches, the sampler is mergeable: per-site
    partial images accumulated with ``update_many`` combine entrywise via
    ``merge`` into the sketch of the union of the shards.

    Parameters
    ----------
    n:
        Input dimension.
    repetitions:
        Number of independent copies of the level structure; the sampler
        succeeds if any copy recovers a verified 1-sparse level.
    rng:
        Shared randomness.
    mode:
        ``"dense"`` (default): per-coordinate priorities and fingerprint
        coefficients drawn from ``rng`` exactly as before the kernel layer.
        ``"hash"``: the same quantities from lazy pairwise-independent
        hashes — memory independent of ``n``.
    """

    def __init__(
        self,
        n: int,
        rng: np.random.Generator,
        *,
        repetitions: int = 8,
        mode: str = "dense",
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        if mode not in ("dense", "hash"):
            raise ValueError(f"mode must be 'dense' or 'hash', got {mode!r}")
        self.n = n
        self.repetitions = repetitions
        self.levels = int(math.ceil(math.log2(max(n, 2)))) + 2
        self.rows_per_level = 3
        self.num_rows = repetitions * self.levels * self.rows_per_level
        self.mode = mode
        self._thresholds = 2.0 ** (-np.arange(self.levels))

        if mode == "dense":
            # Historical draw order: per repetition, priorities then
            # fingerprint coefficients.
            priorities = np.empty((repetitions, n))
            coeffs = np.empty((repetitions, n), dtype=np.int64)
            for rep in range(repetitions):
                priorities[rep] = rng.uniform(0.0, 1.0, size=n)
                coeffs[rep] = rng.integers(1, COEFF_BOUND, size=n, dtype=np.int64)
            self._priorities = priorities
            self._fingerprint_coeffs = coeffs
            self._alive_counts = count_alive_levels(
                priorities.reshape(-1), self._thresholds
            ).reshape(repetitions, n)
            self._priority_hash = self._coeff_hash = None
        else:
            self._priority_hash = StackedKWiseHash(2, repetitions, rng)
            self._coeff_hash = StackedKWiseHash(2, repetitions, rng)
            self._priorities = self._fingerprint_coeffs = self._alive_counts = None

    # ------------------------------------------------------------ randomness
    def _batch_randomness(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(alive level counts, fingerprint coeffs), each ``(reps, batch)``."""
        if self.mode == "dense":
            return self._alive_counts[:, indices], self._fingerprint_coeffs[:, indices]
        priorities = self._priority_hash.values(indices) / PRIME_61
        counts = count_alive_levels(priorities.reshape(-1), self._thresholds).reshape(
            priorities.shape
        )
        coeffs = 1 + (
            self._coeff_hash.values(indices) % np.uint64(COEFF_BOUND - 1)
        ).astype(np.int64)
        return counts, coeffs

    def _randomness_fingerprints(self):
        if self.mode == "dense":
            return [
                ("level priorities", self._priorities),
                ("fingerprint coefficients", self._fingerprint_coeffs),
            ]
        return [
            ("priority hashes", self._priority_hash.coeffs),
            ("coefficient hashes", self._coeff_hash.coeffs),
        ]

    @property
    def matrix(self) -> np.ndarray:
        """The dense measurement matrix, materialized on demand (inspection).

        Reconstruction reproduces the historical dense layout exactly; the
        update/recovery paths never build it.
        """
        if self.num_rows * self.n > _DENSE_MATERIALIZE_MAX:
            raise ValueError(
                f"refusing to materialize a {self.num_rows} x {self.n} "
                f"measurement matrix; use update_many()/apply(), which stay lazy"
            )
        keys = np.arange(self.n, dtype=np.int64)
        counts, coeffs = self._batch_randomness(keys)
        matrix = np.zeros((self.num_rows, self.n), dtype=np.int64)
        for rep in range(self.repetitions):
            take, level = expand_levels(counts[rep])
            base = (rep * self.levels + level) * self.rows_per_level
            matrix[base + 0, keys[take]] = 1
            matrix[base + 1, keys[take]] = keys[take] + 1  # +1 keeps s1 != 0 for j = 0
            matrix[base + 2, keys[take]] = coeffs[rep, take]
        return matrix

    # ------------------------------------------------------------------ api
    def _contribution(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Fused scatter of one batch: ``T[:, indices] @ values`` without ``T``."""
        counts, coeffs = self._batch_randomness(indices)
        exact = bool(np.issubdtype(values.dtype, np.integer))
        rows_parts: list[np.ndarray] = []
        weights_parts: list[np.ndarray] = []
        shifted = indices + 1  # +1 keeps s1 != 0 for coordinate 0
        for rep in range(self.repetitions):
            take, level = expand_levels(counts[rep])
            base = (rep * self.levels + level) * self.rows_per_level
            taken = values[take]
            if values.ndim == 1:
                rows_parts += [base, base + 1, base + 2]
                weights_parts += [taken, shifted[take] * taken, coeffs[rep, take] * taken]
            else:
                rows_parts += [base, base + 1, base + 2]
                weights_parts += [
                    taken,
                    shifted[take, None] * taken,
                    coeffs[rep, take, None] * taken,
                ]
        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=np.int64)
        if values.ndim == 1:
            weights = (
                np.concatenate(weights_parts)
                if weights_parts
                else np.empty(0, dtype=values.dtype)
            )
        else:
            weights = (
                np.concatenate(weights_parts, axis=0)
                if weights_parts
                else np.empty((0, values.shape[1]), dtype=values.dtype)
            )
        return bincount_rows(rows, weights, self.num_rows, exact_int=exact)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute the sampler sketch ``T x`` (integer inputs expected)."""
        x = np.asarray(x)
        if np.issubdtype(x.dtype, np.integer):
            x = x.astype(np.int64)
        return self._contribution(np.arange(self.n, dtype=np.int64), x)

    def sample(self, sketched: np.ndarray) -> L0SampleOutcome:
        """Recover a uniform non-zero coordinate from the sketch ``T x``.

        Fully vectorized: every ``(repetition, level)`` cell is decoded and
        verified at once, then the scan order of the historical loops —
        repetitions ascending, levels descending within a repetition — picks
        the first verified singleton.
        """
        sketched = np.asarray(sketched).reshape(-1)
        if sketched.shape[0] != self.num_rows:
            raise ValueError(
                f"sketch has {sketched.shape[0]} rows, expected {self.num_rows}"
            )
        if np.issubdtype(sketched.dtype, np.floating):
            cells = np.trunc(sketched).astype(np.int64)  # match int() truncation
        else:
            cells = sketched.astype(np.int64)
        per_rep = cells.reshape(self.repetitions, self.levels, self.rows_per_level)
        s0, s1, fingerprint = per_rep[..., 0], per_rep[..., 1], per_rep[..., 2]

        candidate = s0 != 0
        safe_s0 = np.where(candidate, s0, 1)
        candidate &= s1 % safe_s0 == 0
        index = s1 // safe_s0 - 1
        candidate &= (index >= 0) & (index < self.n)
        clipped = np.clip(index, 0, self.n - 1)
        expected = self._fingerprint_at(clipped) * s0
        candidate &= fingerprint == expected
        if not candidate.any():
            return L0SampleOutcome(index=None, value=None, level=None)
        # Scan order: repetition ascending, level descending — flip the
        # level axis so the first True in C order is the historical pick.
        flipped = candidate[:, ::-1]
        flat = int(np.argmax(flipped))
        rep, flipped_level = divmod(flat, self.levels)
        level = self.levels - 1 - flipped_level
        return L0SampleOutcome(
            index=int(index[rep, level]),
            value=int(s0[rep, level]),
            level=int(level),
        )

    def _fingerprint_at(self, indices: np.ndarray) -> np.ndarray:
        """Fingerprint coefficients ``c_rep(j)``, shape ``(reps, ...)``.

        ``indices`` has shape ``(reps, levels)``: entry ``[r, g]`` is looked
        up under repetition ``r``'s coefficients.
        """
        if self.mode == "dense":
            return np.take_along_axis(
                self._fingerprint_coeffs, indices.reshape(self.repetitions, -1), axis=1
            ).reshape(indices.shape)
        # Row-wise evaluation: repetition r's hash only touches its own
        # key block (values() would redundantly hash every block under
        # every repetition).
        own = self._coeff_hash.values_grid(indices)
        return 1 + (own % np.uint64(COEFF_BOUND - 1)).astype(np.int64)
