"""Linear ``l_0``-sampler (Lemma 2.6 substitute).

Samples a (near-)uniform non-zero coordinate of an integer vector from a
small linear sketch.  Construction: ``L = ceil(log2 n) + 1`` subsampling
levels; at level ``g`` each coordinate survives with probability ``2^-g``.
For each level we keep three linear measurements of the surviving
sub-vector ``y``:

* ``s0 = sum_j y_j``
* ``s1 = sum_j j * y_j``
* ``f  = sum_j c_j * y_j`` for random coefficients ``c_j`` (a fingerprint)

If exactly one coordinate of ``y`` is non-zero, then ``j* = s1 / s0`` and the
fingerprint check ``f == c_{j*} * s0`` passes; if more than one coordinate is
non-zero the check fails with high probability.  The sampler scans levels for
a verified 1-sparse recovery; because level ``g ~ log2 ||x||_0`` leaves a
single survivor with constant probability, repeating the structure a few
times makes failure unlikely, and the returned coordinate is uniform over the
support (every non-zero coordinate is equally likely to be the unique
survivor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sketch.mergeable import LinearStateMixin

#: Fingerprint coefficients come from [1, COEFF_BOUND).
COEFF_BOUND = 1 << 20


@dataclass
class L0SampleOutcome:
    """Result of attempting a recovery from an ``l_0``-sampler sketch."""

    index: int | None
    value: int | None
    level: int | None

    @property
    def success(self) -> bool:
        return self.index is not None


class L0Sampler(LinearStateMixin):
    """Uniform sampler over the support of an integer vector.

    Like the other linear sketches, the sampler is mergeable: per-site
    partial images accumulated with ``update_many`` combine entrywise via
    ``merge`` into the sketch of the union of the shards.

    Parameters
    ----------
    n:
        Input dimension.
    repetitions:
        Number of independent copies of the level structure; the sampler
        succeeds if any copy recovers a verified 1-sparse level.
    rng:
        Shared randomness.
    """

    def __init__(self, n: int, rng: np.random.Generator, *, repetitions: int = 8) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self.n = n
        self.repetitions = repetitions
        self.levels = int(math.ceil(math.log2(max(n, 2)))) + 2
        self.rows_per_level = 3
        self.num_rows = repetitions * self.levels * self.rows_per_level

        matrix = np.zeros((self.num_rows, n), dtype=np.int64)
        coords = np.arange(n, dtype=np.int64)
        self._fingerprint_coeffs = np.zeros((repetitions, n), dtype=np.int64)
        thresholds = 2.0 ** (-np.arange(self.levels))
        for rep in range(repetitions):
            priorities = rng.uniform(0.0, 1.0, size=n)
            coeffs = rng.integers(1, COEFF_BOUND, size=n, dtype=np.int64)
            self._fingerprint_coeffs[rep] = coeffs
            for level in range(self.levels):
                alive = priorities < thresholds[level]
                base = (rep * self.levels + level) * self.rows_per_level
                matrix[base + 0, alive] = 1
                matrix[base + 1, alive] = coords[alive] + 1  # +1 keeps s1 != 0 for j = 0
                matrix[base + 2, alive] = coeffs[alive]
        self.matrix = matrix

    # ------------------------------------------------------------------ api
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute the sampler sketch ``T x`` (integer inputs expected)."""
        x = np.asarray(x)
        if np.issubdtype(x.dtype, np.integer):
            return self.matrix @ x.astype(np.int64)
        return self.matrix @ x

    def sample(self, sketched: np.ndarray) -> L0SampleOutcome:
        """Recover a uniform non-zero coordinate from the sketch ``T x``."""
        sketched = np.asarray(sketched).reshape(-1)
        if sketched.shape[0] != self.num_rows:
            raise ValueError(
                f"sketch has {sketched.shape[0]} rows, expected {self.num_rows}"
            )
        per_rep = sketched.reshape(self.repetitions, self.levels, self.rows_per_level)
        for rep in range(self.repetitions):
            # Scan from the most aggressive subsampling level downwards; the
            # first verified singleton is the sample for this repetition.
            for level in range(self.levels - 1, -1, -1):
                s0, s1, fingerprint = (int(v) for v in per_rep[rep, level])
                if s0 == 0:
                    continue
                if s1 % s0 != 0:
                    continue
                shifted_index = s1 // s0
                index = shifted_index - 1
                if not 0 <= index < self.n:
                    continue
                expected_fingerprint = int(self._fingerprint_coeffs[rep, index]) * s0
                if fingerprint != expected_fingerprint:
                    continue
                return L0SampleOutcome(index=index, value=s0, level=level)
        return L0SampleOutcome(index=None, value=None, level=None)
