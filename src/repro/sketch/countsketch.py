"""CountSketch: point queries and heavy hitters on a frequency vector.

Used by the heavy-hitter baseline (Pagh's compressed matrix multiplication)
and by tests.  Each of ``depth`` rows hashes coordinates into ``width``
buckets with a pairwise-independent hash and a 4-wise-independent sign; a
point query returns the median over rows of ``sign * bucket``.

Hashing is *lazy* (:mod:`repro.sketch.kernels`): bucket and sign values are
evaluated on demand for each update batch instead of being precomputed as
dense universe-sized tables, so construction costs ``O(width x depth)``
memory and time independent of ``n`` — a CountSketch over a ``2^30``
universe builds in microseconds.  The hash values (and therefore every
table state and transcript) are bit-identical to the historical dense
implementation; full-universe queries over small universes cache the dense
tables on first use to keep repeated queries cheap.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.sketch.kernels import StackedKWiseHash, scatter_add_scalar, scatter_add_vector
from repro.sketch.mergeable import (
    check_coordinate_range,
    check_mergeable,
    check_same_randomness,
)

#: Full-universe helpers (``query_all``/``bucket_of``) materialize and cache
#: dense hash tables only below this universe size; above it they stream in
#: chunks of :data:`_CHUNK` keys so memory stays bounded.
_DENSE_CACHE_MAX = 1 << 22

#: Keys hashed per chunk in streamed full-universe operations.
_CHUNK = 1 << 20


class CountSketch:
    """CountSketch with ``depth`` rows of ``width`` buckets each.

    Implements the :class:`repro.sketch.mergeable.MergeableSketch` contract:
    tables built with identical hash functions combine entrywise, so k sites
    can sketch their local frequency vectors and a coordinator can merge the
    summaries.

    Counters are scalar by default (the classic frequency-vector sketch).
    Feeding :meth:`update_many` matrix-shaped deltas switches the table to
    *vector-valued* counters — bucket ``(r, w)`` holds the sign-weighted sum
    of the updated row-vectors — which is how the streaming runtime sketches
    the rows of a matrix ``A``: because the construction stays linear, the
    coordinator can multiply the merged table by ``B`` on the right and
    obtain, per column ``j``, a classic CountSketch (same hashes) of column
    ``j`` of ``C = A B``, from which :meth:`query_rows` recovers per-entry
    estimates.
    """

    def __init__(self, n: int, width: int, depth: int, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.n = n
        self.width = width
        self.depth = depth
        # Same draw order as the historical dense constructor: all bucket
        # hashes first, then all sign hashes.
        self._bucket_hashes = StackedKWiseHash(2, depth, rng)
        self._sign_hashes = StackedKWiseHash(4, depth, rng)
        # Dense-table cache for small universes, shared across empty_copy
        # clones (they share the hash functions, hence the tables).
        self._cache: dict[str, np.ndarray] = {}
        self.table = np.zeros((depth, width), dtype=float)
        #: Optional caller-owned (e.g. shared-memory) backing buffer; see
        #: :meth:`pin_table_buffer`.
        self._pinned_table: np.ndarray | None = None

    # ---------------------------------------------------------- pinned buffer
    def pin_table_buffer(self, buf: np.ndarray) -> None:
        """Back the counter table with a caller-owned (e.g. shm) buffer.

        A 2-D buffer (scalar counters) is adopted immediately; a 3-D buffer
        (vector-valued counters of a known dimension) is reserved and
        adopted when the table widens on the first vector update, so the
        empty table keeps its historical 2-D shape (and wire encoding).
        Any existing counters are copied into the buffer.
        """
        if buf.shape[:2] != (self.depth, self.width) or buf.ndim not in (2, 3):
            raise ValueError(
                f"buffer of shape {buf.shape} does not fit a "
                f"({self.depth}, {self.width}) sketch"
            )
        if buf.shape == self.table.shape:
            buf[...] = self.table
            self.table = buf
        elif buf.ndim == 2 or np.any(self.table):
            raise ValueError(
                f"buffer of shape {buf.shape} does not fit the current "
                f"table of shape {self.table.shape}"
            )
        self._pinned_table = buf

    def unpin_table_buffer(self) -> None:
        """Detach from the pinned buffer (copying live counters out of it)."""
        if self._pinned_table is None:
            return
        if self.table is self._pinned_table:
            self.table = self.table.copy()
        self._pinned_table = None

    # --------------------------------------------------------------- hashing
    def _batch_buckets(self, keys: np.ndarray) -> np.ndarray:
        cached = self._cache.get("buckets")
        if cached is not None:
            return cached[:, keys]
        return self._bucket_hashes.buckets(keys, self.width)

    def _batch_signs(self, keys: np.ndarray) -> np.ndarray:
        cached = self._cache.get("signs")
        if cached is not None:
            return cached[:, keys]
        return self._sign_hashes.signs(keys)

    def _hash_pair(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(buckets, signs) for a batch, with adaptive densification.

        Small universes whose cumulative lazily-hashed key count reaches
        ``n`` switch to cached dense tables: from then on the one-off
        densification cost is amortized and gathers replace hashing (~10x
        on long streams).  Purely a speed policy — the returned values are
        identical either way; the cache (and the counter) is shared with
        every ``empty_copy`` clone, so streaming sites warm it together.
        """
        check_coordinate_range(keys, self.n)
        if "buckets" not in self._cache and self.n <= _DENSE_CACHE_MAX:
            lazy = self._cache.get("lazy_keys", 0) + keys.size
            self._cache["lazy_keys"] = lazy
            if lazy >= self.n:
                self._ensure_dense_cache()
        return self._batch_buckets(keys), self._batch_signs(keys)

    def _ensure_dense_cache(self) -> None:
        if "buckets" in self._cache:
            return
        if self.n > _DENSE_CACHE_MAX:
            raise ValueError(
                f"dense hash tables over a universe of {self.n} keys exceed "
                f"the cache bound {_DENSE_CACHE_MAX}; use the batched update/"
                f"query APIs instead"
            )
        keys = np.arange(self.n)
        self._cache["buckets"] = self._bucket_hashes.buckets(keys, self.width)
        self._cache["signs"] = self._sign_hashes.signs(keys)

    @property
    def bucket_of(self) -> np.ndarray:
        """Dense ``(depth, n)`` bucket table (materialized on first access).

        Kept for inspection and backward compatibility; the update/query
        paths evaluate hashes lazily and never require it.  Raises for
        universes past the dense-cache bound.
        """
        self._ensure_dense_cache()
        return self._cache["buckets"]

    @property
    def sign_of(self) -> np.ndarray:
        """Dense ``(depth, n)`` sign table (see :attr:`bucket_of`)."""
        self._ensure_dense_cache()
        return self._cache["signs"]

    # ----------------------------------------------------------------- build
    def update(self, index: int, delta: float = 1.0) -> None:
        """Add ``delta`` to coordinate ``index``."""
        self._require_scalar_table()
        keys = np.array([index], dtype=np.int64)
        buckets, signs = self._hash_pair(keys)
        # Direct indexed add: one element per row, no width-sized scatter.
        self.table[np.arange(self.depth), buckets[:, 0]] += signs[:, 0] * delta

    def update_many(self, indices: np.ndarray, deltas: np.ndarray | None = None) -> None:
        """Batched :meth:`update`: add ``deltas[t]`` at ``indices[t]`` for all ``t``.

        Vectorized over the updates: one lazy hash evaluation of the batch
        and one fused flattened ``np.bincount`` covering every sketch row
        (:mod:`repro.sketch.kernels`); with ``deltas`` omitted every listed
        coordinate is incremented by one.  Matrix-shaped ``deltas`` (one
        row-vector per index) switch the table to vector-valued counters;
        scalar and vector updates cannot mix.  Dimensionality is taken
        literally: a column vector of shape ``(len(indices), 1)`` means
        vector counters of dimension 1, not scalar updates — flatten to 1-D
        for the scalar path.  Accumulation is exact (order-independent) for
        integer-valued deltas within the float64-exact ``2^53`` range, the
        invariant every engine and streaming path maintains.
        """
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        if deltas is None:
            deltas = np.ones(indices.shape[0])
        else:
            deltas = np.asarray(deltas, dtype=float)
            if deltas.ndim == 0:  # a bare scalar pairs with a single index
                deltas = deltas.reshape(1)
            if deltas.ndim > 2:
                raise ValueError(f"deltas must be 1- or 2-dimensional, got {deltas.ndim}")
            if deltas.shape[0] != indices.shape[0]:
                raise ValueError("indices and deltas must have matching length")
        if indices.size == 0:
            # A no-op payload must not switch the table's counter shape.
            return
        buckets, signs = self._hash_pair(indices)
        if deltas.ndim == 2:
            self._require_vector_table(deltas.shape[1])
            scatter_add_vector(self.table, buckets, signs, deltas)
            return
        if self.table.ndim != 2:
            raise ValueError(
                "this table holds vector-valued counters; deltas must be "
                "matrix-shaped (len(indices), value_dim), not scalars"
            )
        scatter_add_scalar(self.table, buckets, signs, deltas)

    def _require_vector_table(self, value_dim: int) -> None:
        """Widen an untouched scalar table to vector-valued counters."""
        if self.table.ndim == 3:
            if self.table.shape[2] != value_dim:
                raise ValueError(
                    f"vector updates of dimension {value_dim} do not match "
                    f"counters of dimension {self.table.shape[2]}"
                )
            return
        if np.any(self.table):
            raise ValueError(
                "cannot apply vector-valued updates to a table already "
                "holding scalar updates"
            )
        pinned = self._pinned_table
        if pinned is not None and pinned.ndim == 3 and pinned.shape[2] == value_dim:
            pinned[...] = 0.0
            self.table = pinned
        else:
            self.table = np.zeros((self.depth, self.width, value_dim), dtype=float)

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Entrywise-combine ``other``'s table into this one; returns self."""
        check_mergeable(self, other)
        check_same_randomness(
            self._bucket_hashes.coeffs, other._bucket_hashes.coeffs, "bucket hashes"
        )
        check_same_randomness(
            self._sign_hashes.coeffs, other._sign_hashes.coeffs, "sign hashes"
        )
        if self.table.shape != other.table.shape:
            # An untouched scalar table adopts the other side's vector-valued
            # shape (mirrors the empty-state adoption of the linear sketches).
            if other.table.ndim == 3 and self.table.ndim == 2 and not np.any(self.table):
                pinned = self._pinned_table
                if pinned is not None and pinned.shape == other.table.shape:
                    pinned[...] = other.table
                    self.table = pinned
                else:
                    self.table = other.table.copy()
                return self
            if self.table.ndim == 3 and other.table.ndim == 2 and not np.any(other.table):
                return self
            raise ValueError(
                f"cannot merge tables of shape {other.table.shape} into {self.table.shape}"
            )
        self.table += other.table
        return self

    def empty_copy(self) -> "CountSketch":
        """A fresh sketch sharing this one's hash functions, with a zero table."""
        clone = copy.copy(self)
        clone.table = np.zeros((self.depth, self.width), dtype=float)
        clone._pinned_table = None
        return clone

    def state_array(self) -> np.ndarray:
        """The counter table (never ``None``: an empty table is all zeros)."""
        return self.table

    def load_state_array(self, state: np.ndarray | None) -> None:
        """Install a (deserialized) table; ``None`` resets to all zeros."""
        pinned = self._pinned_table
        if state is None:
            # Reset to the historical empty shape (2-D zeros); a 3-D pinned
            # buffer is re-adopted (and re-zeroed) on the next vector update.
            if pinned is not None and pinned.ndim == 2:
                pinned[...] = 0.0
                self.table = pinned
            else:
                self.table = np.zeros((self.depth, self.width), dtype=float)
            return
        state = np.asarray(state, dtype=float)
        if state.ndim not in (2, 3) or state.shape[:2] != (self.depth, self.width):
            raise ValueError(
                f"table of shape {state.shape} does not fit a "
                f"({self.depth}, {self.width}) sketch"
            )
        if pinned is not None and pinned.shape == state.shape:
            pinned[...] = state
            self.table = pinned
        else:
            self.table = state

    def build_from_vector(self, x: np.ndarray) -> None:
        """Populate the sketch from a dense frequency vector.

        Streams the universe through the lazy hash kernel in bounded-memory
        chunks; starting from a zeroed table the chunked bincounts reproduce
        the historical sequential scatter bit for bit (adding to zero is
        exact), for float inputs included.
        """
        self._require_scalar_table()
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.n:
            raise ValueError(f"vector has length {x.shape[0]}, expected {self.n}")
        self.table[:] = 0.0
        if self.n <= _DENSE_CACHE_MAX:
            # Building from a dense vector hashes the full universe anyway;
            # keep the tables for the next full-universe operation.
            self._ensure_dense_cache()
        for start in range(0, self.n, _CHUNK):
            keys = np.arange(start, min(start + _CHUNK, self.n))
            scatter_add_scalar(
                self.table, self._batch_buckets(keys), self._batch_signs(keys), x[keys]
            )

    # ----------------------------------------------------------------- query
    def _require_scalar_table(self) -> None:
        if self.table.ndim != 2:
            raise ValueError(
                "this table holds vector-valued counters; use query_rows()"
            )

    def query(self, index: int) -> float:
        """Estimate coordinate ``index`` of the underlying vector."""
        self._require_scalar_table()
        keys = np.array([index], dtype=np.int64)
        check_coordinate_range(keys, self.n)
        buckets = self._batch_buckets(keys)[:, 0]
        signs = self._batch_signs(keys)[:, 0]
        estimates = signs * self.table[np.arange(self.depth), buckets]
        return float(np.median(estimates))

    def query_all(self) -> np.ndarray:
        """Estimate every coordinate (length ``n`` vector).

        Small universes hash once into the dense cache; larger ones stream
        in chunks (the output itself is ``O(n)`` either way).
        """
        self._require_scalar_table()
        if self.n <= _DENSE_CACHE_MAX:
            self._ensure_dense_cache()
        out = np.empty(self.n)
        rows = np.arange(self.depth)[:, None]
        for start in range(0, self.n, _CHUNK):
            keys = np.arange(start, min(start + _CHUNK, self.n))
            estimates = self._batch_signs(keys) * self.table[rows, self._batch_buckets(keys)]
            out[keys] = np.median(estimates, axis=0)
        return out

    def query_rows(self) -> np.ndarray:
        """Estimate every row-vector of a vector-valued table (``n x m``).

        Row ``i``'s estimate is the entrywise median over the ``depth``
        repetitions of ``sign_r(i) * table[r, bucket_r(i), :]`` — the classic
        point query applied coordinate by coordinate.
        """
        if self.table.ndim != 3:
            raise ValueError("this table holds scalar counters; use query_all()")
        if self.n <= _DENSE_CACHE_MAX:
            self._ensure_dense_cache()
        out = np.empty((self.n, self.table.shape[2]))
        rows = np.arange(self.depth)[:, None]
        for start in range(0, self.n, _CHUNK):
            keys = np.arange(start, min(start + _CHUNK, self.n))
            estimates = (
                self._batch_signs(keys)[:, :, None]
                * self.table[rows, self._batch_buckets(keys)]
            )
            out[keys] = np.median(estimates, axis=0)
        return out

    def heavy_hitters(self, threshold: float) -> list[tuple[int, float]]:
        """All coordinates whose estimate is at least ``threshold``."""
        estimates = self.query_all()
        hits = np.flatnonzero(estimates >= threshold)
        return [(int(i), float(estimates[i])) for i in hits]
