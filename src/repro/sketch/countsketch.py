"""CountSketch: point queries and heavy hitters on a frequency vector.

Used by the heavy-hitter baseline (Pagh's compressed matrix multiplication)
and by tests.  Each of ``depth`` rows hashes coordinates into ``width``
buckets with a pairwise-independent hash and a 4-wise-independent sign; a
point query returns the median over rows of ``sign * bucket``.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.sketch.hashing import KWiseHash
from repro.sketch.mergeable import check_mergeable, check_same_randomness


class CountSketch:
    """CountSketch with ``depth`` rows of ``width`` buckets each.

    Implements the :class:`repro.sketch.mergeable.MergeableSketch` contract
    for scalar deltas: tables built with identical hash functions combine
    entrywise, so k sites can sketch their local frequency vectors and a
    coordinator can merge the summaries.
    """

    def __init__(self, n: int, width: int, depth: int, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.n = n
        self.width = width
        self.depth = depth
        keys = np.arange(n)
        self.bucket_of = np.stack(
            [KWiseHash(2, rng).buckets(keys, width) for _ in range(depth)]
        )
        self.sign_of = np.stack([KWiseHash(4, rng).signs(keys) for _ in range(depth)])
        self.table = np.zeros((depth, width), dtype=float)

    # ----------------------------------------------------------------- build
    def update(self, index: int, delta: float = 1.0) -> None:
        """Add ``delta`` to coordinate ``index``."""
        for row in range(self.depth):
            self.table[row, self.bucket_of[row, index]] += self.sign_of[row, index] * delta

    def update_many(self, indices: np.ndarray, deltas: np.ndarray | None = None) -> None:
        """Batched :meth:`update`: add ``deltas[t]`` at ``indices[t]`` for all ``t``.

        Vectorized over the updates (one ``np.add.at`` per sketch row); with
        ``deltas`` omitted every listed coordinate is incremented by one.
        """
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        if deltas is None:
            deltas = np.ones(indices.shape[0])
        else:
            deltas = np.asarray(deltas, dtype=float).reshape(-1)
            if deltas.shape[0] != indices.shape[0]:
                raise ValueError("indices and deltas must have matching length")
        for row in range(self.depth):
            np.add.at(
                self.table[row],
                self.bucket_of[row, indices],
                self.sign_of[row, indices] * deltas,
            )

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Entrywise-combine ``other``'s table into this one; returns self."""
        check_mergeable(self, other)
        if self.table.shape != other.table.shape:
            raise ValueError(
                f"cannot merge tables of shape {other.table.shape} into {self.table.shape}"
            )
        check_same_randomness(self.bucket_of, other.bucket_of, "bucket hashes")
        check_same_randomness(self.sign_of, other.sign_of, "sign hashes")
        self.table += other.table
        return self

    def empty_copy(self) -> "CountSketch":
        """A fresh sketch sharing this one's hash functions, with a zero table."""
        clone = copy.copy(self)
        clone.table = np.zeros_like(self.table)
        return clone

    def build_from_vector(self, x: np.ndarray) -> None:
        """Populate the sketch from a dense frequency vector."""
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.n:
            raise ValueError(f"vector has length {x.shape[0]}, expected {self.n}")
        self.table[:] = 0.0
        for row in range(self.depth):
            np.add.at(self.table[row], self.bucket_of[row], self.sign_of[row] * x)

    # ----------------------------------------------------------------- query
    def query(self, index: int) -> float:
        """Estimate coordinate ``index`` of the underlying vector."""
        estimates = [
            self.sign_of[row, index] * self.table[row, self.bucket_of[row, index]]
            for row in range(self.depth)
        ]
        return float(np.median(estimates))

    def query_all(self) -> np.ndarray:
        """Estimate every coordinate (length ``n`` vector)."""
        estimates = np.empty((self.depth, self.n))
        for row in range(self.depth):
            estimates[row] = self.sign_of[row] * self.table[row, self.bucket_of[row]]
        return np.median(estimates, axis=0)

    def heavy_hitters(self, threshold: float) -> list[tuple[int, float]]:
        """All coordinates whose estimate is at least ``threshold``."""
        estimates = self.query_all()
        hits = np.flatnonzero(estimates >= threshold)
        return [(int(i), float(estimates[i])) for i in hits]
