"""CountSketch: point queries and heavy hitters on a frequency vector.

Used by the heavy-hitter baseline (Pagh's compressed matrix multiplication)
and by tests.  Each of ``depth`` rows hashes coordinates into ``width``
buckets with a pairwise-independent hash and a 4-wise-independent sign; a
point query returns the median over rows of ``sign * bucket``.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.sketch.hashing import KWiseHash
from repro.sketch.mergeable import check_mergeable, check_same_randomness


class CountSketch:
    """CountSketch with ``depth`` rows of ``width`` buckets each.

    Implements the :class:`repro.sketch.mergeable.MergeableSketch` contract:
    tables built with identical hash functions combine entrywise, so k sites
    can sketch their local frequency vectors and a coordinator can merge the
    summaries.

    Counters are scalar by default (the classic frequency-vector sketch).
    Feeding :meth:`update_many` matrix-shaped deltas switches the table to
    *vector-valued* counters — bucket ``(r, w)`` holds the sign-weighted sum
    of the updated row-vectors — which is how the streaming runtime sketches
    the rows of a matrix ``A``: because the construction stays linear, the
    coordinator can multiply the merged table by ``B`` on the right and
    obtain, per column ``j``, a classic CountSketch (same hashes) of column
    ``j`` of ``C = A B``, from which :meth:`query_rows` recovers per-entry
    estimates.
    """

    def __init__(self, n: int, width: int, depth: int, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.n = n
        self.width = width
        self.depth = depth
        keys = np.arange(n)
        self.bucket_of = np.stack(
            [KWiseHash(2, rng).buckets(keys, width) for _ in range(depth)]
        )
        self.sign_of = np.stack([KWiseHash(4, rng).signs(keys) for _ in range(depth)])
        self.table = np.zeros((depth, width), dtype=float)

    # ----------------------------------------------------------------- build
    def update(self, index: int, delta: float = 1.0) -> None:
        """Add ``delta`` to coordinate ``index``."""
        self._require_scalar_table()
        for row in range(self.depth):
            self.table[row, self.bucket_of[row, index]] += self.sign_of[row, index] * delta

    def update_many(self, indices: np.ndarray, deltas: np.ndarray | None = None) -> None:
        """Batched :meth:`update`: add ``deltas[t]`` at ``indices[t]`` for all ``t``.

        Vectorized over the updates (one ``np.add.at`` per sketch row); with
        ``deltas`` omitted every listed coordinate is incremented by one.
        Matrix-shaped ``deltas`` (one row-vector per index) switch the table
        to vector-valued counters; scalar and vector updates cannot mix.
        Dimensionality is taken literally: a column vector of shape
        ``(len(indices), 1)`` means vector counters of dimension 1, not
        scalar updates — flatten to 1-D for the scalar path.
        """
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        if deltas is None:
            deltas = np.ones(indices.shape[0])
        else:
            deltas = np.asarray(deltas, dtype=float)
            if deltas.ndim == 0:  # a bare scalar pairs with a single index
                deltas = deltas.reshape(1)
            if deltas.ndim > 2:
                raise ValueError(f"deltas must be 1- or 2-dimensional, got {deltas.ndim}")
            if deltas.shape[0] != indices.shape[0]:
                raise ValueError("indices and deltas must have matching length")
        if indices.size == 0:
            # A no-op payload must not switch the table's counter shape.
            return
        if deltas.ndim == 2:
            self._require_vector_table(deltas.shape[1])
            for row in range(self.depth):
                np.add.at(
                    self.table[row],
                    self.bucket_of[row, indices],
                    self.sign_of[row, indices, None] * deltas,
                )
            return
        if self.table.ndim != 2:
            raise ValueError(
                "this table holds vector-valued counters; deltas must be "
                "matrix-shaped (len(indices), value_dim), not scalars"
            )
        for row in range(self.depth):
            np.add.at(
                self.table[row],
                self.bucket_of[row, indices],
                self.sign_of[row, indices] * deltas,
            )

    def _require_vector_table(self, value_dim: int) -> None:
        """Widen an untouched scalar table to vector-valued counters."""
        if self.table.ndim == 3:
            if self.table.shape[2] != value_dim:
                raise ValueError(
                    f"vector updates of dimension {value_dim} do not match "
                    f"counters of dimension {self.table.shape[2]}"
                )
            return
        if np.any(self.table):
            raise ValueError(
                "cannot apply vector-valued updates to a table already "
                "holding scalar updates"
            )
        self.table = np.zeros((self.depth, self.width, value_dim), dtype=float)

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Entrywise-combine ``other``'s table into this one; returns self."""
        check_mergeable(self, other)
        check_same_randomness(self.bucket_of, other.bucket_of, "bucket hashes")
        check_same_randomness(self.sign_of, other.sign_of, "sign hashes")
        if self.table.shape != other.table.shape:
            # An untouched scalar table adopts the other side's vector-valued
            # shape (mirrors the empty-state adoption of the linear sketches).
            if other.table.ndim == 3 and self.table.ndim == 2 and not np.any(self.table):
                self.table = other.table.copy()
                return self
            if self.table.ndim == 3 and other.table.ndim == 2 and not np.any(other.table):
                return self
            raise ValueError(
                f"cannot merge tables of shape {other.table.shape} into {self.table.shape}"
            )
        self.table += other.table
        return self

    def empty_copy(self) -> "CountSketch":
        """A fresh sketch sharing this one's hash functions, with a zero table."""
        clone = copy.copy(self)
        clone.table = np.zeros((self.depth, self.width), dtype=float)
        return clone

    def state_array(self) -> np.ndarray:
        """The counter table (never ``None``: an empty table is all zeros)."""
        return self.table

    def load_state_array(self, state: np.ndarray | None) -> None:
        """Install a (deserialized) table; ``None`` resets to all zeros."""
        if state is None:
            self.table = np.zeros((self.depth, self.width), dtype=float)
            return
        state = np.asarray(state, dtype=float)
        if state.ndim not in (2, 3) or state.shape[:2] != (self.depth, self.width):
            raise ValueError(
                f"table of shape {state.shape} does not fit a "
                f"({self.depth}, {self.width}) sketch"
            )
        self.table = state

    def build_from_vector(self, x: np.ndarray) -> None:
        """Populate the sketch from a dense frequency vector."""
        self._require_scalar_table()
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.n:
            raise ValueError(f"vector has length {x.shape[0]}, expected {self.n}")
        self.table[:] = 0.0
        for row in range(self.depth):
            np.add.at(self.table[row], self.bucket_of[row], self.sign_of[row] * x)

    # ----------------------------------------------------------------- query
    def _require_scalar_table(self) -> None:
        if self.table.ndim != 2:
            raise ValueError(
                "this table holds vector-valued counters; use query_rows()"
            )

    def query(self, index: int) -> float:
        """Estimate coordinate ``index`` of the underlying vector."""
        self._require_scalar_table()
        estimates = [
            self.sign_of[row, index] * self.table[row, self.bucket_of[row, index]]
            for row in range(self.depth)
        ]
        return float(np.median(estimates))

    def query_all(self) -> np.ndarray:
        """Estimate every coordinate (length ``n`` vector)."""
        self._require_scalar_table()
        estimates = np.empty((self.depth, self.n))
        for row in range(self.depth):
            estimates[row] = self.sign_of[row] * self.table[row, self.bucket_of[row]]
        return np.median(estimates, axis=0)

    def query_rows(self) -> np.ndarray:
        """Estimate every row-vector of a vector-valued table (``n x m``).

        Row ``i``'s estimate is the entrywise median over the ``depth``
        repetitions of ``sign_r(i) * table[r, bucket_r(i), :]`` — the classic
        point query applied coordinate by coordinate.
        """
        if self.table.ndim != 3:
            raise ValueError("this table holds scalar counters; use query_all()")
        estimates = np.empty((self.depth, self.n, self.table.shape[2]))
        for row in range(self.depth):
            estimates[row] = (
                self.sign_of[row][:, None] * self.table[row, self.bucket_of[row]]
            )
        return np.median(estimates, axis=0)

    def heavy_hitters(self, threshold: float) -> list[tuple[int, float]]:
        """All coordinates whose estimate is at least ``threshold``."""
        estimates = self.query_all()
        hits = np.flatnonzero(estimates >= threshold)
        return [(int(i), float(estimates[i])) for i in hits]
