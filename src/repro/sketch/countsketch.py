"""CountSketch: point queries and heavy hitters on a frequency vector.

Used by the heavy-hitter baseline (Pagh's compressed matrix multiplication)
and by tests.  Each of ``depth`` rows hashes coordinates into ``width``
buckets with a pairwise-independent hash and a 4-wise-independent sign; a
point query returns the median over rows of ``sign * bucket``.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import KWiseHash


class CountSketch:
    """CountSketch with ``depth`` rows of ``width`` buckets each."""

    def __init__(self, n: int, width: int, depth: int, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.n = n
        self.width = width
        self.depth = depth
        keys = np.arange(n)
        self.bucket_of = np.stack(
            [KWiseHash(2, rng).buckets(keys, width) for _ in range(depth)]
        )
        self.sign_of = np.stack([KWiseHash(4, rng).signs(keys) for _ in range(depth)])
        self.table = np.zeros((depth, width), dtype=float)

    # ----------------------------------------------------------------- build
    def update(self, index: int, delta: float = 1.0) -> None:
        """Add ``delta`` to coordinate ``index``."""
        for row in range(self.depth):
            self.table[row, self.bucket_of[row, index]] += self.sign_of[row, index] * delta

    def build_from_vector(self, x: np.ndarray) -> None:
        """Populate the sketch from a dense frequency vector."""
        x = np.asarray(x, dtype=float)
        if x.shape[0] != self.n:
            raise ValueError(f"vector has length {x.shape[0]}, expected {self.n}")
        self.table[:] = 0.0
        for row in range(self.depth):
            np.add.at(self.table[row], self.bucket_of[row], self.sign_of[row] * x)

    # ----------------------------------------------------------------- query
    def query(self, index: int) -> float:
        """Estimate coordinate ``index`` of the underlying vector."""
        estimates = [
            self.sign_of[row, index] * self.table[row, self.bucket_of[row, index]]
            for row in range(self.depth)
        ]
        return float(np.median(estimates))

    def query_all(self) -> np.ndarray:
        """Estimate every coordinate (length ``n`` vector)."""
        estimates = np.empty((self.depth, self.n))
        for row in range(self.depth):
            estimates[row] = self.sign_of[row] * self.table[row, self.bucket_of[row]]
        return np.median(estimates, axis=0)

    def heavy_hitters(self, threshold: float) -> list[tuple[int, float]]:
        """All coordinates whose estimate is at least ``threshold``."""
        estimates = self.query_all()
        hits = np.flatnonzero(estimates >= threshold)
        return [(int(i), float(estimates[i])) for i in hits]
