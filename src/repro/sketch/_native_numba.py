"""numba ``@njit(nogil=True, cache=True)`` mirrors of the sketch kernels.

Imported lazily by :mod:`repro.sketch._native` — importing this module
requires numba.  Every loop reproduces the NumPy kernel's accumulation
order and arithmetic exactly:

- the modular multiply is the same uint64 split-multiply as
  :func:`repro.sketch.hashing._mulmod_p61` (identical intermediates, so
  identical results for the full ``[0, 2^61 - 1)`` operand range);
- scatters accumulate into a zeroed per-row temporary in batch order and
  then add elementwise into the table — the float association of
  ``table[row] += np.bincount(...)``;
- int64 accumulation wraps on overflow, like ``np.add.at``.

This module lives in its own file (not a closure inside ``_native``) so
``cache=True`` can persist the compiled machine code across processes.
"""

from __future__ import annotations

import numba
import numpy as np

_P61 = np.uint64((1 << 61) - 1)
_MASK32 = np.uint64(0xFFFFFFFF)
_MASK29 = np.uint64((1 << 29) - 1)
_U3 = np.uint64(3)
_U29 = np.uint64(29)
_U32 = np.uint64(32)
_U61 = np.uint64(61)
_U0 = np.uint64(0)


@numba.njit(numba.uint64(numba.uint64, numba.uint64), nogil=True, cache=True)
def _mulmod61(a, b):
    a_hi = a >> _U32
    a_lo = a & _MASK32
    b_hi = b >> _U32
    b_lo = b & _MASK32
    hi = a_hi * b_hi
    mid = a_hi * b_lo + a_lo * b_hi
    lo = a_lo * b_lo
    total = (
        (hi << _U3)
        + (mid >> _U29)
        + ((mid & _MASK29) << _U32)
        + (lo >> _U61)
        + (lo & _P61)
    )
    total = (total >> _U61) + (total & _P61)
    if total >= _P61:
        total -= _P61
    return total


@numba.njit(
    numba.void(numba.uint64[:, ::1], numba.uint64[::1], numba.uint64[:, ::1]),
    nogil=True,
    cache=True,
)
def horner(coeffs, keys, out):
    depth, k = coeffs.shape
    batch = keys.shape[0]
    for d in range(depth):
        for t in range(batch):
            key = keys[t]
            acc = _U0
            for j in range(k):
                acc = _mulmod61(acc, key) + coeffs[d, j]
                if acc >= _P61:
                    acc -= _P61
            out[d, t] = acc


@numba.njit(
    numba.void(numba.uint64[:, ::1], numba.uint64[:, ::1], numba.uint64[:, ::1]),
    nogil=True,
    cache=True,
)
def horner_grid(coeffs, keys, out):
    depth, k = coeffs.shape
    per = keys.shape[1]
    for d in range(depth):
        for t in range(per):
            key = keys[d, t]
            acc = _U0
            for j in range(k):
                acc = _mulmod61(acc, key) + coeffs[d, j]
                if acc >= _P61:
                    acc -= _P61
            out[d, t] = acc


@numba.njit(
    numba.void(
        numba.float64[:, ::1],
        numba.int64[:, ::1],
        numba.float64[:, ::1],
        numba.float64[::1],
    ),
    nogil=True,
    cache=True,
)
def scatter_add_scalar_signed(table, buckets, signs, deltas):
    depth, width = table.shape
    batch = deltas.shape[0]
    tmp = np.zeros(width, dtype=np.float64)
    for r in range(depth):
        for i in range(width):
            tmp[i] = 0.0
        for t in range(batch):
            tmp[buckets[r, t]] += signs[r, t] * deltas[t]
        for i in range(width):
            table[r, i] += tmp[i]


@numba.njit(
    numba.void(numba.float64[:, ::1], numba.int64[:, ::1], numba.float64[::1]),
    nogil=True,
    cache=True,
)
def scatter_add_scalar_unsigned(table, buckets, deltas):
    depth, width = table.shape
    batch = deltas.shape[0]
    tmp = np.zeros(width, dtype=np.float64)
    for r in range(depth):
        for i in range(width):
            tmp[i] = 0.0
        for t in range(batch):
            tmp[buckets[r, t]] += deltas[t]
        for i in range(width):
            table[r, i] += tmp[i]


@numba.njit(
    numba.void(
        numba.float64[:, :, ::1],
        numba.int64[:, ::1],
        numba.float64[:, ::1],
        numba.float64[:, ::1],
    ),
    nogil=True,
    cache=True,
)
def scatter_add_vector(table, buckets, signs, deltas):
    depth, width, m = table.shape
    batch = deltas.shape[0]
    tmp = np.zeros(width, dtype=np.float64)
    for r in range(depth):
        for col in range(m):
            for i in range(width):
                tmp[i] = 0.0
            for t in range(batch):
                tmp[buckets[r, t]] += signs[r, t] * deltas[t, col]
            for i in range(width):
                table[r, i, col] += tmp[i]


@numba.njit(
    numba.void(numba.int64[::1], numba.float64[:, ::1], numba.float64[:, ::1]),
    nogil=True,
    cache=True,
)
def bincount_f64(rows, weights, out):
    batch, m = weights.shape
    for col in range(m):
        for t in range(batch):
            out[rows[t], col] += weights[t, col]


@numba.njit(
    numba.void(numba.int64[::1], numba.int64[:, ::1], numba.int64[:, ::1]),
    nogil=True,
    cache=True,
)
def bincount_i64(rows, weights, out):
    batch, m = weights.shape
    for t in range(batch):
        for col in range(m):
            out[rows[t], col] += weights[t, col]
