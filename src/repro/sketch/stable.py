"""Sampling from standard p-stable distributions.

Indyk's ``l_p`` sketch for ``p in (0, 2]`` uses a sketching matrix with
i.i.d. entries from a standard p-stable distribution:

* ``p = 2``: Gaussian,
* ``p = 1``: Cauchy,
* general ``p``: sampled with the Chambers–Mallows–Stuck (CMS) formula.

The estimator divides by the median of the absolute value of the standard
p-stable distribution, which we compute numerically once per ``p``.
"""

from __future__ import annotations

import functools
import math

import numpy as np
from scipy import optimize, stats


def sample_standard_stable(
    p: float, size: tuple[int, ...] | int, rng: np.random.Generator
) -> np.ndarray:
    """Draw i.i.d. samples from a standard symmetric p-stable distribution.

    Uses closed forms for ``p = 1`` (Cauchy) and ``p = 2`` (Gaussian scaled so
    that the characteristic function is ``exp(-|t|^2)``) and the
    Chambers–Mallows–Stuck formula otherwise.
    """
    if not 0 < p <= 2:
        raise ValueError(f"p must be in (0, 2], got {p}")
    if math.isclose(p, 2.0):
        # Standard 2-stable: N(0, 2) has cf exp(-t^2); N(0,1) is the common
        # convention for AMS-style sketches and only changes the scale, which
        # the median estimator absorbs.  Use N(0, 1).
        return rng.normal(0.0, 1.0, size=size)
    if math.isclose(p, 1.0):
        return rng.standard_cauchy(size=size)
    theta = rng.uniform(-math.pi / 2, math.pi / 2, size=size)
    w = rng.exponential(1.0, size=size)
    # Chambers–Mallows–Stuck for symmetric alpha-stable (beta = 0).
    numerator = np.sin(p * theta)
    denominator = np.cos(theta) ** (1.0 / p)
    tail = (np.cos(theta * (1.0 - p)) / w) ** ((1.0 - p) / p)
    return (numerator / denominator) * tail


@functools.lru_cache(maxsize=None)
def stable_scale_factor(p: float) -> float:
    """Median of ``|X|`` for ``X`` standard symmetric p-stable.

    Dividing the median of ``|<sketch row, x>|`` by this constant yields an
    estimate of ``||x||_p`` (Indyk's median estimator).
    """
    if not 0 < p <= 2:
        raise ValueError(f"p must be in (0, 2], got {p}")
    if math.isclose(p, 2.0):
        return float(stats.norm.ppf(0.75))
    if math.isclose(p, 1.0):
        return float(stats.cauchy.ppf(0.75))
    # Solve P(|X| <= m) = 0.5 numerically with the scipy levy_stable cdf.
    dist = stats.levy_stable(alpha=p, beta=0.0)

    def objective(m: float) -> float:
        return (dist.cdf(m) - dist.cdf(-m)) - 0.5

    result = optimize.brentq(objective, 1e-6, 100.0)
    return float(result)
