"""Serialization and delta extraction on the mergeable-sketch contract.

Built on the byte-exact array codec in :mod:`repro.comm.wire`, these
helpers put any :class:`repro.sketch.mergeable.MergeableSketch` on the
wire without knowing its family: the only hooks used are ``state_array``
/ ``load_state_array`` (serialization) and ``empty_copy`` (templates).

The *delta* discipline of the streaming runtime lives here too: a site
accumulates updates into a pending ``empty_copy`` of the shared template;
:func:`extract_delta` serializes that pending state and resets it, so the
shipped bytes describe exactly what changed since the last upload.  Because
every sketch is linear, the coordinator can merge deserialized deltas into
its running summary in any arrival order.

Only state arrays travel; randomness never does.  That is what lets the
kernel-layer sketches stay lazy end to end: a huge-universe sketch
(``mode="hash"`` or CountSketch at any ``n``) serializes exactly like a
small one, because the wire record is ``O(width x depth)`` regardless of
the universe the hashes span.
"""

from __future__ import annotations

from typing import Mapping

from repro.comm import wire
from repro.sketch.mergeable import MergeableSketch

__all__ = [
    "deserialize_deltas",
    "deserialize_state",
    "extract_delta",
    "extract_deltas",
    "serialize_deltas",
    "serialize_state",
]


def serialize_state(sketch: MergeableSketch) -> bytes:
    """Encode a sketch's accumulated state as a wire record."""
    return wire.encode_array(sketch.state_array())


def deserialize_state(template: MergeableSketch, payload: bytes) -> MergeableSketch:
    """Decode a wire record into a fresh clone of ``template``.

    The clone shares the template's randomness (hash functions / sketch
    matrix), so it can be merged with any summary built from the same
    broadcast seed.  Round trips are bit-exact:
    ``deserialize_state(t, serialize_state(s))`` restores ``s``'s state
    byte for byte.
    """
    clone = template.empty_copy()
    clone.load_state_array(wire.decode_array(payload))
    return clone


def extract_delta(sketch: MergeableSketch) -> bytes:
    """Serialize a pending sketch's state and reset it to empty.

    The returned bytes are the site's delta since the previous extraction;
    after the call the sketch accumulates the next delta from scratch.
    """
    payload = wire.encode_array(sketch.state_array())
    sketch.load_state_array(None)
    return payload


def serialize_deltas(pending: Mapping[str, MergeableSketch]) -> bytes:
    """Bundle several named sketches' states into one message blob.

    Read-only on the sketches — the one definition of the delta-bundle
    byte layout.  :func:`extract_deltas` adds the reset;
    :class:`repro.engine.streaming.StreamingSession` calls this half from
    worker processes (the reset must happen in the parent) and resets
    separately.
    """
    return wire.encode_bundle(
        {name: sketch.state_array() for name, sketch in pending.items()}
    )


def extract_deltas(pending: Mapping[str, MergeableSketch]) -> bytes:
    """Bundle the deltas of several named sketches and reset them to empty."""
    payload = serialize_deltas(pending)
    for sketch in pending.values():
        sketch.load_state_array(None)
    return payload


def deserialize_deltas(
    templates: Mapping[str, MergeableSketch], payload: bytes
) -> dict[str, MergeableSketch]:
    """Decode a delta bundle into fresh clones of the shared templates."""
    records = wire.decode_bundle(payload)
    unknown = set(records) - set(templates)
    if unknown:
        raise wire.WireFormatError(f"bundle holds unknown sketch families {sorted(unknown)}")
    decoded = {}
    for name, state in records.items():
        clone = templates[name].empty_copy()
        clone.load_state_array(state)
        decoded[name] = clone
    return decoded
