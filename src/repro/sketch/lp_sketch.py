"""Linear ``l_p`` sketches for ``p in (0, 2]`` (Lemma 2.1 of the paper).

For ``p in (0, 2)`` the sketch matrix has i.i.d. standard p-stable entries
and the estimator is Indyk's median estimator: because
``<s, x> ~ ||x||_p * X`` for a standard p-stable ``X``, the median of
``|S x|`` divided by the median of ``|X|`` estimates ``||x||_p``.  For
``p = 2`` the AMS estimator (mean of squares) has lower variance and is used
instead.

``p = 0`` is handled by :class:`repro.sketch.l0_sketch.L0Sketch`; the factory
:func:`make_lp_sketch` dispatches on ``p`` so callers (Algorithm 1) do not
need to care.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketch.mergeable import LinearStateMixin
from repro.sketch.stable import sample_standard_stable, stable_scale_factor


def lp_norm(x: np.ndarray, p: float) -> float:
    """Exact ``||x||_p^p`` (with ``||x||_0^0`` = number of non-zeros)."""
    x = np.asarray(x, dtype=float)
    if p == 0:
        return float(np.count_nonzero(x))
    return float(np.sum(np.abs(x) ** p))


class LpSketch(LinearStateMixin):
    """p-stable linear sketch with the median estimator (``0 < p <= 2``).

    Also a :class:`repro.sketch.mergeable.MergeableSketch` (via
    :class:`~repro.sketch.mergeable.LinearStateMixin`), so ``p``-norm
    summaries can ride the same batched ``update_many`` / entrywise
    ``merge`` runtime as the other families.  The p-stable entries are
    genuinely real-valued, so unlike the integer-exact families, merged
    float states agree with one-shot states only to rounding.

    Parameters
    ----------
    n:
        Input dimension.
    p:
        Norm parameter in ``(0, 2]``.
    num_rows:
        Number of sketch rows; ``O(1/eps^2)`` rows give a ``(1 +/- eps)``
        estimate with constant probability.
    rng:
        Shared randomness.
    """

    def __init__(self, n: int, p: float, num_rows: int, rng: np.random.Generator) -> None:
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        self.n = n
        self.p = float(p)
        self.num_rows = num_rows
        self.matrix = sample_standard_stable(self.p, (num_rows, n), rng)
        self._use_ams_estimator = math.isclose(self.p, 2.0)
        self._scale = stable_scale_factor(self.p)

    @classmethod
    def for_accuracy(
        cls, n: int, p: float, epsilon: float, rng: np.random.Generator
    ) -> "LpSketch":
        """Construct a sketch sized for a ``(1 +/- epsilon)`` estimate."""
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        num_rows = max(16, int(np.ceil(8.0 / epsilon**2)))
        return cls(n, p, num_rows, rng)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Compute ``S x`` (vector) or ``S X`` (matrix, column-wise sketch)."""
        return self.matrix @ np.asarray(x, dtype=float)

    def estimate_norm(self, sketched: np.ndarray) -> float:
        """Estimate ``||x||_p`` from the sketch ``S x``."""
        sketched = np.asarray(sketched, dtype=float)
        if self._use_ams_estimator:
            return float(np.sqrt(np.mean(sketched**2)))
        return float(np.median(np.abs(sketched)) / self._scale)

    def estimate_norm_pp(self, sketched: np.ndarray) -> float:
        """Estimate ``||x||_p^p`` from the sketch ``S x``."""
        return self.estimate_norm(sketched) ** self.p

    def estimate_rows(self, sketched_rows: np.ndarray) -> np.ndarray:
        """Estimate ``||x_i||_p`` for every row of a row-wise sketched matrix.

        ``sketched_rows`` has shape ``(m, num_rows)`` where row ``i`` is the
        sketch of the ``i``-th input row (this is the orientation Algorithm 1
        produces: ``C~ = A (S B^T)^T`` has the sketch of ``C_{i,*}`` in row
        ``i``).
        """
        sketched_rows = np.asarray(sketched_rows, dtype=float)
        if sketched_rows.ndim != 2 or sketched_rows.shape[1] != self.num_rows:
            raise ValueError(
                f"expected shape (m, {self.num_rows}), got {sketched_rows.shape}"
            )
        if self._use_ams_estimator:
            return np.sqrt(np.mean(sketched_rows**2, axis=1))
        return np.median(np.abs(sketched_rows), axis=1) / self._scale

    def estimate_rows_pp(self, sketched_rows: np.ndarray) -> np.ndarray:
        """Estimate ``||x_i||_p^p`` for every row of a sketched matrix."""
        return self.estimate_rows(sketched_rows) ** self.p


def make_lp_sketch(
    n: int, p: float, epsilon: float, rng: np.random.Generator
) -> "LpSketch | object":
    """Factory returning an ``l_p`` sketch appropriate for ``p in [0, 2]``.

    For ``p = 0`` an :class:`repro.sketch.l0_sketch.L0Sketch` is returned; it
    exposes the same ``matrix`` / ``apply`` / ``estimate_rows_pp`` interface
    used by Algorithm 1.
    """
    if p == 0:
        from repro.sketch.l0_sketch import L0Sketch

        return L0Sketch.for_accuracy(n, epsilon, rng)
    return LpSketch.for_accuracy(n, p, epsilon, rng)
