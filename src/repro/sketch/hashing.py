"""k-wise independent hash families over a prime field.

The sketches in this package need pairwise (and occasionally 4-wise)
independent hash functions ``h : [n] -> [m]`` and sign functions
``s : [n] -> {-1, +1}``.  We use the classic polynomial construction over a
Mersenne prime: a random degree-``k-1`` polynomial evaluated at the key, all
arithmetic modulo ``2^61 - 1``.
"""

from __future__ import annotations

import numpy as np

#: Mersenne prime 2^61 - 1, large enough for 32-bit keys with headroom.
PRIME_61 = (1 << 61) - 1


class KWiseHash:
    """A k-wise independent hash function family member.

    Parameters
    ----------
    k:
        Independence (degree of the random polynomial).  ``k = 2`` gives
        pairwise independence, ``k = 4`` gives the 4-wise independence needed
        by the AMS sketch's variance analysis.
    rng:
        Source of randomness for the coefficients.
    """

    def __init__(self, k: int, rng: np.random.Generator) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        # Leading coefficient non-zero so the polynomial has exact degree k-1.
        coeffs = rng.integers(0, PRIME_61, size=k, dtype=np.uint64)
        if k > 1 and coeffs[0] == 0:
            coeffs[0] = 1
        self._coeffs = [int(c) for c in coeffs]

    def values(self, keys: np.ndarray) -> np.ndarray:
        """Evaluate the hash polynomial on an array of integer keys.

        Returns values in ``[0, PRIME_61)`` as Python-int-backed uint64 array.
        Evaluation uses Horner's rule with Python integers to avoid overflow,
        which is fast enough for the universe sizes used here (<= ~10^5).
        """
        keys = np.asarray(keys, dtype=np.int64)
        out = np.empty(keys.shape, dtype=np.uint64)
        flat_keys = keys.reshape(-1)
        flat_out = np.empty(flat_keys.shape[0], dtype=np.uint64)
        for idx, key in enumerate(flat_keys.tolist()):
            acc = 0
            for coeff in self._coeffs:
                acc = (acc * key + coeff) % PRIME_61
            flat_out[idx] = acc
        out[...] = flat_out.reshape(keys.shape)
        return out

    def buckets(self, keys: np.ndarray, n_buckets: int) -> np.ndarray:
        """Map keys to buckets ``[0, n_buckets)``."""
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        return (self.values(keys) % np.uint64(n_buckets)).astype(np.int64)

    def signs(self, keys: np.ndarray) -> np.ndarray:
        """Map keys to ``{-1, +1}`` signs."""
        parity = (self.values(keys) & np.uint64(1)).astype(np.int64)
        return 2 * parity - 1
