"""k-wise independent hash families over a prime field.

The sketches in this package need pairwise (and occasionally 4-wise)
independent hash functions ``h : [n] -> [m]`` and sign functions
``s : [n] -> {-1, +1}``.  We use the classic polynomial construction over a
Mersenne prime: a random degree-``k-1`` polynomial evaluated at the key, all
arithmetic modulo ``2^61 - 1``.
"""

from __future__ import annotations

import numpy as np

#: Mersenne prime 2^61 - 1, large enough for 32-bit keys with headroom.
PRIME_61 = (1 << 61) - 1

_P61 = np.uint64(PRIME_61)
_MASK32 = np.uint64(0xFFFFFFFF)


def _mulmod_p61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized ``(a * b) mod (2^61 - 1)`` for ``a, b < 2^61 - 1`` (uint64).

    A 61-bit product does not fit in 64 bits, so split both factors at bit
    32 and reduce the partial products with the Mersenne identities
    ``2^64 ≡ 2^3`` and ``2^61 ≡ 1 (mod p)``; every intermediate stays below
    ``2^63``, so plain uint64 arithmetic is exact.
    """
    a_hi = a >> np.uint64(32)
    a_lo = a & _MASK32
    b_hi = b >> np.uint64(32)
    b_lo = b & _MASK32
    hi = a_hi * b_hi  # < 2^58
    mid = a_hi * b_lo + a_lo * b_hi  # < 2^62
    lo = a_lo * b_lo  # < 2^64
    # a*b = hi·2^64 + mid·2^32 + lo; split mid at bit 29 so that
    # mid·2^32 = (mid >> 29)·2^61 + (mid & (2^29-1))·2^32 ≡ (mid >> 29)
    #            + (mid & (2^29-1))·2^32.
    total = (
        (hi << np.uint64(3))
        + (mid >> np.uint64(29))
        + ((mid & np.uint64((1 << 29) - 1)) << np.uint64(32))
        + (lo >> np.uint64(61))
        + (lo & _P61)
    )  # < 3·2^61 < 2^63
    total = (total >> np.uint64(61)) + (total & _P61)
    return np.where(total >= _P61, total - _P61, total)


def _mulmod_p61_small_b(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """:func:`_mulmod_p61` specialized to ``b < 2^32`` (bit-identical).

    With ``b_hi = 0`` the ``hi`` and ``a_lo * b_hi`` partial products vanish,
    which saves two wide multiplies per element — the common case for hash
    keys, which are universe indices well below ``2^32``.
    """
    a_hi = a >> np.uint64(32)
    a_lo = a & _MASK32
    mid = a_hi * b  # < 2^61
    lo = a_lo * b  # < 2^64
    total = (
        (mid >> np.uint64(29))
        + ((mid & np.uint64((1 << 29) - 1)) << np.uint64(32))
        + (lo >> np.uint64(61))
        + (lo & _P61)
    )
    total = (total >> np.uint64(61)) + (total & _P61)
    return np.where(total >= _P61, total - _P61, total)


class KWiseHash:
    """A k-wise independent hash function family member.

    Parameters
    ----------
    k:
        Independence (degree of the random polynomial).  ``k = 2`` gives
        pairwise independence, ``k = 4`` gives the 4-wise independence needed
        by the AMS sketch's variance analysis.
    rng:
        Source of randomness for the coefficients.
    """

    def __init__(self, k: int, rng: np.random.Generator) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        # Leading coefficient non-zero so the polynomial has exact degree k-1.
        coeffs = rng.integers(0, PRIME_61, size=k, dtype=np.uint64)
        if k > 1 and coeffs[0] == 0:
            coeffs[0] = 1
        self._coeffs = [int(c) for c in coeffs]

    def values(self, keys: np.ndarray) -> np.ndarray:
        """Evaluate the hash polynomial on an array of integer keys.

        Returns values in ``[0, PRIME_61)`` as a uint64 array.  Evaluation is
        Horner's rule, vectorized over the keys with exact Mersenne-prime
        modular arithmetic (:func:`_mulmod_p61`) — one fused multiply-add per
        coefficient instead of a Python loop per key, with bit-identical
        results.
        """
        keys = np.asarray(keys, dtype=np.int64)
        keys_mod = (keys % np.int64(PRIME_61)).astype(np.uint64)
        small = keys_mod.size == 0 or int(keys_mod.max()) < (1 << 32)
        mulmod = _mulmod_p61_small_b if small else _mulmod_p61
        acc = np.zeros(keys.shape, dtype=np.uint64)
        for coeff in self._coeffs:
            acc = mulmod(acc, keys_mod) + np.uint64(coeff)  # < 2^62
            acc = np.where(acc >= _P61, acc - _P61, acc)
        return acc

    def buckets(self, keys: np.ndarray, n_buckets: int) -> np.ndarray:
        """Map keys to buckets ``[0, n_buckets)``."""
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        return (self.values(keys) % np.uint64(n_buckets)).astype(np.int64)

    def signs(self, keys: np.ndarray) -> np.ndarray:
        """Map keys to ``{-1, +1}`` signs."""
        parity = (self.values(keys) & np.uint64(1)).astype(np.int64)
        return 2 * parity - 1
