"""Sketching substrate used by the distributed protocols.

All sketches here are *linear* maps ``x -> S x`` (possibly followed by a
non-linear estimator).  Linearity is what lets Alice compute sketches of the
rows/columns of ``C = A B`` without knowing ``C``: e.g. Bob sends ``S B^T``
and Alice computes ``A (S B^T)^T = A B S^T`` whose ``i``-th row is the sketch
of the ``i``-th row of ``C`` (Lemma 2.1 usage inside Algorithm 1).

Available sketches
------------------
* :class:`repro.sketch.ams.AmsSketch` — AMS / F2 sketch (``p = 2``).
* :class:`repro.sketch.lp_sketch.LpSketch` — p-stable sketch for
  ``p in (0, 2]`` with the median estimator (Indyk).
* :class:`repro.sketch.l0_sketch.L0Sketch` — layered-subsampling linear
  distinct-elements sketch (``p = 0``).
* :class:`repro.sketch.l0_sampler.L0Sampler` — uniform sampler over the
  support of a vector.
* :class:`repro.sketch.countsketch.CountSketch` and
  :class:`repro.sketch.countmin.CountMinSketch` — point-query sketches used
  by the heavy-hitter baselines.
* :mod:`repro.sketch.hashing` — k-wise independent hash families.
* :mod:`repro.sketch.kernels` — the shared lazy-hashing / fused
  scatter-add kernel layer every family's hot path runs on.

Every family supports universes far past RAM-sized dense tables:
CountSketch/Count-Min hash lazily always, and the linear families accept
``mode="hash"`` to derive their per-coordinate randomness lazily as well
(construction cost and memory independent of ``n``).
"""

from repro.sketch.ams import AmsSketch
from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch
from repro.sketch.hashing import KWiseHash, PRIME_61
from repro.sketch.kernels import BitSignHash, StackedKWiseHash
from repro.sketch.l0_sampler import L0Sampler
from repro.sketch.l0_sketch import L0Sketch
from repro.sketch.lp_sketch import LpSketch, lp_norm, make_lp_sketch
from repro.sketch.mergeable import MergeableSketch
from repro.sketch.serialization import (
    deserialize_deltas,
    deserialize_state,
    extract_delta,
    extract_deltas,
    serialize_deltas,
    serialize_state,
)
from repro.sketch.stable import sample_standard_stable, stable_scale_factor

__all__ = [
    "deserialize_deltas",
    "deserialize_state",
    "extract_delta",
    "extract_deltas",
    "serialize_deltas",
    "serialize_state",
    "AmsSketch",
    "BitSignHash",
    "CountMinSketch",
    "CountSketch",
    "KWiseHash",
    "StackedKWiseHash",
    "PRIME_61",
    "L0Sampler",
    "L0Sketch",
    "LpSketch",
    "MergeableSketch",
    "lp_norm",
    "make_lp_sketch",
    "sample_standard_stable",
    "stable_scale_factor",
]
