"""Shared-memory arena backing zero-copy sketch state.

The resident-worker runtime (``Runtime(persistent=True)``) keeps each
site's sketch state inside a dedicated worker process.  To let the
coordinator *merge* those states without serializing them through a pipe,
the state arrays live in POSIX shared memory: the worker scatters updates
into an shm-backed view (see ``pin_state_buffer`` /
``pin_table_buffer`` on the sketches), and the coordinator attaches the
same segment read-only and merges straight out of it.

Two pieces:

:class:`ShmBlock`
    A picklable descriptor (segment name, shape, dtype) — the only thing
    that ever crosses a process boundary.  ``attach`` turns it back into a
    numpy view in any process.

:class:`ShmArena`
    The owning side: allocates segments, hands out zero-filled views (the
    OS zero-fills fresh shm pages, matching the sketches' zeroed initial
    state), and guarantees cleanup — ``close()`` unlinks every segment and
    a GC finalizer backstops it, so no ``/dev/shm`` entries outlive the
    owner even on abandonment.

Lifecycle discipline (Python >= 3.8 ``multiprocessing.shared_memory``):
the interpreter's resource tracker registers a segment on *attach* as
well as on create.  Fork children (and same-process attaches) share the
owner's tracker daemon, whose per-type cache is a set — the duplicate
registration is harmlessly deduplicated and must NOT be unregistered, or
the owner's entry disappears with it.  A *spawn* child, by contrast, has
its own tracker, and its attach-time registration would unlink the
segment when the child exits, destroying it under the living owner;
there ``attach(..., untrack=True)`` drops the registration so only the
owning arena ever unlinks.  The resident runtime passes the right flag
for the multiprocessing context it actually uses.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmArena", "ShmBlock", "attach"]


@dataclass(frozen=True)
class ShmBlock:
    """Picklable handle to one shared-memory array."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop a non-owner attach from the resource tracker (see module doc)."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass  # tracker may be absent (e.g. already at interpreter teardown)


def attach(
    block: ShmBlock, *, untrack: bool = False
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map an existing segment into this process as a numpy view.

    Returns ``(view, shm)``; the caller must keep ``shm`` alive as long as
    the view is used and ``shm.close()`` it afterwards (close only — the
    owning :class:`ShmArena` unlinks).  Pass ``untrack=True`` only from a
    process with its *own* resource tracker (a spawn child); see the
    module docstring.  Raises :class:`FileNotFoundError` if the segment no
    longer exists, which is also what the leak tests use to prove a
    segment was released.
    """
    shm = shared_memory.SharedMemory(name=block.name)
    if untrack:
        _untrack(shm)
    view: np.ndarray = np.ndarray(block.shape, dtype=block.dtype, buffer=shm.buf)
    return view, shm


class ShmArena:
    """Owns a set of shared-memory segments and their numpy views.

    All allocation goes through :meth:`allocate`; :meth:`close` (or GC of
    the arena) closes and unlinks everything.  Idempotent: double-close is
    a no-op, and segments already unlinked elsewhere are skipped.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        self._finalizer = weakref.finalize(self, ShmArena._release, self._segments)

    def allocate(self, shape: tuple[int, ...], dtype) -> tuple[np.ndarray, ShmBlock]:
        """A zero-filled shm-backed array plus its picklable descriptor."""
        if self._closed:
            raise RuntimeError("arena is closed")
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self._segments[shm.name] = shm
        view: np.ndarray = np.ndarray(shape, dtype=dt, buffer=shm.buf)
        # Fresh shm pages are OS-zero-filled, but re-assert it: allocation
        # must hand out the sketches' exact zeroed initial state.
        view[...] = np.zeros((), dtype=dt)
        return view, ShmBlock(name=shm.name, shape=shape, dtype=dt.str)

    @property
    def names(self) -> tuple[str, ...]:
        """Names of the live segments (for the leak assertions in tests)."""
        return tuple(self._segments)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran — views into the arena are then unmapped
        and must not be dereferenced (reading one is a use-after-free)."""
        return self._closed

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        self._closed = True
        self._finalizer.detach()
        ShmArena._release(self._segments)

    @staticmethod
    def _release(segments: dict[str, shared_memory.SharedMemory]) -> None:
        for shm in list(segments.values()):
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        segments.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
